"""The rule registry: every lint rule, addressable by code.

Rules declare a code (``PAL001``, ``DOC001``, ``SRC101``, ...), a scope
that decides what input their check function receives, a default
severity, and the check itself.  The registry iterates rules in code
order so analysis output never depends on import order.

Scopes
------
``policy``
    ``check(policy, ctx)`` — one parsed :class:`SecurityPolicy` at a
    time, with the surrounding :class:`PolicySetContext` for reference.
``policyset``
    ``check(ctx)`` — cross-policy rules (cycles, dangling imports).
``document``
    ``check(name, document)`` — the raw yamlish mapping, before parsing
    fills in defaults.
``source``
    ``check(source)`` — one parsed :class:`SourceFile` (path, module
    name, AST, source lines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.analysis.findings import Severity

SCOPES = ("policy", "policyset", "document", "source")


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    code: str
    title: str
    scope: str
    severity: Severity
    check: Callable = field(compare=False)
    hint: str = ""

    def __post_init__(self) -> None:
        if self.scope not in SCOPES:
            raise ValueError(f"rule {self.code}: unknown scope {self.scope!r}")


class RuleRegistry:
    """A set of rules with stable iteration order."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        if rule.code in self._rules:
            raise ValueError(f"duplicate rule code {rule.code!r}")
        self._rules[rule.code] = rule
        return rule

    def get(self, code: str) -> Rule:
        try:
            return self._rules[code]
        except KeyError:
            raise KeyError(f"no rule with code {code!r}") from None

    def codes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._rules))

    def rules(self, scope: Optional[str] = None,
              codes: Optional[Iterable[str]] = None) -> Tuple[Rule, ...]:
        """Rules in code order, optionally filtered by scope and codes."""
        wanted = None if codes is None else set(codes)
        if wanted is not None:
            unknown = wanted - set(self._rules)
            if unknown:
                raise KeyError(
                    f"unknown rule codes: {', '.join(sorted(unknown))}")
        selected = []
        for code in sorted(self._rules):
            rule = self._rules[code]
            if scope is not None and rule.scope != scope:
                continue
            if wanted is not None and code not in wanted:
                continue
            selected.append(rule)
        return tuple(selected)


#: The registry the stock rule modules populate on import.
DEFAULT_REGISTRY = RuleRegistry()


def rule(code: str, title: str, scope: str, severity: Severity,
         hint: str = "", registry: Optional[RuleRegistry] = None):
    """Decorator: register a check function as a rule."""

    def decorate(check: Callable) -> Callable:
        (registry or DEFAULT_REGISTRY).register(Rule(
            code=code, title=title, scope=scope, severity=severity,
            check=check, hint=hint))
        return check

    return decorate
