"""Simulated network: sites, RTT matrix, and message endpoints.

Sites correspond to the deployments in the paper's evaluation: the same
rack, the same data centre, and progressively distant geographies up to
intercontinental (Fig 12, Fig 13 right). One-way delay between two sites is
half the calibrated RTT plus optional jitter; bandwidth is modelled as a
serialization delay per byte so large transfers (e.g. NGINX's 67 kB pages)
cost more than small control messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro import calibration
from repro.crypto.primitives import DeterministicRandom
from repro.errors import NetworkError
from repro.sim.core import Event, Simulator
from repro.sim.resources import Store


class Site(enum.Enum):
    """Deployment locations used across the evaluation."""

    SAME_RACK = "same-rack"
    SAME_DC = "same-dc"
    REGIONAL_300KM = "regional-300km"
    CONTINENTAL_7000KM = "continental-7000km"
    INTERCONTINENTAL_11000KM = "intercontinental-11000km"
    IAS_US = "ias-us"
    IAS_EU = "ias-eu"


#: RTT between the local rack and each site class, from calibration.
_RTT_FROM_RACK: Dict[Site, float] = {
    Site.SAME_RACK: calibration.RTT_SAME_RACK,
    Site.SAME_DC: calibration.RTT_SAME_DC,
    Site.REGIONAL_300KM: calibration.RTT_300_KM,
    Site.CONTINENTAL_7000KM: calibration.RTT_7000_KM,
    Site.INTERCONTINENTAL_11000KM: calibration.RTT_11000_KM,
    # IAS placements for Fig 8: measured from a US client IAS is close;
    # from the EU it is a transatlantic hop.
    Site.IAS_US: 30.0e-3,
    Site.IAS_EU: calibration.RTT_11000_KM,
}


def rtt_between(a: Site, b: Site) -> float:
    """Round-trip time between two sites.

    The topology is hub-like (everything is measured relative to the rack
    hosting the cluster), matching how the paper reports distances.
    """
    if a == b:
        return calibration.RTT_SAME_RACK
    if a == Site.SAME_RACK:
        return _RTT_FROM_RACK[b]
    if b == Site.SAME_RACK:
        return _RTT_FROM_RACK[a]
    # Triangle through the rack, capped at the intercontinental RTT.
    via = _RTT_FROM_RACK[a] + _RTT_FROM_RACK[b]
    return min(via, calibration.RTT_11000_KM * 1.5)


@dataclass
class Message:
    """A datagram delivered to an endpoint's mailbox."""

    sender: "Endpoint"
    payload: Any
    size_bytes: int = 256
    reply_to: Optional["Endpoint"] = None
    headers: Dict[str, Any] = field(default_factory=dict)


class Endpoint:
    """A network-attached mailbox at a site.

    ``receive()`` yields the next inbound :class:`Message`; ``send()``
    schedules delivery after the one-way latency plus serialization delay.
    """

    def __init__(self, network: "Network", name: str, site: Site) -> None:
        self.network = network
        self.name = name
        self.site = site
        self.inbox = Store(network.simulator, name=f"{name}-inbox")
        self.bytes_sent = 0
        self.bytes_received = 0
        self._closed = False

    @property
    def simulator(self) -> Simulator:
        return self.network.simulator

    def send(self, destination: "Endpoint", payload: Any,
             size_bytes: int = 256,
             reply_to: Optional["Endpoint"] = None) -> None:
        """Send ``payload``; delivery is asynchronous."""
        if self._closed:
            raise NetworkError(f"endpoint {self.name!r} is closed")
        message = Message(sender=self, payload=payload, size_bytes=size_bytes,
                          reply_to=reply_to or self)
        self.bytes_sent += size_bytes
        self.network.deliver(self, destination, message)

    def receive(self) -> Event:
        """Event firing with the next inbound message."""
        return self.inbox.get()

    def close(self) -> None:
        self._closed = True
        self.inbox.close()

    def reopen(self) -> None:
        """Bring a closed endpoint back (a restarted front-end).

        The old inbox is gone with the process that owned it: pending
        getters already failed when it closed, and queued messages are
        lost, exactly like a socket reopened after a crash.
        """
        if not self._closed:
            return
        self._closed = False
        self.inbox = Store(self.network.simulator, name=f"{self.name}-inbox")


class Network:
    """The message fabric: computes delays and delivers to mailboxes.

    ``bandwidth_bps`` models link serialization; ``jitter_fraction`` adds
    multiplicative uniform jitter to propagation so that latency percentiles
    are not degenerate.
    """

    def __init__(self, simulator: Simulator,
                 rng: Optional[DeterministicRandom] = None,
                 bandwidth_bps: float = 20e9 / 8,
                 jitter_fraction: float = 0.05) -> None:
        self.simulator = simulator
        self._rng = rng or DeterministicRandom(b"network")
        self.bandwidth_bytes_per_second = bandwidth_bps
        self.jitter_fraction = jitter_fraction
        self._endpoints: Dict[str, Endpoint] = {}
        self.messages_delivered = 0
        #: Wire log of (time, src, dst, payload) for plaintext-leak scans.
        self.wire_log: list = []
        self.wire_log_enabled = False
        self._partitions: set = set()
        #: Optional fault injection (:class:`repro.sim.faults.FaultPlan`);
        #: attach via ``FaultPlan.attach_network``.
        self.fault_plan = None

    def endpoint(self, name: str, site: Site = Site.SAME_RACK) -> Endpoint:
        """Create (or fetch) the named endpoint at ``site``.

        Reusing the name of a *closed* endpoint reopens it with a fresh
        inbox — returning the closed object as-is would hand the caller
        a mailbox whose every ``send()`` raises forever.
        """
        if name in self._endpoints:
            existing = self._endpoints[name]
            if existing.site != site:
                raise NetworkError(
                    f"endpoint {name!r} already exists at {existing.site}")
            if existing._closed:
                existing.reopen()
            return existing
        endpoint = Endpoint(self, name, site)
        self._endpoints[name] = endpoint
        return endpoint

    def partition(self, a: str, b: str) -> None:
        """Drop all traffic between endpoints ``a`` and ``b``."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitions.discard(frozenset((a, b)))

    def one_way_delay(self, source: Site, destination: Site,
                      size_bytes: int) -> float:
        propagation = rtt_between(source, destination) / 2.0
        jitter = propagation * self.jitter_fraction * self._rng.random()
        serialization = size_bytes / self.bandwidth_bytes_per_second
        return propagation + jitter + serialization

    def deliver(self, source: Endpoint, destination: Endpoint,
                message: Message) -> None:
        if frozenset((source.name, destination.name)) in self._partitions:
            if self.fault_plan is not None:
                self.fault_plan._record("partition")
            return  # dropped silently, like a real partition
        copies = 1
        extra_delay = 0.0
        if self.fault_plan is not None:
            fate, extra_delay = self.fault_plan.message_fate(
                source.name, destination.name)
            if fate == "drop":
                return
            if fate == "duplicate":
                copies = 2
        if self.wire_log_enabled:
            self.wire_log.append((self.simulator.now, source.name,
                                  destination.name, message.payload))

        def arrival(_event: Event) -> None:
            if destination._closed:
                return
            if (self.fault_plan is not None
                    and self.fault_plan.endpoint_blacked_out(
                        destination.name)):
                self.fault_plan._record("blackout")
                return
            destination.inbox.put(message)
            destination.bytes_received += message.size_bytes
            self.messages_delivered += 1

        for _copy in range(copies):
            # Each copy draws its own jitter, so duplicates arrive apart.
            delay = self.one_way_delay(source.site, destination.site,
                                       message.size_bytes) + extra_delay
            timer = self.simulator.timeout(delay)
            timer.callbacks.append(arrival)
