"""Deterministic discrete-event simulation substrate.

The paper's evaluation runs on a rack cluster and on geo-distributed
deployments; this package replaces that hardware with a deterministic
discrete-event simulator. Processes are Python generators that ``yield``
events (timeouts, resource acquisitions, message receipts); the event loop
advances a virtual clock, so experiments covering minutes of "cluster time"
run in milliseconds of wall-clock time and are exactly reproducible.
"""

from repro.sim.core import Event, Process, Simulator, Timeout
from repro.sim.resources import Resource, Store, SimLock
from repro.sim.latency import LatencyModel, ConstantLatency, ExponentialLatency
from repro.sim.network import Network, Site, Endpoint, Message
from repro.sim.metrics import LatencyRecorder, ThroughputMeter, percentile
from repro.sim.workload import OpenLoopGenerator, ClosedLoopGenerator
from repro.sim.faults import FaultPlan, LinkFault, Window
from repro.sim.retry import NO_RETRY, RetryPolicy

__all__ = [
    "ClosedLoopGenerator",
    "ConstantLatency",
    "Endpoint",
    "Event",
    "ExponentialLatency",
    "FaultPlan",
    "LatencyModel",
    "LatencyRecorder",
    "LinkFault",
    "Message",
    "NO_RETRY",
    "Network",
    "OpenLoopGenerator",
    "Process",
    "Resource",
    "RetryPolicy",
    "SimLock",
    "Simulator",
    "Site",
    "Store",
    "ThroughputMeter",
    "Timeout",
    "Window",
    "percentile",
]
