"""Simulated Intel SGX platform.

This package replaces the SGX hardware the paper runs on. The *mechanisms*
are real inside the simulation: MRENCLAVE is an actual SHA-256 measurement
over the enclave's measured pages, quotes are actual signatures by a
per-platform attestation key, sealing actually encrypts with a key derived
from (platform, MRENCLAVE), and the monotonic counters really are monotonic,
rate-limited, and wear out. Only the *costs* (page throughputs, transition
latencies) come from the calibration table instead of silicon.
"""

from repro.tee.image import EnclaveImage, build_image
from repro.tee.epc import EnclavePageCache
from repro.tee.loader import EnclaveLoader, LoadReport, MeasurementScope
from repro.tee.enclave import Enclave, ExecutionMode
from repro.tee.quoting import Quote, QuotingEnclave, Report
from repro.tee.sealing import SealedBlob, SealingService
from repro.tee.counters import PlatformCounterService
from repro.tee.ias import AttestationVerdict, IASReport, IntelAttestationService
from repro.tee.platform import SGXPlatform

__all__ = [
    "AttestationVerdict",
    "Enclave",
    "EnclaveImage",
    "EnclaveLoader",
    "EnclavePageCache",
    "ExecutionMode",
    "IASReport",
    "IntelAttestationService",
    "LoadReport",
    "MeasurementScope",
    "PlatformCounterService",
    "Quote",
    "QuotingEnclave",
    "Report",
    "SGXPlatform",
    "SealedBlob",
    "SealingService",
    "build_image",
]
