"""Intel Attestation Service (IAS) simulator.

IAS is the remote verifier of EPID quotes: a client submits a quote, IAS
checks it against Intel's view of genuine platforms and signs a report.
Two properties matter for the paper's evaluation:

- **Latency** (Fig 8): attestation through IAS costs an extra round trip to
  embed verifier data in the quote, plus a long server-side verification
  wait — ~280 ms from the US, ~295 ms from Europe, vs ~15 ms attesting
  against a local PALAEMON.
- **Revocation knowledge**: IAS rejects quotes from platforms whose
  attestation keys it does not recognize or has revoked (how vulnerable
  microcode generations get deactivated).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Generator

from repro import calibration
from repro.crypto.primitives import DeterministicRandom
from repro.crypto.signatures import KeyPair, PublicKey, verify_signature
from repro.errors import QuoteError
from repro.sim.core import Event, Simulator
from repro.sim.network import Site, rtt_between
from repro.tee.quoting import Quote


class AttestationVerdict(enum.Enum):
    """IAS verdicts (a subset of the real API's ISV enclave statuses)."""

    OK = "OK"
    SIGNATURE_INVALID = "SIGNATURE_INVALID"
    KEY_REVOKED = "KEY_REVOKED"
    GROUP_OUT_OF_DATE = "GROUP_OUT_OF_DATE"


@dataclass(frozen=True)
class IASReport:
    """A signed IAS attestation verification report."""

    verdict: AttestationVerdict
    mrenclave: bytes
    platform_id: bytes
    report_data: bytes
    signature: bytes

    def to_signed_bytes(self) -> bytes:
        return (b"ias-report-v1" + self.verdict.value.encode()
                + self.mrenclave + self.platform_id + self.report_data)

    def verify(self, ias_public_key: PublicKey) -> None:
        """Verify the IAS signature over the report."""
        if not verify_signature(ias_public_key, self.to_signed_bytes(),
                                self.signature):
            raise QuoteError("IAS report signature invalid")
        if self.verdict is not AttestationVerdict.OK:
            raise QuoteError(f"IAS verdict: {self.verdict.value}")


class IntelAttestationService:
    """The IAS backend: knows genuine platforms, signs verdicts."""

    def __init__(self, simulator: Simulator, site: Site,
                 rng: DeterministicRandom,
                 verification_seconds: float = 0.150) -> None:
        self.simulator = simulator
        self.site = site
        self._keys = KeyPair.generate(rng)
        self.verification_seconds = verification_seconds
        #: Registered genuine platforms: attestation pubkey -> microcode rev.
        self._genuine: Dict[PublicKey, int] = {}
        self._revoked: set = set()
        #: Microcode revisions considered out of date (TCB recovery events).
        self.minimum_microcode: int = 0
        self.requests_served = 0

    @property
    def public_key(self) -> PublicKey:
        return self._keys.public

    def register_platform(self, attestation_key: PublicKey,
                          microcode_revision: int) -> None:
        """Enroll a genuine platform (manufacturing-time provisioning)."""
        self._genuine[attestation_key] = microcode_revision

    def revoke_platform(self, attestation_key: PublicKey) -> None:
        """Revoke a platform's attestation key (e.g. compromised TCB)."""
        self._revoked.add(attestation_key)

    def _judge(self, quote: Quote) -> AttestationVerdict:
        try:
            quote.verify()
        except QuoteError:
            return AttestationVerdict.SIGNATURE_INVALID
        if quote.attestation_key in self._revoked:
            return AttestationVerdict.KEY_REVOKED
        revision = self._genuine.get(quote.attestation_key)
        if revision is None:
            return AttestationVerdict.SIGNATURE_INVALID
        if revision < self.minimum_microcode:
            return AttestationVerdict.GROUP_OUT_OF_DATE
        return AttestationVerdict.OK

    def verify_quote_local(self, quote: Quote) -> IASReport:
        """Verify and sign without modelling latency (for unit tests)."""
        verdict = self._judge(quote)
        report = IASReport(
            verdict=verdict,
            mrenclave=quote.report.mrenclave,
            platform_id=quote.report.platform_id,
            report_data=quote.report.report_data,
            signature=b"",
        )
        signature = self._keys.sign(report.to_signed_bytes())
        self.requests_served += 1
        return IASReport(
            verdict=report.verdict, mrenclave=report.mrenclave,
            platform_id=report.platform_id, report_data=report.report_data,
            signature=signature,
        )

    def verify_quote(self, quote: Quote, client_site: Site,
                     ) -> Generator[Event, Any, IASReport]:
        """Full remote verification: network round trip + server-side wait.

        Mirrors the measured structure of Fig 8: the quote upload, the IAS
        verification time, and the response propagation.
        """
        round_trip = rtt_between(client_site, self.site)
        yield self.simulator.timeout(round_trip + self.verification_seconds)
        return self.verify_quote_local(quote)
