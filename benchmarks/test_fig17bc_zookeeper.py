"""Fig 17b/c — ZooKeeper read and write throughput on a 3-node cluster.

Three variants: native (stunnel between servers), shielded HW, shielded
EMU. The reproduced shape: shielded *reads* consistently beat native
(memory-mapped shielded I/O vs stunnel's userspace copies); *writes* run
consensus over TLS, so native wins there.
"""

from repro import calibration
from repro.apps.zookeeper import ZooKeeperCluster
from repro.benchlib.harness import rate_sweep
from repro.benchlib.tables import PaperComparison, format_table, paper_vs_measured
from repro.tee.enclave import ExecutionMode

from benchmarks.conftest import run_once

_MODES = {
    "Native": ExecutionMode.NATIVE,
    "Shielded HW": ExecutionMode.HARDWARE,
    "Shielded EMU": ExecutionMode.EMULATED,
}


def _read_setup(mode):
    def setup(simulator):
        cluster = ZooKeeperCluster(simulator, mode=mode)
        for node in cluster.nodes:
            node.data["/config"] = b"value"

        def factory(request_id):
            value = yield simulator.process(cluster.handle_read(
                "/config", node_id=request_id % len(cluster.nodes)))
            assert value == b"value"

        return factory

    return setup


def _write_setup(mode):
    def setup(simulator):
        cluster = ZooKeeperCluster(simulator, mode=mode)

        def factory(request_id):
            yield simulator.process(cluster.handle_write(
                f"/key-{request_id % 64}", b"payload"))

        return factory

    return setup


def _sweep(setup_builder, rates, duration):
    return {name: rate_sweep(name, setup_builder(mode), rates,
                             duration=duration)
            for name, mode in _MODES.items()}


def test_fig17b_zookeeper_read(benchmark):
    results = run_once(
        benchmark,
        lambda: _sweep(_read_setup,
                       rates=(20_000, 50_000, 75_000, 95_000, 120_000),
                       duration=0.05))

    rows = []
    for name, result in results.items():
        for offered, achieved, latency_ms in result.rows():
            rows.append([name, offered, achieved, latency_ms])
    print()
    print(format_table(
        ["variant", "offered (req/s)", "achieved (req/s)", "mean lat (ms)"],
        rows, title="Fig 17b: ZooKeeper reads"))

    knees = {name: result.knee(latency_limit=0.010)
             for name, result in results.items()}
    comparisons = [
        PaperComparison("native read peak",
                        calibration.ZOOKEEPER_NATIVE_READ_PEAK_RPS,
                        knees["Native"], unit="req/s", rel_tolerance=0.15),
        PaperComparison("shield read advantage",
                        calibration.ZOOKEEPER_SHIELD_READ_ADVANTAGE,
                        knees["Shielded HW"] / knees["Native"],
                        rel_tolerance=0.10),
    ]
    print(paper_vs_measured(comparisons, title="paper vs measured"))
    for comparison in comparisons:
        assert comparison.within_tolerance, comparison.metric

    # The headline: shielded reads consistently better than native.
    assert knees["Shielded HW"] > knees["Native"]
    assert knees["Shielded EMU"] > knees["Native"]


def test_fig17c_zookeeper_write(benchmark):
    results = run_once(
        benchmark,
        lambda: _sweep(_write_setup,
                       rates=(10_000, 22_000, 33_000, 40_000, 50_000),
                       duration=0.05))

    rows = []
    for name, result in results.items():
        for offered, achieved, latency_ms in result.rows():
            rows.append([name, offered, achieved, latency_ms])
    print()
    print(format_table(
        ["variant", "offered (req/s)", "achieved (req/s)", "mean lat (ms)"],
        rows, title="Fig 17c: ZooKeeper setsingle (writes)"))

    knees = {name: result.knee(latency_limit=0.020)
             for name, result in results.items()}
    comparisons = [
        PaperComparison("native write peak",
                        calibration.ZOOKEEPER_NATIVE_WRITE_PEAK_RPS,
                        knees["Native"], unit="req/s", rel_tolerance=0.15),
        PaperComparison("shield write fraction",
                        calibration.ZOOKEEPER_SHIELD_WRITE_FRACTION,
                        knees["Shielded HW"] / knees["Native"],
                        rel_tolerance=0.15),
    ]
    print(paper_vs_measured(comparisons, title="paper vs measured"))
    for comparison in comparisons:
        assert comparison.within_tolerance, comparison.metric

    # Writes: native wins (consensus over TLS).
    assert knees["Native"] > knees["Shielded EMU"] > knees["Shielded HW"]
