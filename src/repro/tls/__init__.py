"""TLS over the simulated network.

A handshake costs two round trips plus asymmetric crypto (the dominant term
of the "Initialization" phase in Fig 8 and of remote secret retrieval in
Fig 12). The resulting channel is a *real* authenticated-encrypted pipe:
session keys are derived per connection, and every record is AEAD-protected,
so a test scanning the simulated wire never sees plaintext secrets.
"""

from repro.tls.handshake import TLSSession, perform_handshake
from repro.tls.channel import SecureChannel, TLSConnection

__all__ = [
    "SecureChannel",
    "TLSConnection",
    "TLSSession",
    "perform_handshake",
]
