"""Authenticated symmetric encryption (AEAD).

The cipher is SHA-256 in counter mode as a keystream generator, with an
encrypt-then-MAC HMAC-SHA-256 tag over nonce, associated data, and
ciphertext. This gives real confidentiality and integrity inside the
simulation with zero dependencies; a deployment would use AES-GCM.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.crypto.primitives import (
    DeterministicRandom,
    constant_time_equal,
    hkdf,
    hmac_sha256,
    sha256,
)
from repro.errors import IntegrityError

KEY_SIZE = 32
NONCE_SIZE = 16
TAG_SIZE = 32


@dataclass(frozen=True)
class Ciphertext:
    """An encrypted, authenticated message."""

    nonce: bytes
    body: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        """Serialize to ``nonce || tag || body``."""
        return self.nonce + self.tag + self.body

    @classmethod
    def from_bytes(cls, data: bytes) -> "Ciphertext":
        """Parse the serialization produced by :meth:`to_bytes`."""
        if len(data) < NONCE_SIZE + TAG_SIZE:
            raise IntegrityError("ciphertext too short")
        nonce = data[:NONCE_SIZE]
        tag = data[NONCE_SIZE:NONCE_SIZE + TAG_SIZE]
        body = data[NONCE_SIZE + TAG_SIZE:]
        return cls(nonce=nonce, body=body, tag=tag)

    def __len__(self) -> int:
        return len(self.nonce) + len(self.tag) + len(self.body)


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Generate ``length`` keystream bytes for (key, nonce)."""
    blocks = bytearray()
    counter = 0
    while len(blocks) < length:
        blocks.extend(sha256(key, nonce, struct.pack(">Q", counter)))
        counter += 1
    return bytes(blocks[:length])


class AEADCipher:
    """Authenticated encryption with associated data under a single key.

    Separate encryption and MAC keys are derived from the master key via
    HKDF so a single 32-byte secret drives the whole construction.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) != KEY_SIZE:
            raise ValueError(f"key must be {KEY_SIZE} bytes, got {len(key)}")
        self._encryption_key = hkdf(key, b"aead-encryption")
        self._mac_key = hkdf(key, b"aead-mac")

    def encrypt(self, plaintext: bytes, nonce: bytes,
                associated_data: bytes = b"") -> Ciphertext:
        """Encrypt and authenticate ``plaintext``.

        The caller supplies the nonce; reusing a nonce under the same key for
        different plaintexts breaks confidentiality, exactly as with real
        stream ciphers, so callers draw nonces from a DRBG.
        """
        if len(nonce) != NONCE_SIZE:
            raise ValueError(f"nonce must be {NONCE_SIZE} bytes")
        stream = _keystream(self._encryption_key, nonce, len(plaintext))
        body = bytes(p ^ s for p, s in zip(plaintext, stream))
        tag = hmac_sha256(self._mac_key, nonce, associated_data, body)
        return Ciphertext(nonce=nonce, body=body, tag=tag)

    def decrypt(self, ciphertext: Ciphertext,
                associated_data: bytes = b"") -> bytes:
        """Verify and decrypt; raises :class:`IntegrityError` on tampering."""
        expected = hmac_sha256(self._mac_key, ciphertext.nonce,
                               associated_data, ciphertext.body)
        if not constant_time_equal(expected, ciphertext.tag):
            raise IntegrityError("AEAD tag mismatch")
        stream = _keystream(self._encryption_key, ciphertext.nonce,
                            len(ciphertext.body))
        return bytes(c ^ s for c, s in zip(ciphertext.body, stream))


class SecretBox:
    """Convenience wrapper: AEAD plus automatic nonce management.

    This is the shape most PALAEMON components want — "encrypt this blob" —
    with nonces drawn from a forked DRBG so two boxes never collide.
    """

    def __init__(self, key: bytes, rng: DeterministicRandom) -> None:
        self._cipher = AEADCipher(key)
        self._rng = rng

    def seal(self, plaintext: bytes, associated_data: bytes = b"") -> bytes:
        """Encrypt ``plaintext`` into a self-contained byte string."""
        nonce = self._rng.bytes(NONCE_SIZE)
        return self._cipher.encrypt(plaintext, nonce, associated_data).to_bytes()

    def open(self, sealed: bytes, associated_data: bytes = b"") -> bytes:
        """Decrypt a byte string produced by :meth:`seal`."""
        return self._cipher.decrypt(Ciphertext.from_bytes(sealed),
                                    associated_data)


def generate_key(rng: DeterministicRandom) -> bytes:
    """Draw a fresh symmetric key from ``rng``."""
    return rng.bytes(KEY_SIZE)
