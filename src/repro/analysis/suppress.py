"""Suppression: inline ``# palint: disable=`` comments and baseline files.

Two mechanisms, both explicit and reviewable:

- **Inline**: a source line carrying ``# palint: disable=SRC102`` (or a
  comma-separated list, or ``all``) suppresses findings of those codes
  *on that line only*.
- **Baseline**: a JSON file listing finding identities
  (``"CODE subject:line"``) to tolerate — the escape hatch for adopting
  a new rule on an old tree.  The repo ships an empty baseline
  (``.palint-baseline.json``) and CI keeps it empty.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterable, List, Set, Tuple

from repro.analysis.findings import Finding

BASELINE_FILENAME = ".palint-baseline.json"
BASELINE_VERSION = 1

_INLINE_PATTERN = re.compile(
    r"#\s*palint:\s*disable=([A-Za-z0-9_,\s]+)")


def inline_disabled_codes(line_text: str) -> Set[str]:
    """Codes disabled by an inline comment on this source line."""
    match = _INLINE_PATTERN.search(line_text)
    if not match:
        return set()
    return {part.strip().upper() for part in match.group(1).split(",")
            if part.strip()}


def is_inline_suppressed(finding: Finding, line_text: str) -> bool:
    codes = inline_disabled_codes(line_text)
    return bool(codes) and (finding.code in codes or "ALL" in codes)


def load_baseline(path: Path) -> Set[str]:
    """Read a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return set()
    document = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(document, dict):
        raise ValueError(f"{path}: baseline must be a JSON object")
    version = document.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {version!r}")
    entries = document.get("suppress", [])
    if (not isinstance(entries, list)
            or not all(isinstance(entry, str) for entry in entries)):
        raise ValueError(f"{path}: 'suppress' must be a list of strings")
    return set(entries)


def dump_baseline(findings: Iterable[Finding]) -> str:
    """Serialize current findings as a baseline document."""
    return json.dumps(
        {"version": BASELINE_VERSION,
         "suppress": sorted(finding.identity() for finding in findings)},
        indent=2, sort_keys=True) + "\n"


def apply_baseline(findings: Iterable[Finding], suppressed: Set[str],
                   ) -> Tuple[List[Finding], int]:
    """Split findings into (kept, suppressed-count)."""
    kept = []
    dropped = 0
    for finding in findings:
        if finding.identity() in suppressed:
            dropped += 1
        else:
            kept.append(finding)
    return kept, dropped
