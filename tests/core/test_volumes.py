"""Tests for encrypted volumes: per-volume keys/tags and cross-policy
export (List 1 and footnote 1 of the paper)."""

import pytest

from repro.core.policy import (
    SecurityPolicy,
    ServiceSpec,
    VolumeImportSpec,
    VolumeSpec,
)
from repro.crypto.primitives import DeterministicRandom
from repro.errors import (
    AccessDeniedError,
    PolicyError,
    PolicyNotFoundError,
    PolicyValidationError,
    TagMismatchError,
)
from repro.fs.blockstore import BlockStore
from repro.runtime.scone import SconeRuntime

from tests.core.conftest import Deployment


@pytest.fixture()
def deployment():
    return Deployment(seed=b"volumes")


@pytest.fixture()
def runtime(deployment):
    return SconeRuntime(deployment.platform, deployment.palaemon,
                        DeterministicRandom(b"vol-runtime"))


def producer_policy(deployment, export_to="output_policy"):
    policy = deployment.make_policy(name="ml_training")
    policy.volumes.append(VolumeSpec(name="encrypted_output_volume",
                                     path="/encrypted-output",
                                     export_to=export_to))
    return policy


def consumer_policy(deployment, name="output_policy"):
    policy = deployment.make_policy(name=name, service_name="reader")
    policy.volume_imports.append(VolumeImportSpec(
        from_policy="ml_training", volume_name="encrypted_output_volume"))
    return policy


class TestPolicyModel:
    def test_duplicate_volume_names_rejected(self, deployment):
        policy = deployment.make_policy()
        policy.volumes = [VolumeSpec(name="v"), VolumeSpec(name="v")]
        with pytest.raises(PolicyValidationError, match="duplicate volume"):
            policy.validate()

    def test_volume_import_collision_rejected(self, deployment):
        policy = deployment.make_policy()
        policy.volumes = [VolumeSpec(name="v")]
        policy.volume_imports = [VolumeImportSpec(from_policy="p",
                                                  volume_name="v")]
        with pytest.raises(PolicyValidationError, match="collides"):
            policy.validate()

    def test_exports_volume_to(self, deployment):
        policy = producer_policy(deployment)
        assert policy.exports_volume_to("encrypted_output_volume",
                                        "output_policy")
        assert not policy.exports_volume_to("encrypted_output_volume",
                                            "other")
        assert not policy.exports_volume_to("ghost", "output_policy")

    def test_yaml_volume_imports(self):
        mre = b"\x01" * 32
        policy = SecurityPolicy.from_yaml("""
name: output_policy
services:
  - name: reader
    mrenclaves: ["$MRE"]
volume_imports:
  - policy: ml_training
    volume: encrypted_output_volume
""", mrenclave_registry={"MRE": mre})
        assert policy.volume_imports[0].from_policy == "ml_training"


class TestVolumeGrants:
    def test_local_volume_key_delivered(self, deployment):
        deployment.client.create_policy(deployment.palaemon,
                                        producer_policy(deployment))
        config = deployment.palaemon.attest_application(
            deployment.evidence_for("ml_training"))
        grant = config.volumes["encrypted_output_volume"]
        assert len(grant.key) == 32
        assert grant.path == "/encrypted-output"
        assert grant.owner_policy == "ml_training"

    def test_exported_volume_shared_key(self, deployment):
        deployment.client.create_policy(deployment.palaemon,
                                        producer_policy(deployment))
        deployment.client.create_policy(deployment.palaemon,
                                        consumer_policy(deployment))
        producer_config = deployment.palaemon.attest_application(
            deployment.evidence_for("ml_training"))
        consumer_config = deployment.palaemon.attest_application(
            deployment.evidence_for("output_policy",
                                    service_name="reader"))
        assert (producer_config.volumes["encrypted_output_volume"].key
                == consumer_config.volumes["encrypted_output_volume"].key)

    def test_unexported_volume_denied(self, deployment):
        deployment.client.create_policy(
            deployment.palaemon,
            producer_policy(deployment, export_to="someone_else"))
        deployment.client.create_policy(deployment.palaemon,
                                        consumer_policy(deployment))
        with pytest.raises(AccessDeniedError, match="does not export"):
            deployment.palaemon.attest_application(
                deployment.evidence_for("output_policy",
                                        service_name="reader"))

    def test_import_from_unknown_policy(self, deployment):
        policy = deployment.make_policy(name="orphan")
        policy.volume_imports.append(VolumeImportSpec(
            from_policy="nowhere", volume_name="v"))
        deployment.client.create_policy(deployment.palaemon, policy)
        with pytest.raises(PolicyError, match="unknown policy"):
            deployment.palaemon.attest_application(
                deployment.evidence_for("orphan"))


class TestVolumeTags:
    def test_tag_round_trip(self, deployment):
        deployment.client.create_policy(deployment.palaemon,
                                        producer_policy(deployment))
        deployment.palaemon.update_volume_tag(
            "ml_training", "encrypted_output_volume", b"\x09" * 32)
        assert deployment.palaemon.get_volume_tag(
            "ml_training", "encrypted_output_volume") == b"\x09" * 32

    def test_undeclared_volume_rejected(self, deployment):
        deployment.client.create_policy(deployment.palaemon,
                                        producer_policy(deployment))
        with pytest.raises(PolicyValidationError):
            deployment.palaemon.update_volume_tag("ml_training", "ghost",
                                                  b"\x01" * 32)

    def test_unknown_policy_rejected(self, deployment):
        with pytest.raises(PolicyNotFoundError):
            deployment.palaemon.update_volume_tag("ghost", "v", b"\x01" * 32)
        with pytest.raises(PolicyNotFoundError):
            deployment.palaemon.get_volume_tag("ghost", "v")


class TestEndToEndVolumeFlow:
    def test_producer_writes_consumer_reads(self, deployment, runtime):
        """The paper's ML example: the training job writes the encrypted
        output volume; the output policy's reader decrypts and verifies."""
        deployment.client.create_policy(deployment.palaemon,
                                        producer_policy(deployment))
        deployment.client.create_policy(deployment.palaemon,
                                        consumer_policy(deployment))
        shared_store = BlockStore("output-volume")

        producer_app = runtime.launch(deployment.app_image, "ml_training",
                                      "ml_app")
        output = producer_app.mount_volume("encrypted_output_volume",
                                           shared_store)
        output.write("/encrypted-output/model.bin", b"trained-weights")
        output.sync()  # pushes the volume tag to PALAEMON

        consumer_app = runtime.launch(deployment.app_image, "output_policy",
                                      "reader")
        imported = consumer_app.mount_volume("encrypted_output_volume",
                                             shared_store)
        assert imported.read("/encrypted-output/model.bin") == \
            b"trained-weights"
        assert shared_store.scan_for(b"trained-weights") == []

    def test_volume_rollback_detected_across_policies(self, deployment,
                                                      runtime):
        """Rolling back the shared volume is caught when the *consumer*
        mounts it — the tag expectation lives with the owning policy."""
        deployment.client.create_policy(deployment.palaemon,
                                        producer_policy(deployment))
        deployment.client.create_policy(deployment.palaemon,
                                        consumer_policy(deployment))
        shared_store = BlockStore("output-volume")
        producer_app = runtime.launch(deployment.app_image, "ml_training",
                                      "ml_app")
        output = producer_app.mount_volume("encrypted_output_volume",
                                           shared_store)
        output.write("/encrypted-output/model.bin", b"v1")
        output.sync()
        checkpoint = shared_store.snapshot()
        output.write("/encrypted-output/model.bin", b"v2")
        output.sync()
        shared_store.restore(checkpoint)  # attacker rolls the volume back

        consumer_app = runtime.launch(deployment.app_image, "output_policy",
                                      "reader")
        with pytest.raises(TagMismatchError):
            consumer_app.mount_volume("encrypted_output_volume",
                                      shared_store)

    def test_unknown_grant_rejected(self, deployment, runtime):
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        app = runtime.launch(deployment.app_image, "ml_policy", "ml_app")
        with pytest.raises(KeyError):
            app.mount_volume("no-such-volume", BlockStore())
