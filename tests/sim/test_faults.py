"""Tests for the fault-injection plan, with_timeout, and the retry layer."""

import math

import pytest

from repro.crypto.primitives import DeterministicRandom
from repro.errors import (
    AccessDeniedError,
    DeadlineExceededError,
    RetryExhaustedError,
    StorageFaultError,
)
from repro.fs.blockstore import BlockStore
from repro.sim.core import ProcessInterrupt, Simulator
from repro.sim.faults import FaultPlan, LinkFault, Window
from repro.sim.network import Network, Site
from repro.sim.resources import DiskModel, Store
from repro.sim.retry import DEFAULT_RETRYABLE, NO_RETRY, RetryPolicy


class TestWindow:
    def test_half_open(self):
        window = Window(1.0, 2.0)
        assert not window.active(0.999)
        assert window.active(1.0)
        assert window.active(1.999)
        assert not window.active(2.0)

    def test_default_is_forever(self):
        assert Window().active(0.0)
        assert Window().active(1e12)


class TestLinkFault:
    def test_matches_either_direction(self):
        fault = LinkFault(a="x", b="y")
        assert fault.matches("x", "y")
        assert fault.matches("y", "x")
        assert not fault.matches("x", "z")


class TestFaultPlanQueries:
    def test_drop_window(self):
        sim = Simulator()
        plan = FaultPlan(sim).drop_link("a", "b", start=0.0, end=2.0)
        assert plan.message_fate("a", "b") == ("drop", 0.0)
        sim.run(until=3.0)
        assert plan.message_fate("a", "b") == ("deliver", 0.0)
        assert plan.summary() == {"drop": 1}

    def test_blackout_beats_link_state(self):
        sim = Simulator()
        plan = FaultPlan(sim).blackout_endpoint("a", start=0.0, end=1.0)
        assert plan.message_fate("a", "b") == ("drop", 0.0)
        assert plan.message_fate("c", "a") == ("drop", 0.0)
        assert plan.message_fate("b", "c") == ("deliver", 0.0)
        assert plan.injected["blackout"] == 2

    def test_delay_accumulates(self):
        sim = Simulator()
        plan = (FaultPlan(sim)
                .delay_link("a", "b", 0.5)
                .delay_link("a", "b", 0.25))
        assert plan.message_fate("a", "b") == ("deliver", 0.75)

    def test_probabilistic_drop_is_seed_deterministic(self):
        def fates(seed):
            plan = FaultPlan(Simulator(), seed=seed)
            plan.drop_link("a", "b", probability=0.5)
            return [plan.message_fate("a", "b")[0] for _ in range(64)]

        assert fates(b"s1") == fates(b"s1")
        assert fates(b"s1") != fates(b"s2")
        assert set(fates(b"s1")) == {"drop", "deliver"}

    def test_counter_and_disk_windows(self):
        sim = Simulator()
        plan = (FaultPlan(sim)
                .counter_outage("ctr", start=0.0, end=1.0)
                .fail_disk("disk", start=0.0, end=1.0))
        assert plan.counter_unavailable("ctr")
        assert plan.disk_faulty("disk")
        assert not plan.counter_unavailable("other")
        sim.run(until=1.0)
        assert not plan.counter_unavailable("ctr")
        assert not plan.disk_faulty("disk")

    def test_fail_store_rejects_unknown_operation(self):
        with pytest.raises(ValueError):
            FaultPlan(Simulator()).fail_store("s", operation="chmod")


class TestAttachment:
    def test_disk_commit_fails_during_window(self):
        sim = Simulator()
        disk = DiskModel(sim, 0.01, name="d")
        plan = FaultPlan(sim).fail_disk("d", end=1.0).attach_disk(disk)

        def attempt():
            yield sim.process(disk.commit())

        with pytest.raises(StorageFaultError):
            sim.run_process(attempt())
        sim.run(until=1.0)
        sim.run_process(attempt())  # window over: commits succeed
        assert plan.injected["disk_fault"] == 1

    def test_blockstore_hook(self):
        sim = Simulator()
        store = BlockStore("vol")
        plan = FaultPlan(sim).fail_store("vol", "write", end=1.0)
        plan.attach_blockstore(store)
        with pytest.raises(StorageFaultError):
            store.write("/f", b"x")
        assert store.read  # reads unaffected by a write fault
        sim.run(until=1.0)
        store.write("/f", b"x")
        assert store.read("/f") == b"x"

    def test_network_drop_then_heal(self):
        sim = Simulator()
        network = Network(sim, DeterministicRandom(b"net"))
        FaultPlan(sim).drop_link("a", "b", end=1.0).attach_network(network)
        a = network.endpoint("a", Site.SAME_RACK)
        b = network.endpoint("b", Site.SAME_RACK)

        def exchange():
            a.send(b, "hello", size_bytes=64)
            pending = b.receive()
            try:
                got = yield sim.with_timeout(pending, 0.5)
            except DeadlineExceededError:
                # Withdraw the abandoned getter so it cannot steal the
                # message the next exchange is waiting for.
                b.inbox.cancel(pending)
                raise
            return got

        with pytest.raises(DeadlineExceededError):
            sim.run_process(exchange())
        sim.run(until=1.0)
        message = sim.run_process(exchange())
        assert message.payload == "hello"


class TestWithTimeout:
    def test_inner_wins(self):
        sim = Simulator()

        def fast():
            yield sim.timeout(0.1)
            return "done"

        def main():
            value = yield sim.with_timeout(sim.process(fast()), 1.0)
            return value

        assert sim.run_process(main()) == "done"

    def test_deadline_wins_and_interrupts(self):
        sim = Simulator()
        seen = []

        def slow():
            try:
                yield sim.timeout(10.0)
            except ProcessInterrupt as exc:
                seen.append(str(exc))
                raise

        def main():
            yield sim.with_timeout(sim.process(slow()), 0.5)

        with pytest.raises(DeadlineExceededError):
            sim.run_process(main())
        assert seen  # the abandoned attempt was told to clean up

    def test_interrupted_getter_can_cancel(self):
        """The message-stealing hazard: an abandoned getter must not
        consume an item that arrives after its deadline."""
        sim = Simulator()
        store = Store(sim)

        def abandoned():
            get = store.get()
            try:
                yield get
            except ProcessInterrupt:
                store.cancel(get)
                raise

        def main():
            try:
                yield sim.with_timeout(sim.process(abandoned()), 0.5)
            except DeadlineExceededError:
                pass
            # The interrupt reaches the abandoned getter one event-cycle
            # after the deadline fires; real retries always re-send over
            # a link with non-zero latency, so give the cascade that one
            # cycle before the late item arrives.
            yield sim.timeout(0.0)
            store.put("late-item")
            value = yield store.get()
            return value

        assert sim.run_process(main()) == "late-item"


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)

    def test_backoff_shape(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                             jitter_fraction=0.0)
        rng = DeterministicRandom(b"jitter")
        delays = [policy.backoff_delay(n, rng) for n in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]  # capped

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(base_delay=1.0, jitter_fraction=0.1)
        first = [policy.backoff_delay(0, DeterministicRandom(b"j"))
                 for _ in range(3)]
        second = [policy.backoff_delay(0, DeterministicRandom(b"j"))
                  for _ in range(3)]
        assert first == second
        assert all(1.0 <= delay < 1.1 for delay in first)

    def test_recovers_after_transient_failures(self):
        sim = Simulator()
        calls = []

        def attempt():
            calls.append(sim.now)
            if len(calls) < 3:
                raise StorageFaultError("transient")
            yield sim.timeout(0.01)
            return "ok"

        policy = RetryPolicy(max_attempts=5, base_delay=0.1,
                             jitter_fraction=0.0)
        result = sim.run_process(policy.call(
            sim, attempt, DeterministicRandom(b"r"), operation="op"))
        assert result == "ok"
        assert len(calls) == 3
        assert calls[1] == pytest.approx(0.1)   # base_delay
        assert calls[2] == pytest.approx(0.3)   # + base_delay * 2

    def test_gives_up_with_chained_error(self):
        sim = Simulator()

        def attempt():
            raise StorageFaultError("still broken")
            yield  # pragma: no cover

        policy = RetryPolicy(max_attempts=3, base_delay=0.01,
                             jitter_fraction=0.0)
        with pytest.raises(RetryExhaustedError) as info:
            sim.run_process(policy.call(
                sim, attempt, DeterministicRandom(b"r"), operation="op"))
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, StorageFaultError)

    def test_verdicts_are_not_retried(self):
        sim = Simulator()
        calls = []

        def attempt():
            calls.append(1)
            raise AccessDeniedError("no")
            yield  # pragma: no cover

        policy = RetryPolicy(max_attempts=5, base_delay=0.01)
        with pytest.raises(AccessDeniedError):
            sim.run_process(policy.call(
                sim, attempt, DeterministicRandom(b"r"), operation="op"))
        assert calls == [1]  # a security verdict propagates immediately

    def test_attempt_timeout_turns_hang_into_retry(self):
        sim = Simulator()
        calls = []

        def attempt():
            calls.append(sim.now)
            if len(calls) == 1:
                yield sim.timeout(100.0)  # first attempt hangs
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_delay=0.1,
                             jitter_fraction=0.0, attempt_timeout=0.5)
        assert sim.run_process(policy.call(
            sim, attempt, DeterministicRandom(b"r"),
            operation="op")) == "ok"
        assert len(calls) == 2
        assert calls[1] == pytest.approx(0.6)  # deadline + backoff, not 100s

    def test_no_retry_policy_is_single_shot(self):
        assert NO_RETRY.max_attempts == 1
        assert NO_RETRY.attempt_timeout is None
        assert DeadlineExceededError in DEFAULT_RETRYABLE
        assert math.isinf(Window().end)
