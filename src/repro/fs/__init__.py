"""Shielded file system: transparent encryption, Merkle tags, injection.

This package reproduces SCONE's file-system shield as PALAEMON uses it
(§III-D): files live encrypted in an *untrusted* block store; inside the
TEE they are transparently decrypted; a Merkle tree over all file
ciphertexts yields the file-system *tag*; and rollback of the store to an
older snapshot is detected by comparing the actual tag with the expected
tag maintained at PALAEMON.
"""

from repro.fs.blockstore import BlockStore
from repro.fs.fspf import FileSystemProtectionFile
from repro.fs.shield import ProtectedFileSystem, TagListener
from repro.fs.injection import inject_secrets, find_variables

__all__ = [
    "BlockStore",
    "FileSystemProtectionFile",
    "ProtectedFileSystem",
    "TagListener",
    "find_variables",
    "inject_secrets",
]
