"""Request/reply channels over TLS sessions.

:class:`TLSConnection` pairs a TLS session with two network endpoints and
exposes ``request``/``serve`` generators. Payloads cross the simulated wire
only in AEAD-sealed form; the paper's "all communication is TLS with PFS"
guarantee (§V-A) is therefore checkable by scanning ``Network.wire_log``.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Generator, Optional

from repro import calibration
from repro.crypto.certificates import Certificate
from repro.crypto.primitives import DeterministicRandom
from repro.crypto.signatures import PublicKey
from repro.sim.core import Event, ProcessInterrupt
from repro.sim.network import Endpoint, Network, Site
from repro.tls.handshake import TLSSession, perform_handshake


def _encode(payload: Any) -> bytes:
    return pickle.dumps(payload)


def _decode(data: bytes) -> Any:
    return pickle.loads(data)


class SecureChannel:
    """One direction of an established TLS connection (seal/open helpers)."""

    def __init__(self, session: TLSSession, is_client: bool) -> None:
        self._session = session
        self._is_client = is_client

    def seal(self, payload: Any) -> bytes:
        box = (self._session.client_box if self._is_client
               else self._session.server_box)
        return box.seal(_encode(payload))

    def open(self, sealed: bytes) -> Any:
        box = (self._session.server_box if self._is_client
               else self._session.client_box)
        return _decode(box.open(sealed))


class TLSConnection:
    """A client-side TLS connection to a server endpoint.

    Construction performs the handshake (latency + optional certificate
    verification); ``request`` sends one sealed request and waits for the
    sealed reply.
    """

    def __init__(self, network: Network, client_endpoint: Endpoint,
                 server_endpoint: Endpoint, session: TLSSession,
                 rng: DeterministicRandom) -> None:
        self.network = network
        self.client_endpoint = client_endpoint
        self.server_endpoint = server_endpoint
        self.session = session
        self._rng = rng
        self.client_channel = SecureChannel(session, is_client=True)
        self.server_channel = SecureChannel(session, is_client=False)
        self.requests_sent = 0
        self._request_seq = 0
        self.stale_replies_dropped = 0

    @classmethod
    def connect(cls, network: Network, client_name: str, client_site: Site,
                server_endpoint: Endpoint, rng: DeterministicRandom,
                server_certificate: Optional[Certificate] = None,
                trusted_root: Optional[PublicKey] = None,
                client_certificate: Optional[Certificate] = None,
                telemetry=None,
                ) -> Generator[Event, Any, "TLSConnection"]:
        """Handshake and build a connection; a simulation process."""
        session = yield network.simulator.process(perform_handshake(
            network.simulator, rng.fork(b"handshake:" + client_name.encode()),
            client_site, server_endpoint.site,
            server_certificate=server_certificate,
            trusted_root=trusted_root,
            client_certificate=client_certificate,
            telemetry=telemetry,
        ))
        client_endpoint = network.endpoint(client_name, client_site)
        return cls(network, client_endpoint, server_endpoint, session, rng)

    def request(self, payload: Any, size_bytes: int = 512,
                ) -> Generator[Event, Any, Any]:
        """Send one request and wait for the reply; returns the reply payload.

        Each request carries a sealed request id and the reply echoes it:
        under retries, a stale or duplicated reply (the network may deliver
        twice, and a timed-out attempt's reply can arrive after the retry's
        request) is discarded instead of being mistaken for the answer.
        An interrupted request (a :meth:`Simulator.with_timeout` deadline)
        cancels its mailbox getter so the abandoned attempt cannot steal
        the reply meant for the retry.
        """
        simulator = self.network.simulator
        self._request_seq += 1
        rid = self._request_seq
        sealed = self.client_channel.seal({"rid": rid, "body": payload})
        yield simulator.timeout(calibration.TLS_RECORD_CRYPTO_SECONDS)
        self.client_endpoint.send(self.server_endpoint,
                                  {"session": self.session.session_id,
                                   "data": sealed},
                                  size_bytes=size_bytes,
                                  reply_to=self.client_endpoint)
        self.requests_sent += 1
        while True:
            pending = self.client_endpoint.receive()
            try:
                message = yield pending
            except ProcessInterrupt:
                self.client_endpoint.inbox.cancel(pending)
                raise
            yield simulator.timeout(calibration.TLS_RECORD_CRYPTO_SECONDS)
            reply = self.client_channel.open(message.payload["data"])
            if isinstance(reply, dict) and reply.get("rid") == rid:
                return reply["body"]
            self.stale_replies_dropped += 1


class TLSServer:
    """Server-side dispatcher: one handler per connection-less request.

    PALAEMON's REST API and approval services use this. Sessions are tracked
    by id so the server can unseal with the right key; the handler is a
    callable ``(request_payload, session) -> reply`` or a generator process
    for handlers that consume simulated time.
    """

    def __init__(self, network: Network, endpoint: Endpoint,
                 handler: Callable[[Any, TLSSession], Any]) -> None:
        self.network = network
        self.endpoint = endpoint
        self.handler = handler
        self._sessions: dict = {}
        self.requests_served = 0
        self._running = False

    def register_session(self, session: TLSSession) -> None:
        self._sessions[session.session_id] = session

    def start(self) -> None:
        """Begin serving (spawns the accept loop as a process)."""
        if self._running:
            return
        self._running = True
        self.network.simulator.process(self._serve_loop(),
                                       name=f"tls-server-{self.endpoint.name}")

    def stop(self) -> None:
        self._running = False
        self.endpoint.close()

    def _serve_loop(self) -> Generator[Event, Any, None]:
        from repro.sim.resources import StoreClosed

        simulator = self.network.simulator
        while self._running:
            try:
                message = yield self.endpoint.receive()
            except StoreClosed:
                return
            session = self._sessions.get(message.payload["session"])
            if session is None:
                continue  # unknown session: drop, like a TLS alert
            server_channel = SecureChannel(session, is_client=False)
            envelope = server_channel.open(message.payload["data"])
            rid = None
            request = envelope
            if isinstance(envelope, dict) and "rid" in envelope:
                rid = envelope["rid"]
                request = envelope["body"]
            yield simulator.timeout(calibration.TLS_RECORD_CRYPTO_SECONDS)
            result = self.handler(request, session)
            if hasattr(result, "__next__"):
                result = yield simulator.process(result)
            sealed = server_channel.seal({"rid": rid, "body": result})
            self.requests_served += 1
            message.reply_to and self.endpoint.send(
                message.reply_to,
                {"session": session.session_id, "data": sealed})
