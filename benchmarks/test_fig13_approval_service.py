"""Fig 13 — the approval service.

Left: throughput/latency for native/PALAEMON x with/without TLS on the same
rack; the PALAEMON-with-TLS knee sits near 210 req/s. Right: response
latency across five geographic deployments, network-dominated up to ~1.36 s
intercontinental worst case.
"""

from repro import calibration
from repro.benchlib.harness import rate_sweep
from repro.benchlib.tables import PaperComparison, format_table, paper_vs_measured
from repro.core.board import AccessRequest, ApprovalService
from repro.crypto.primitives import DeterministicRandom
from repro.crypto.signatures import KeyPair
from repro.sim.core import Simulator
from repro.sim.network import Site
from repro.sim.resources import Resource

from benchmarks.conftest import run_once

_VARIANTS = {
    "Native w/o TLS": dict(in_tee=False, use_tls=False),
    "Native w/ TLS": dict(in_tee=False, use_tls=True),
    "Pal. w/o TLS": dict(in_tee=True, use_tls=False),
    "Pal. w/ TLS": dict(in_tee=True, use_tls=True),
}

_GEO_SITES = {
    "Same rack": Site.SAME_RACK,
    "Same DC": Site.SAME_DC,
    "<= 300 km": Site.REGIONAL_300KM,
    "<= 7,000 km": Site.CONTINENTAL_7000KM,
    "<= 11,000 km": Site.INTERCONTINENTAL_11000KM,
}


def _request():
    return AccessRequest(policy_name="p", operation="update",
                         requester_fingerprint=b"\x01" * 16)


def _variant_setup(variant_kwargs):
    def setup(simulator):
        keys = KeyPair.generate(DeterministicRandom(b"member"), bits=512)
        service = ApprovalService(simulator, "member", keys,
                                  **variant_kwargs)
        workers = Resource(simulator, capacity=1, name="approval-worker")

        def factory(_request_id):
            yield workers.acquire()
            try:
                yield simulator.timeout(service.service_seconds)
            finally:
                workers.release()

        return factory

    return setup


def _throughput_sweep():
    rates = (40, 90, 150, 190, 230, 320, 450)
    return {name: rate_sweep(name, _variant_setup(kwargs), rates,
                             duration=2.0)
            for name, kwargs in _VARIANTS.items()}


def _geo_latencies():
    """Single-request response latency per deployment distance."""
    results = {}
    for name, site in _GEO_SITES.items():
        sim = Simulator()
        keys = KeyPair.generate(DeterministicRandom(b"geo"), bits=512)
        service = ApprovalService(sim, "member", keys, site=site,
                                  in_tee=True, use_tls=True)

        def main(service=service, sim=sim):
            start = sim.now
            verdict = yield sim.process(service.decide(
                _request(), caller_site=Site.SAME_RACK))
            assert verdict is not None and verdict.approve
            return sim.now - start

        results[name] = sim.run_process(main())
    return results


def test_fig13_left_throughput_latency(benchmark):
    curves = run_once(benchmark, _throughput_sweep)

    rows = []
    for name, result in curves.items():
        for offered, achieved, latency_ms in result.rows():
            rows.append([name, offered, achieved, latency_ms])
    print()
    print(format_table(
        ["variant", "offered (req/s)", "achieved (req/s)", "mean lat (ms)"],
        rows, title="Fig 13 (left): approval service, rack deployment"))

    knees = {name: result.knee(latency_limit=0.1)
             for name, result in curves.items()}
    comparison = PaperComparison("Pal. w/ TLS knee", 210,
                                 knees["Pal. w/ TLS"], unit="req/s",
                                 rel_tolerance=0.15)
    print(paper_vs_measured([comparison], title="paper vs measured"))
    assert comparison.within_tolerance

    # Native beats PALAEMON; dropping TLS helps both.
    assert knees["Native w/ TLS"] > knees["Pal. w/ TLS"]
    assert knees["Pal. w/o TLS"] >= knees["Pal. w/ TLS"]
    assert knees["Native w/o TLS"] >= knees["Native w/ TLS"]


def test_fig13_right_geographic_latency(benchmark):
    latencies = run_once(benchmark, _geo_latencies)

    print()
    print(format_table(
        ["deployment", "response latency (ms)"],
        [[name, latency * 1e3] for name, latency in latencies.items()],
        title="Fig 13 (right): approval latency by distance"))

    # Monotonically increasing with distance; network-dominated at the end.
    ordered = list(latencies.values())
    assert ordered == sorted(ordered)
    # The intercontinental case lands well within the figure's <=1.36 s
    # worst case and is dominated by network time (3 RTTs > service time).
    far = latencies["<= 11,000 km"]
    assert 0.3 <= far <= 1.4
    service_seconds = calibration.APPROVAL_TEE_TLS_SERVICE_SECONDS
    assert far > 10 * service_seconds
    # Nearby deployments are service-time bound instead.
    assert latencies["Same rack"] < 2 * service_seconds
