"""Application startup cost model: the four variants of Fig 9.

- ``NATIVE``   — plain process start: CPU-bound, scales with hyper-threads
  to ~3700 starts/s.
- ``SGX_ONLY`` — SGX enclave without attestation: serialized by the
  driver's global EPC lock at ~100 starts/s, independent of parallelism.
- ``PALAEMON`` — SGX + attestation against a rack-local PALAEMON: ~15 ms per
  start, saturating near ~90 starts/s.
- ``IAS``      — SGX + per-start IAS attestation: ~280+ ms per start; only
  heavy parallelism partially hides the latency (peaks ~40/s at 60
  parallel instances, at >1 s latency).
"""

from __future__ import annotations

import enum
from typing import Any, Generator

from repro import calibration
from repro.sim.core import Event, Simulator
from repro.sim.network import Site, rtt_between
from repro.sim.resources import CpuPool, Resource, SimLock


class AttestationVariant(enum.Enum):
    """Startup flavours measured in Fig 9."""

    NATIVE = "native"
    SGX_ONLY = "sgx-without-attestation"
    PALAEMON = "palaemon"
    IAS = "ias"


class StartupModel:
    """Shared contended resources for a startup-throughput experiment."""

    def __init__(self, simulator: Simulator,
                 cpu_threads: int = calibration.CPU_HYPERTHREADS,
                 ias_site: Site = Site.IAS_US) -> None:
        self.simulator = simulator
        self.cpu = CpuPool(simulator, threads=cpu_threads, name="node-cpu")
        self.driver_lock = SimLock(simulator, name="sgx-driver-lock")
        #: PALAEMON serves attestations sequentially (one enclave, one DB);
        #: the per-request time sets the ~90 starts/s ceiling.
        self.palaemon_workers = Resource(simulator, capacity=1,
                                         name="palaemon-workers")
        self.palaemon_service_seconds = (
            1.0 / calibration.PALAEMON_ATTESTED_START_RATE)
        self.ias_site = ias_site
        #: IAS verification is parallel server-side but throttled per
        #: client; 10 in-flight slots at ~260 ms each peak near 40/s with
        #: ~1.4 s latency at 60 parallel starts (Fig 9).
        self.ias_verification_seconds = calibration.ATTEST_WAIT_IAS_US_SECONDS
        self.ias_workers = Resource(simulator, capacity=10,
                                    name="ias-frontend")

    def start_one(self, variant: AttestationVariant,
                  ) -> Generator[Event, Any, float]:
        """One application start; returns the virtual duration."""
        began = self.simulator.now
        if variant is not AttestationVariant.NATIVE:
            # EPC setup under the driver-global lock (the Fig 9 bottleneck).
            yield self.driver_lock.acquire()
            try:
                yield self.simulator.timeout(
                    calibration.SGX_DRIVER_LOCK_SECONDS_PER_START)
            finally:
                self.driver_lock.release()
        # The native part of process creation competes for CPU threads.
        yield self.simulator.process(
            self.cpu.execute(calibration.NATIVE_START_CPU_SECONDS))
        if variant is AttestationVariant.PALAEMON:
            yield self.simulator.process(self._attest_palaemon())
        elif variant is AttestationVariant.IAS:
            yield self.simulator.process(self._attest_ias())
        return self.simulator.now - began

    def _attest_palaemon(self) -> Generator[Event, Any, None]:
        # Init: keygen, DNS, TCP+TLS handshake to the rack-local PALAEMON.
        yield self.simulator.timeout(calibration.ATTEST_INIT_SECONDS)
        yield self.simulator.timeout(
            calibration.ATTEST_SEND_QUOTE_PALAEMON_SECONDS)
        yield self.palaemon_workers.acquire()
        try:
            yield self.simulator.timeout(self.palaemon_service_seconds)
        finally:
            self.palaemon_workers.release()
        yield self.simulator.timeout(
            calibration.ATTEST_RECEIVE_CONFIG_SECONDS)

    def _attest_ias(self) -> Generator[Event, Any, None]:
        yield self.simulator.timeout(calibration.ATTEST_INIT_SECONDS)
        # Extra round trip to embed verifier data in the quote + EPID crypto.
        yield self.simulator.timeout(calibration.ATTEST_SEND_QUOTE_IAS_SECONDS)
        round_trip = rtt_between(Site.SAME_RACK, self.ias_site)
        yield self.ias_workers.acquire()
        try:
            yield self.simulator.timeout(round_trip
                                         + self.ias_verification_seconds)
        finally:
            self.ias_workers.release()
        yield self.simulator.timeout(
            calibration.ATTEST_RECEIVE_CONFIG_SECONDS)


def startup_process(model: StartupModel, variant: AttestationVariant,
                    ) -> Generator[Event, Any, float]:
    """Convenience wrapper usable as a workload factory target."""
    duration = yield model.simulator.process(model.start_one(variant))
    return duration


def attestation_phase_latencies(variant: AttestationVariant,
                                ias_site: Site = Site.IAS_US) -> dict:
    """Closed-form per-phase latencies for Fig 8 (single attestation)."""
    if variant is AttestationVariant.PALAEMON:
        return {
            "initialization": calibration.ATTEST_INIT_SECONDS,
            "send_quote": calibration.ATTEST_SEND_QUOTE_PALAEMON_SECONDS,
            "wait_confirmation": calibration.ATTEST_WAIT_PALAEMON_SECONDS,
            "receive_config": calibration.ATTEST_RECEIVE_CONFIG_SECONDS,
        }
    if variant is AttestationVariant.IAS:
        wait = (calibration.ATTEST_WAIT_IAS_US_SECONDS
                if ias_site is Site.IAS_US
                else calibration.ATTEST_WAIT_IAS_EU_SECONDS)
        return {
            "initialization": calibration.ATTEST_INIT_SECONDS,
            "send_quote": calibration.ATTEST_SEND_QUOTE_IAS_SECONDS,
            "wait_confirmation": wait,
            "receive_config": calibration.ATTEST_RECEIVE_CONFIG_SECONDS,
        }
    raise ValueError(f"no attestation phases for variant {variant}")
