"""Concurrency tests for the TLS server: many clients, one server —
including hostile clients sending malformed requests at a real PALAEMON
REST front-end, which must answer with typed codes and keep serving."""

import pytest

from repro.crypto.primitives import DeterministicRandom
from repro.sim.core import Simulator
from repro.sim.network import Network, Site
from repro.tls.channel import TLSConnection, TLSServer


def make_stack(handler):
    sim = Simulator()
    rng = DeterministicRandom(b"tls-concurrency")
    net = Network(sim, rng.fork(b"net"))
    endpoint = net.endpoint("server", Site.SAME_RACK)
    server = TLSServer(net, endpoint, handler)
    server.start()
    return sim, rng, net, server


class TestConcurrentClients:
    def test_many_clients_isolated_sessions(self):
        """Twenty clients with distinct sessions each get their own reply,
        decryptable only under their own session keys."""
        sim, rng, net, server = make_stack(
            lambda request, _session: {"echo": request["client"]})
        replies = {}

        def client_proc(index):
            connection = yield sim.process(TLSConnection.connect(
                net, f"client-{index}", Site.SAME_DC, server.endpoint,
                rng.fork(b"client%d" % index)))
            server.register_session(connection.session)
            reply = yield sim.process(connection.request(
                {"client": index}))
            replies[index] = reply

        def main():
            yield sim.all_of([sim.process(client_proc(i))
                              for i in range(20)])

        sim.run_process(main())
        server.stop()
        assert replies == {i: {"echo": i} for i in range(20)}
        assert server.requests_served == 20

    def test_sessions_cryptographically_isolated(self):
        """One client's sealed request cannot be opened by another's keys."""
        from repro.errors import IntegrityError

        sim, rng, net, server = make_stack(lambda request, _s: "ok")

        def main():
            a = yield sim.process(TLSConnection.connect(
                net, "client-a", Site.SAME_RACK, server.endpoint,
                rng.fork(b"a")))
            b = yield sim.process(TLSConnection.connect(
                net, "client-b", Site.SAME_RACK, server.endpoint,
                rng.fork(b"b")))
            return a, b

        a, b = sim.run_process(main())
        server.stop()
        sealed_by_a = a.client_channel.seal({"secret": 1})
        with pytest.raises(IntegrityError):
            b.server_channel.open(sealed_by_a)

    def test_serialized_handler_queues_fairly(self):
        """A slow generator handler serves clients in arrival order."""
        sim, rng, net, _ = make_stack(lambda r, s: None)
        order = []

        def slow_handler(request, _session):
            yield sim.timeout(0.010)
            order.append(request["client"])
            return request["client"]

        endpoint = net.endpoint("slow-server", Site.SAME_RACK)
        server = TLSServer(net, endpoint, slow_handler)
        server.start()

        def client_proc(index):
            connection = yield sim.process(TLSConnection.connect(
                net, f"c{index}", Site.SAME_RACK, endpoint,
                rng.fork(b"cc%d" % index)))
            server.register_session(connection.session)
            yield sim.timeout(index * 0.001)  # staggered arrivals
            reply = yield sim.process(connection.request({"client": index}))
            assert reply == index

        def main():
            yield sim.all_of([sim.process(client_proc(i)) for i in range(5)])

        sim.run_process(main())
        server.stop()
        assert order == [0, 1, 2, 3, 4]

    def test_double_start_is_idempotent(self):
        sim, rng, net, server = make_stack(lambda r, s: "ok")
        server.start()  # second start must not spawn a second accept loop

        def main():
            connection = yield sim.process(TLSConnection.connect(
                net, "client", Site.SAME_RACK, server.endpoint,
                rng.fork(b"c")))
            server.register_session(connection.session)
            reply = yield sim.process(connection.request("ping"))
            return reply

        assert sim.run_process(main()) == "ok"
        server.stop()
        assert server.requests_served == 1


class TestMalformedRequestsOverTls:
    """A hostile client cannot crash the REST serve loop: every malformed
    request comes back as a structured reply with the dispatch layer's
    uniform codes, and well-formed requests keep succeeding after."""

    def make_rest_stack(self):
        from repro.core.rest import PalaemonRestClient, PalaemonRestServer

        from tests.core.conftest import Deployment

        deployment = Deployment()
        network = Network(deployment.simulator,
                          deployment.rng.fork(b"rest-net"))
        server = PalaemonRestServer(deployment.palaemon, network)
        client = deployment.simulator.run_process(PalaemonRestClient.connect(
            network, deployment.client, server, Site.SAME_DC,
            deployment.rng.fork(b"rest-conn"),
            trusted_root=deployment.ca.root_public_key))
        return deployment, server, client

    def raw_request(self, deployment, client, payload):
        """Send ``payload`` verbatim (no route envelope) over the session."""
        return deployment.simulator.run_process(
            client.connection.request(payload))

    def test_malformed_payloads_get_typed_replies_not_crashes(self):
        deployment, server, client = self.make_rest_stack()
        for junk in (b"\x00\x01\x02", ["not", "a", "mapping"], 17, None,
                     {"no_route_key": True}, {"route": 42},
                     {"route": b"tag.get"}):
            reply = self.raw_request(deployment, client, junk)
            assert reply["code"] in ("bad_request", "unknown_route")
            assert "error" in reply and "kind" in reply
        # The serve loop survived all of it: a real call still works.
        described = deployment.simulator.run_process(
            client.call("instance.describe"))
        assert described["name"] == deployment.palaemon.name
        server.stop()

    def test_missing_fields_and_unknown_routes_over_the_wire(self):
        from repro.core.rest import RemoteError

        deployment, server, client = self.make_rest_stack()

        def call(route, **fields):
            def proc():
                result = yield from client.call(route, **fields)
                return result

            return deployment.simulator.run_process(proc())

        with pytest.raises(RemoteError) as missing:
            call("tag.update", policy="p")  # service + tag absent
        assert missing.value.code == "bad_request"
        assert "service" in missing.value.message
        assert "tag" in missing.value.message
        with pytest.raises(RemoteError) as unknown:
            call("tag.frobnicate")
        assert unknown.value.code == "unknown_route"
        server.stop()

    def test_hostile_and_honest_clients_interleave(self):
        """Garbage from one session never poisons another's replies."""
        deployment, server, client = self.make_rest_stack()
        simulator = deployment.simulator
        replies = []

        def hostile():
            for junk in (b"junk", {"route": "nope"}, ["x"]):
                reply = yield simulator.process(
                    client.connection.request(junk))
                replies.append(reply["code"])

        def honest():
            for _ in range(3):
                described = yield from client.call("instance.describe")
                assert described["name"] == deployment.palaemon.name

        def main():
            yield simulator.all_of([simulator.process(hostile()),
                                    simulator.process(honest())])

        simulator.run_process(main())
        assert sorted(replies) == ["bad_request", "bad_request",
                                   "unknown_route"]
        server.stop()
