"""SGX platform counters wrapped as :class:`MonotonicCounter`."""

from __future__ import annotations

from typing import Any, Generator

from repro.counters.base import MonotonicCounter
from repro.sim.core import Event
from repro.tee.counters import PlatformCounterService


class SGXPlatformCounter(MonotonicCounter):
    """Variant (a) of Fig 10: the SGX SDK's platform counters."""

    def __init__(self, service: PlatformCounterService,
                 counter_id: str) -> None:
        self._service = service
        self._counter_id = counter_id
        service.create(counter_id)

    @property
    def name(self) -> str:
        return "SGX platform counter"

    def increment(self) -> Generator[Event, Any, int]:
        value = yield self._service.simulator.process(
            self._service.increment(self._counter_id))
        return value

    def read(self) -> int:
        return self._service.read(self._counter_id)

    @property
    def wear(self) -> int:
        return self._service.writes(self._counter_id)
