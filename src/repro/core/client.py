"""PALAEMON clients: instance attestation plus policy management (§IV-B).

A client never trusts a PALAEMON instance by default — the instance may be
run by an untrusted provider. Two attestation paths are supported, matching
Fig 4:

1. **TLS-based** — verify the instance's certificate chains to the PALAEMON
   CA root (the CA only certifies known-good PALAEMON MRENCLAVEs).
2. **Explicit** — fetch the instance's IAS report and check that it (a) is
   signed by IAS and (b) binds the instance's public key to a PALAEMON
   MRENCLAVE the client itself trusts.

Clients may combine both (§V-A).
"""

from __future__ import annotations

from typing import Any, FrozenSet

from repro.core.service import PalaemonService
from repro.crypto.certificates import Certificate, self_signed_certificate
from repro.crypto.primitives import DeterministicRandom, sha256
from repro.crypto.signatures import KeyPair, PublicKey
from repro.errors import AttestationError, CertificateError, QuoteError
from repro.tee.ias import IASReport, IntelAttestationService


class PalaemonClient:
    """A client identity: key pair + self-signed certificate."""

    def __init__(self, name: str, rng: DeterministicRandom) -> None:
        self.name = name
        self._keys = KeyPair.generate(rng.fork(b"client:" + name.encode()))
        self.certificate: Certificate = self_signed_certificate(
            name, self._keys)
        #: Set after successful attestation of an instance.
        self.attested_instances: set = set()

    @property
    def public_key(self) -> PublicKey:
        return self._keys.public

    # -- instance attestation -------------------------------------------------

    def attest_instance_via_ca(self, instance: PalaemonService,
                               ca_root: PublicKey, now: float) -> None:
        """Path 1: check the instance certificate chains to the CA root."""
        certificate = instance.certificate
        if certificate is None:
            raise AttestationError(
                f"instance {instance.name!r} has no CA certificate")
        try:
            certificate.verify(now=now, trusted_root=ca_root)
        except CertificateError as exc:
            raise AttestationError(
                f"instance certificate rejected: {exc}") from exc
        if certificate.public_key != instance.public_key:
            raise AttestationError(
                "instance certificate does not match its public key")
        self.attested_instances.add(instance.name)

    def attest_instance_via_rest(self, rest_client, ca_root: PublicKey,
                                 retry_policy=None, rng=None):
        """Path 1 over the wire: fetch ``instance.describe`` and verify.

        A simulation process. Unlike :meth:`attest_instance_via_ca` this
        works against a remote front-end the client can only reach over
        the network; with a ``retry_policy`` (and the ``rng`` its jitter
        draws from) the describe call survives transient faults. The
        certificate checks themselves are never retried — a bad
        certificate is a verdict, not a fault.
        """
        simulator = rest_client.connection.network.simulator
        if retry_policy is not None:
            if rng is None:
                raise AttestationError(
                    "retrying attestation needs a deterministic rng")
            description = yield from rest_client.call_with_retry(
                "instance.describe", retry_policy, rng)
        else:
            description = yield from rest_client.call("instance.describe")
        certificate = description.get("certificate")
        if certificate is None:
            raise AttestationError(
                f"instance {description.get('name')!r} has no CA certificate")
        try:
            certificate.verify(now=simulator.now, trusted_root=ca_root)
        except CertificateError as exc:
            raise AttestationError(
                f"instance certificate rejected: {exc}") from exc
        if certificate.public_key != description.get("public_key"):
            raise AttestationError(
                "instance certificate does not match its public key")
        self.attested_instances.add(description["name"])
        return description

    def attest_instance_explicitly(self, instance: PalaemonService,
                                   ias: IntelAttestationService,
                                   trusted_mrenclaves: FrozenSet[bytes],
                                   ) -> IASReport:
        """Path 2: request and verify the instance's IAS report directly.

        Clients use this when they do not trust the current CA — e.g. they
        only trust PALAEMON versions they reviewed themselves (§III-B).
        """
        quote = instance.platform.quoting_enclave.quote(
            instance.enclave, sha256(instance.public_key.to_bytes()))
        report = ias.verify_quote_local(quote)
        try:
            report.verify(ias.public_key)
        except QuoteError as exc:
            raise AttestationError(f"IAS rejected the quote: {exc}") from exc
        if report.report_data != sha256(instance.public_key.to_bytes()):
            raise AttestationError(
                "IAS report does not bind the instance's public key")
        if report.mrenclave not in trusted_mrenclaves:
            raise AttestationError(
                f"instance MRENCLAVE {report.mrenclave.hex()[:16]}... is "
                f"not a PALAEMON version this client trusts")
        self.attested_instances.add(instance.name)
        return report

    def attest_instance_pinned(self, instance: PalaemonService,
                               pinned_keys: FrozenSet[PublicKey],
                               ca_root: PublicKey, now: float) -> None:
        """CA attestation plus public-key pinning (§IV-B).

        Some clients 'might be limited to connecting only to certain
        PALAEMON instances identified by their public keys' — e.g. a data
        provider that pre-approved specific deployments. The instance must
        both carry a valid CA certificate *and* be one of the pinned keys.
        """
        if instance.public_key not in pinned_keys:
            raise AttestationError(
                f"instance {instance.name!r} is not in this client's "
                f"pinned set")
        self.attest_instance_via_ca(instance, ca_root, now)

    def require_attested(self, instance: PalaemonService) -> None:
        """Guard: clients must attest before sending requests."""
        if instance.name not in self.attested_instances:
            raise AttestationError(
                f"client {self.name!r} has not attested instance "
                f"{instance.name!r}")

    # -- policy operations (attestation-guarded, via the dispatcher) ----------

    def invoke(self, instance: PalaemonService, route: str, **fields) -> Any:
        """Send one operation through the instance's dispatch pipeline.

        The in-process transport: the same registry, middleware, and
        admission control as REST and federation, minus the network.
        Raises the typed error (not a structured reply) on refusal.
        """
        self.require_attested(instance)
        return instance.dispatcher.invoke(route, certificate=self.certificate,
                                          **fields)

    def create_policy(self, instance: PalaemonService, policy) -> None:
        self.invoke(instance, "policy.create", policy=policy)

    def read_policy(self, instance: PalaemonService, policy_name: str):
        return self.invoke(instance, "policy.read", name=policy_name)

    def update_policy(self, instance: PalaemonService, policy) -> None:
        self.invoke(instance, "policy.update", policy=policy)

    def delete_policy(self, instance: PalaemonService,
                      policy_name: str) -> None:
        self.invoke(instance, "policy.delete", name=policy_name)
