"""Tests for the incremental Merkle tree."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.merkle import MerkleTree
from repro.errors import IntegrityError


class TestRoot:
    def test_empty_root_is_stable(self):
        assert MerkleTree().root() == MerkleTree().root()

    def test_single_leaf_changes_root(self):
        tree = MerkleTree()
        empty_root = tree.root()
        tree.set_leaf("/a", b"content")
        assert tree.root() != empty_root

    def test_content_change_changes_root(self):
        tree = MerkleTree()
        tree.set_leaf("/a", b"v1")
        first = tree.root()
        tree.set_leaf("/a", b"v2")
        assert tree.root() != first

    def test_rollback_restores_old_root(self):
        """The detection premise: old state has the old (stale) root."""
        tree = MerkleTree()
        tree.set_leaf("/a", b"v1")
        old_root = tree.root()
        tree.set_leaf("/a", b"v2")
        tree.set_leaf("/a", b"v1")
        assert tree.root() == old_root

    def test_name_matters_not_just_content(self):
        a = MerkleTree()
        a.set_leaf("/x", b"data")
        b = MerkleTree()
        b.set_leaf("/y", b"data")
        assert a.root() != b.root()

    def test_order_independent(self):
        a = MerkleTree()
        a.set_leaf("/1", b"one")
        a.set_leaf("/2", b"two")
        b = MerkleTree()
        b.set_leaf("/2", b"two")
        b.set_leaf("/1", b"one")
        assert a.root() == b.root()

    def test_removal_changes_root(self):
        tree = MerkleTree()
        tree.set_leaf("/a", b"a")
        tree.set_leaf("/b", b"b")
        with_both = tree.root()
        tree.remove_leaf("/b")
        assert tree.root() != with_both

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            MerkleTree().remove_leaf("/nope")

    def test_leaf_splicing_resistance(self):
        """Interior nodes cannot masquerade as leaves (domain separation)."""
        tree = MerkleTree()
        for i in range(4):
            tree.set_leaf(f"/{i}", f"data-{i}".encode())
        root = tree.root()
        # Build a 2-leaf tree whose leaves are the 4-leaf tree's interior
        # hashes; its root must differ from the original.
        spliced = MerkleTree()
        spliced.set_leaf_hash("/0", tree.leaf_hash("/0"))
        spliced.set_leaf_hash("/1", tree.leaf_hash("/1"))
        assert spliced.root() != root

    @given(st.dictionaries(st.text(min_size=1, max_size=10),
                           st.binary(max_size=64), max_size=20))
    def test_snapshot_round_trip(self, contents):
        tree = MerkleTree()
        for name, data in contents.items():
            tree.set_leaf(name, data)
        restored = MerkleTree.from_snapshot(tree.snapshot().items())
        assert restored.root() == tree.root()

    @given(st.lists(st.tuples(st.text(min_size=1, max_size=8),
                              st.binary(max_size=32)),
                    min_size=1, max_size=30))
    def test_root_is_function_of_final_state(self, operations):
        """Roots depend only on the final leaf set, not update history."""
        incremental = MerkleTree()
        for name, data in operations:
            incremental.set_leaf(name, data)
        final_state = {}
        for name, data in operations:
            final_state[name] = data
        direct = MerkleTree()
        for name, data in final_state.items():
            direct.set_leaf(name, data)
        assert incremental.root() == direct.root()

    @given(st.lists(
        st.tuples(st.sampled_from(["set", "remove"]),
                  st.sampled_from([f"/f{i}" for i in range(8)]),
                  st.binary(min_size=0, max_size=16)),
        min_size=1, max_size=40))
    def test_incremental_matches_from_scratch(self, operations):
        """Cached-level updates == a from-scratch ``from_snapshot`` build.

        The root is queried after every operation so each insert, update,
        and remove exercises the incremental path recompute, never a lazy
        full rebuild.
        """
        incremental = MerkleTree()
        incremental.root()  # materialize the (empty) level cache
        model = {}
        for operation, name, data in operations:
            if operation == "set" or name not in model:
                incremental.set_leaf(name, data)
                model[name] = data
            else:
                incremental.remove_leaf(name)
                del model[name]
            scratch = MerkleTree.from_snapshot(
                sorted(incremental.snapshot().items()))
            assert incremental.root() == scratch.root()
            for leaf in model:
                incremental.prove(leaf).verify(scratch.root())


class TestProofs:
    def build_tree(self, n=7):
        tree = MerkleTree()
        for i in range(n):
            tree.set_leaf(f"/file-{i}", f"content-{i}".encode())
        return tree

    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 13])
    def test_all_proofs_verify(self, size):
        tree = self.build_tree(size)
        root = tree.root()
        for name in tree.names():
            tree.prove(name).verify(root)

    def test_proof_fails_against_other_root(self):
        tree = self.build_tree()
        proof = tree.prove("/file-0")
        tree.set_leaf("/file-3", b"changed")
        with pytest.raises(IntegrityError):
            proof.verify(tree.root())

    def test_proof_for_tampered_leaf_fails(self):
        tree = self.build_tree()
        root = tree.root()
        proof = tree.prove("/file-2")
        proof.content_hash = b"\x00" * 32
        with pytest.raises(IntegrityError):
            proof.verify(root)

    def test_proof_for_missing_leaf_raises(self):
        with pytest.raises(KeyError):
            self.build_tree().prove("/missing")


class TestAccessors:
    def test_contains_and_len(self):
        tree = MerkleTree()
        assert len(tree) == 0
        tree.set_leaf("/a", b"x")
        assert "/a" in tree
        assert "/b" not in tree
        assert len(tree) == 1

    def test_bad_hash_length_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree().set_leaf_hash("/a", b"short")

    def test_names_sorted(self):
        tree = MerkleTree()
        tree.set_leaf("/c", b"3")
        tree.set_leaf("/a", b"1")
        tree.set_leaf("/b", b"2")
        assert tree.names() == ["/a", "/b", "/c"]
