"""Macro-benchmark application miniatures (§V-C).

Each module provides a functional miniature of one of the paper's evaluated
systems — real request semantics (stored values come back, quorum writes
replicate, buffer pools hit and miss) — with per-execution-mode cost models
so the NATIVE / EMU / HW throughput relationships of Figs 14-17 emerge from
the discrete-event simulation.
"""

from repro.apps.base import SimulatedServer
from repro.apps.kvstore import MemcachedServer
from repro.apps.webserver import NginxServer, NginxVariant
from repro.apps.kms import BarbicanServer, BarbicanVariant, VaultServer
from repro.apps.zookeeper import ZooKeeperCluster
from repro.apps.mariadb import MariaDBServer
from repro.apps.mlservice import InferenceService
from repro.apps.secretconfig import SECRET_CHANNEL_SURVEY, SecretChannels

__all__ = [
    "BarbicanServer",
    "BarbicanVariant",
    "InferenceService",
    "MariaDBServer",
    "MemcachedServer",
    "NginxServer",
    "NginxVariant",
    "SECRET_CHANNEL_SURVEY",
    "SecretChannels",
    "SimulatedServer",
    "VaultServer",
    "ZooKeeperCluster",
]
