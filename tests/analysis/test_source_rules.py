"""AST source-rule tests over synthetic packages under tmp_path."""

import json
import textwrap

import pytest

from repro.analysis.engine import Analyzer, repo_root
from repro.analysis.findings import Severity
from repro.analysis.suppress import apply_baseline, load_baseline


def write_module(tmp_path, dotted, text):
    """Materialise ``dotted`` (a module path) with its package chain."""
    parts = dotted.split(".")
    directory = tmp_path
    for package in parts[:-1]:
        directory = directory / package
        directory.mkdir(exist_ok=True)
        (directory / "__init__.py").touch()
    path = directory / f"{parts[-1]}.py"
    path.write_text(textwrap.dedent(text))
    return path


def lint(tmp_path, codes=None):
    return Analyzer().analyze_sources(tmp_path / "repro", codes=codes,
                                      base=tmp_path)


class TestWallClock:
    def test_time_call_in_sim_flagged(self, tmp_path):
        write_module(tmp_path, "repro.sim.bad", """\
            import time

            def stamp():
                return time.time()
            """)
        findings = lint(tmp_path)
        assert {finding.code for finding in findings} == {"SRC101"}
        assert {finding.line for finding in findings} == {1, 4}

    def test_datetime_now_flagged(self, tmp_path):
        write_module(tmp_path, "repro.obs.bad", """\
            import datetime

            def stamp():
                return datetime.datetime.now()
            """)
        findings = lint(tmp_path)
        assert [finding.code for finding in findings] == ["SRC101"]
        assert findings[0].line == 4

    def test_from_time_import_flagged(self, tmp_path):
        write_module(tmp_path, "repro.analysis.bad", """\
            from time import monotonic
            """)
        findings = lint(tmp_path)
        assert [finding.code for finding in findings] == ["SRC101"]

    def test_comments_and_strings_do_not_trip(self, tmp_path):
        write_module(tmp_path, "repro.sim.fine", '''\
            # time.time() is banned here
            DOC = "never call time.time() in the simulator"

            def stamp(clock):
                return clock()
            ''')
        assert lint(tmp_path) == []

    def test_other_packages_may_use_the_clock(self, tmp_path):
        write_module(tmp_path, "repro.core.fine", """\
            import time

            def stamp():
                return time.time()
            """)
        assert lint(tmp_path) == []


class TestBareExcept:
    def test_bare_except_flagged(self, tmp_path):
        write_module(tmp_path, "repro.core.bad", """\
            def swallow():
                try:
                    return 1
                except:
                    return None
            """)
        findings = lint(tmp_path)
        assert [finding.code for finding in findings] == ["SRC102"]
        assert findings[0].line == 4

    def test_typed_except_is_fine(self, tmp_path):
        write_module(tmp_path, "repro.core.fine", """\
            def precise():
                try:
                    return 1
                except ValueError:
                    return None
            """)
        assert lint(tmp_path) == []


class TestRestErrorCodes:
    def test_camel_case_code_flagged(self, tmp_path):
        write_module(tmp_path, "repro.core.rest", """\
            def handler(respond):
                respond(code="NotFound")
                return {"code": "Bad-Code"}
            """)
        findings = lint(tmp_path)
        assert [finding.code for finding in findings] == ["SRC103", "SRC103"]

    def test_snake_case_code_is_fine(self, tmp_path):
        write_module(tmp_path, "repro.core.rest", """\
            def handler(respond):
                respond(code="not_found")
                return {"code": "internal"}
            """)
        assert lint(tmp_path) == []

    def test_rule_only_applies_to_rest_module(self, tmp_path):
        write_module(tmp_path, "repro.core.other", """\
            def handler(respond):
                respond(code="NotFound")
            """)
        assert lint(tmp_path) == []


class TestUnauditedStateChange:
    def test_direct_mutation_without_audit_flagged(self, tmp_path):
        write_module(tmp_path, "repro.core.service", """\
            class PalaemonService:
                def sneak(self, name):
                    self.store.put("policies", name, {})
            """)
        findings = lint(tmp_path)
        assert [finding.code for finding in findings] == ["SRC104"]
        assert "sneak" in findings[0].message

    def test_transitive_mutation_without_audit_flagged(self, tmp_path):
        write_module(tmp_path, "repro.core.service", """\
            class PalaemonService:
                def outer(self, name):
                    self._inner(name)

                def _inner(self, name):
                    self.store.delete("policies", name)
            """)
        findings = lint(tmp_path)
        assert [finding.code for finding in findings] == ["SRC104"]
        assert "outer" in findings[0].message

    def test_audited_mutation_is_fine(self, tmp_path):
        write_module(tmp_path, "repro.core.service", """\
            class PalaemonService:
                def honest(self, name):
                    self.store.put("policies", name, {})
                    self.telemetry.audit("policy.create", policy=name)
            """)
        assert lint(tmp_path) == []

    def test_transitive_audit_counts(self, tmp_path):
        write_module(tmp_path, "repro.core.service", """\
            class PalaemonService:
                def outer(self, name):
                    self.store.put("policies", name, {})
                    self._record(name)

                def _record(self, name):
                    self.telemetry.audit("policy.create", policy=name)
            """)
        assert lint(tmp_path) == []

    def test_read_only_method_is_fine(self, tmp_path):
        write_module(tmp_path, "repro.core.service", """\
            class PalaemonService:
                def peek(self, name):
                    return self.store.get("policies", name)
            """)
        assert lint(tmp_path) == []


class TestWholeDocumentFlush:
    def test_whole_document_dump_flagged(self, tmp_path):
        write_module(tmp_path, "repro.core.bad", """\
            import pickle

            class Store:
                def _flush(self):
                    return pickle.dumps(self._data)
            """)
        findings = lint(tmp_path)
        assert [finding.code for finding in findings] == ["SRC106"]
        assert findings[0].line == 5

    def test_legacy_helper_exempt(self, tmp_path):
        write_module(tmp_path, "repro.core.fine", """\
            import pickle

            class Store:
                def _flush_legacy_monolithic(self):
                    return pickle.dumps(self._data)
            """)
        assert lint(tmp_path) == []

    def test_migration_helper_exempt(self, tmp_path):
        write_module(tmp_path, "repro.core.fine", """\
            import pickle

            class Store:
                def _migrate_format(self):
                    def seal():
                        return pickle.dumps(self._data)
                    return seal()
            """)
        assert lint(tmp_path) == []

    def test_partial_dumps_are_fine(self, tmp_path):
        write_module(tmp_path, "repro.core.fine", """\
            import pickle

            class Store:
                def _flush(self):
                    return pickle.dumps(self._data["tables"]["tags"])
            """)
        assert lint(tmp_path) == []


class TestBroadExcept:
    def test_except_exception_flagged(self, tmp_path):
        write_module(tmp_path, "repro.core.bad", """\
            def swallow():
                try:
                    return 1
                except Exception:
                    return None
            """)
        findings = lint(tmp_path)
        assert [finding.code for finding in findings] == ["SRC105"]
        assert findings[0].line == 4

    def test_exception_in_tuple_flagged(self, tmp_path):
        write_module(tmp_path, "repro.core.bad", """\
            def swallow():
                try:
                    return 1
                except (ValueError, Exception):
                    return None
            """)
        findings = lint(tmp_path)
        assert [finding.code for finding in findings] == ["SRC105"]

    def test_dispatch_boundary_is_exempt(self, tmp_path):
        write_module(tmp_path, "repro.core.dispatch", """\
            def handle():
                try:
                    return 1
                except Exception:
                    return None
            """)
        assert lint(tmp_path) == []

    def test_rest_is_no_longer_exempt(self, tmp_path):
        # The broad-catch boundary moved into the dispatch pipeline; the
        # REST codec itself must catch precisely like everyone else.
        write_module(tmp_path, "repro.core.rest", """\
            def handle():
                try:
                    return 1
                except Exception:
                    return None
            """)
        findings = lint(tmp_path)
        assert [f.code for f in findings] == ["SRC105"]

    def test_typed_catches_are_fine(self, tmp_path):
        write_module(tmp_path, "repro.core.fine", """\
            def precise():
                try:
                    return 1
                except (ValueError, KeyError):
                    return None
            """)
        assert lint(tmp_path) == []


class TestEngineBehaviour:
    def test_syntax_error_becomes_src100(self, tmp_path):
        write_module(tmp_path, "repro.core.broken", """\
            def oops(:
            """)
        findings = lint(tmp_path)
        assert [finding.code for finding in findings] == ["SRC100"]
        assert findings[0].severity is Severity.CRITICAL

    def test_inline_suppression(self, tmp_path):
        write_module(tmp_path, "repro.core.bad", """\
            def swallow():
                try:
                    return 1
                except:  # palint: disable=SRC102
                    return None
            """)
        assert lint(tmp_path) == []

    def test_inline_all_suppression(self, tmp_path):
        write_module(tmp_path, "repro.sim.bad", """\
            import time  # palint: disable=all
            """)
        assert lint(tmp_path) == []

    def test_code_filter(self, tmp_path):
        write_module(tmp_path, "repro.sim.bad", """\
            import time

            def swallow():
                try:
                    return 1
                except:
                    return None
            """)
        findings = lint(tmp_path, codes={"SRC102"})
        assert [finding.code for finding in findings] == ["SRC102"]

    def test_unknown_code_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            lint(tmp_path, codes={"SRC999"})


class TestBaseline:
    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == frozenset()

    def test_baseline_suppresses_matching_identity(self, tmp_path):
        write_module(tmp_path, "repro.core.bad", """\
            def swallow():
                try:
                    return 1
                except:
                    return None
            """)
        findings = lint(tmp_path)
        assert len(findings) == 1
        baseline_path = tmp_path / ".palint-baseline.json"
        baseline_path.write_text(json.dumps(
            {"version": 1, "suppress": [findings[0].identity()]}))
        kept, dropped = apply_baseline(findings,
                                       load_baseline(baseline_path))
        assert kept == []
        assert dropped == 1

    def test_bad_baseline_shape_rejected(self, tmp_path):
        path = tmp_path / ".palint-baseline.json"
        path.write_text(json.dumps({"version": 99, "suppress": []}))
        with pytest.raises(ValueError):
            load_baseline(path)


class TestRepoIsClean:
    def test_shipping_tree_has_no_findings(self):
        findings = Analyzer().analyze_repo(repo_root())
        assert findings == [], "\n".join(
            f"{finding.location}: [{finding.code}] {finding.message}"
            for finding in findings)
