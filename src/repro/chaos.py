"""The seeded chaos scenario behind ``python -m repro chaos``.

One deterministic run assembles a small PALAEMON estate — a primary and a
backup instance on separate platforms, a federation link, a REST
front-end, and a third instance waiting to be installed — and then drives
it through every fault class the :class:`~repro.sim.faults.FaultPlan`
can inject:

- **partition-then-heal** — the federation link drops all messages for a
  window; the secret fetch times out, backs off, and recovers;
- **counter outage** — installing a new instance while its platform's
  monotonic-counter service is down fails *loudly* with
  :class:`~repro.errors.CounterUnavailableError` (never by minting a
  fresh counter — that would silently discard rollback protection) and
  succeeds once the outage ends;
- **disk fault** — the primary's database disk refuses commits for a
  window; a tag update retries through it;
- **endpoint blackout** — the REST front-end goes dark; a client
  attests the instance over REST under a retry budget;
- **replication fault** — the replication link dies for good; the
  primary gives up with positive replication lag, crashes, and the
  backup is promoted exposing *only* acknowledged updates.

Everything probabilistic draws from one seeded
:class:`~repro.crypto.primitives.DeterministicRandom`, all fault windows
are virtual-time, and the summary renders with sorted keys — so the same
seed produces a byte-identical report (``--check`` asserts this, and
also that the same scenario *deadlocks* when retries are disabled).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from repro.core.client import PalaemonClient
from repro.core.failover import FailoverCoordinator
from repro.core.federation import FederatedInstance
from repro.core.policy import SecurityPolicy, ServiceSpec
from repro.core.rest import PalaemonRestClient, PalaemonRestServer
from repro.core.secrets import SecretKind, SecretSpec
from repro.core.service import PalaemonService
from repro.crypto.primitives import DeterministicRandom
from repro.errors import CounterUnavailableError, RetryExhaustedError
from repro.fs.blockstore import BlockStore
from repro.obs.telemetry import Telemetry
from repro.sim.core import Event, Simulator
from repro.sim.faults import FaultPlan
from repro.sim.network import Network, Site
from repro.sim.retry import RetryPolicy
from repro.tee.image import build_image
from repro.tee.platform import SGXPlatform


def _make_instance(simulator: Simulator, ias, name: str, seed: bytes,
                   telemetry: Telemetry) -> PalaemonService:
    rng = DeterministicRandom(seed)
    platform = SGXPlatform(simulator, f"{name}-node", rng.fork(b"platform"))
    ias.register_platform(platform.quoting_enclave.attestation_public_key,
                          platform.microcode.revision)
    service = PalaemonService(platform, BlockStore(f"{name}-volume"),
                              rng.fork(b"service"), name=name,
                              telemetry=telemetry)
    service.platform_registry.enroll(
        platform.platform_id,
        platform.quoting_enclave.attestation_public_key)
    return service


def run_chaos(seed: int, retries: bool = True) -> Dict[str, Any]:
    """Run the scenario; returns the recovery summary (a plain dict).

    With ``retries=False`` the first faulted operation is issued without
    a retry budget or deadline: the dropped message is never resent, the
    main process never finishes, and
    :meth:`~repro.sim.core.Simulator.run_process` raises
    ``SimulationError("... did not finish (deadlock?)")`` — the honest
    pre-retry behaviour, kept reachable as a regression guard.
    """
    label = b"chaos:%d" % seed
    rng = DeterministicRandom(label)
    simulator = Simulator()
    telemetry = Telemetry.for_simulator(simulator)
    network = Network(simulator, rng.fork(b"net"))
    plan = FaultPlan(simulator, seed=label, telemetry=telemetry)
    plan.attach_network(network)

    from repro.tee.ias import IntelAttestationService

    ias = IntelAttestationService(simulator, Site.IAS_US, rng.fork(b"ias"))
    primary = _make_instance(simulator, ias, "palaemon-1",
                             b"chaos-primary", telemetry)
    backup = _make_instance(simulator, ias, "palaemon-2",
                            b"chaos-backup", telemetry)
    simulator.run_process(primary.start(), name="start-primary")
    simulator.run_process(backup.start(), name="start-backup")

    from repro.core.ca import PalaemonCA

    ca = PalaemonCA(primary.platform, ias, frozenset({primary.mrenclave}),
                    rng.fork(b"ca"))
    primary.obtain_certificate(ca)
    backup.obtain_certificate(ca)

    client = PalaemonClient("chaos-client", rng.fork(b"client"))
    app_image = build_image("chaos-app", seed=b"v1")
    producer = SecurityPolicy(
        name="producer_policy",
        services=[ServiceSpec(name="svc", image_name="chaos-app",
                              mrenclaves=[app_image.mrenclave()])],
        secrets=[SecretSpec(name="SHARED_KEY", kind=SecretKind.RANDOM,
                            export_to=("consumer_policy",))])
    backup.create_policy(producer, client.certificate)
    app_policy = SecurityPolicy(
        name="app_policy",
        services=[ServiceSpec(name="svc", image_name="chaos-app",
                              mrenclaves=[app_image.mrenclave()])],
        secrets=[])
    primary.create_policy(app_policy, client.certificate)

    # Federation over the fabric (new transport), fail-over over the
    # fabric, and the REST front-end — the three recovery surfaces.
    local = FederatedInstance(primary, Site.SAME_RACK, ca.root_public_key,
                              network=network, rng=rng.fork(b"fed-1"))
    remote = FederatedInstance(backup, Site.SAME_RACK, ca.root_public_key,
                               network=network, rng=rng.fork(b"fed-2"))
    simulator.run_process(local.peer_with(remote), name="peering")
    coordinator = FailoverCoordinator(
        primary, backup, network=network,
        retry_policy=RetryPolicy(max_attempts=4, base_delay=0.05,
                                 attempt_timeout=0.5),
        rng=rng.fork(b"repl-retry"))
    rest_server = PalaemonRestServer(primary, network)

    # The fault schedule (all windows in virtual seconds).
    plan.drop_link("fed-palaemon-1-client", "fed-palaemon-2",
                   start=0.0, end=2.5)
    plan.counter_outage("counters-3", start=0.0, end=11.0)
    plan.attach_disk(primary.store.disk)
    plan.fail_disk("palaemon-db-disk", start=15.0, end=20.7)
    plan.blackout_endpoint("palaemon-1-rest", start=25.0, end=30.8)
    plan.drop_link("palaemon-1-repl", "palaemon-2-repl", start=40.5)

    platform3 = SGXPlatform(simulator, "palaemon-3-node",
                            rng.fork(b"platform-3"))
    plan.attach_counters(platform3.counters, "counters-3")
    volume3 = BlockStore("palaemon-3-volume")
    rng3 = rng.fork(b"service-3")

    summary: Dict[str, Any] = {
        "seed": seed,
        "retries": "on" if retries else "off",
    }

    def advance_to(deadline: float):
        """Absolute-time phase alignment (never a negative timeout)."""
        return simulator.timeout(max(0.0, deadline - simulator.now))

    def scenario() -> Generator[Event, Any, None]:
        # -- phase A: partition-then-heal federation fetch ----------------
        yield advance_to(1.0)
        if not retries:
            # The pre-retry behaviour: one send, wait forever. The drop
            # window eats the request and this process never finishes.
            yield simulator.process(local.fetch_remote_secrets(
                remote.name, "producer_policy", "consumer_policy",
                ["SHARED_KEY"]))
            return
        secrets = yield simulator.process(
            local.fetch_remote_secrets_with_retry(
                remote.name, "producer_policy", "consumer_policy",
                ["SHARED_KEY"],
                retry_policy=RetryPolicy(max_attempts=6, base_delay=0.2,
                                         attempt_timeout=0.5),
                rng=rng.fork(b"fetch-retry")))
        summary["federation_fetch"] = (
            "recovered" if "SHARED_KEY" in secrets else "incomplete")

        # -- phase B: counter outage during installation ------------------
        yield advance_to(10.0)
        try:
            PalaemonService(platform3, volume3, rng3.fork(b"probe"),
                            name="palaemon-3", telemetry=telemetry)
        except CounterUnavailableError as exc:
            summary["counter_outage_error"] = type(exc).__name__

        def install_instance() -> Generator[Event, Any, PalaemonService]:
            service = PalaemonService(platform3, volume3,
                                      rng3.fork(b"install"),
                                      name="palaemon-3", telemetry=telemetry)
            yield simulator.process(service.start())
            return service

        third = yield simulator.process(
            RetryPolicy(max_attempts=5, base_delay=0.6,
                        attempt_timeout=2.0).call(
                simulator, install_instance, rng.fork(b"install-retry"),
                operation="instance.install", telemetry=telemetry),
            name="install-palaemon-3")
        summary["third_instance"] = (
            "started" if third.running else "not-started")

        # -- phase C: disk fault under a tag update -----------------------
        yield advance_to(20.0)
        tag = rng.fork(b"tag").bytes(32)
        yield simulator.process(
            RetryPolicy(max_attempts=6, base_delay=0.2,
                        attempt_timeout=1.0).call(
                simulator,
                lambda: primary.update_tag("app_policy", "svc", tag),
                rng.fork(b"tag-retry"), operation="tag.update",
                telemetry=telemetry),
            name="tag-update-retry")
        summary["tag_update"] = (
            "recovered"
            if primary.get_tag_instant("app_policy", "svc") == tag
            else "lost")

        # -- phase D: REST blackout under client attestation --------------
        yield advance_to(24.0)
        rest_client = yield simulator.process(PalaemonRestClient.connect(
            network, client, rest_server, Site.SAME_DC,
            rng.fork(b"rest-conn"), trusted_root=ca.root_public_key))
        rest_client.telemetry = telemetry
        yield advance_to(25.1)
        description = yield simulator.process(
            client.attest_instance_via_rest(
                rest_client, ca.root_public_key,
                retry_policy=RetryPolicy(max_attempts=8, base_delay=0.4,
                                         attempt_timeout=0.8),
                rng=rng.fork(b"attest-retry")),
            name="rest-attest")
        summary["rest_attestation"] = (
            "recovered" if description["name"] == primary.name else "failed")

        # -- phase E: replication fault, give-up, promotion ---------------
        yield advance_to(40.0)
        yield simulator.process(
            coordinator.replicate("chaos", "k1", "acked"),
            name="replicate-k1")
        yield advance_to(40.5)
        try:
            yield simulator.process(
                coordinator.replicate("chaos", "k2", "unacked"),
                name="replicate-k2")
        except RetryExhaustedError:
            summary["replication_giveup"] = "after-retries"
        summary["replication_lag"] = coordinator.replication_lag()
        coordinator.primary_crashed()
        promoted = yield simulator.process(coordinator.promote_backup(),
                                           name="promote")
        summary["promoted"] = promoted.name
        summary["promoted_epoch"] = coordinator.epoch
        summary["replayed_updates"] = {
            "k1": promoted.store.get("chaos", "k1"),
            "k2": promoted.store.get("chaos", "k2"),
        }

    simulator.run_process(scenario(), name="chaos-main")

    retry_counts: Dict[str, int] = {}
    for series in telemetry.metrics.series():
        if getattr(series, "name", "") != "palaemon_retries_total":
            continue
        labels = dict(series.labels)
        key = f"{labels.get('operation')}:{labels.get('outcome')}"
        retry_counts[key] = int(series.value)
    summary["retries_by_operation"] = dict(sorted(retry_counts.items()))
    summary["faults_injected"] = plan.summary()
    summary["sim_time"] = round(simulator.now, 6)
    summary["audit_records"] = telemetry.verify_audit_chain()
    summary["audit_head"] = telemetry.audit_log.head().hex()
    return summary


def render_summary(summary: Dict[str, Any]) -> str:
    """Stable plain-text rendering (sorted keys, no float noise)."""
    lines: List[str] = ["chaos recovery summary"]
    for key in sorted(summary):
        value = summary[key]
        if isinstance(value, dict):
            lines.append(f"  {key}:")
            for inner in sorted(value):
                lines.append(f"    {inner}: {value[inner]}")
        else:
            lines.append(f"  {key}: {value}")
    return "\n".join(lines)
