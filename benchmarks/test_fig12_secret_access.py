"""Fig 12 — latency to retrieve multiple secrets over HTTPS.

A client retrieves 1/5/50/100 secrets (32 bytes each) from a PALAEMON
service deployed locally, in the same data centre, or on another continent.
The reproduced shape: latency is flat in the number of secrets (they ride
one connection) and dominated by TLS connection establishment, so only the
remote-continent deployment is visibly slower.
"""

from repro import calibration
from repro.benchlib.tables import format_table
from repro.crypto.primitives import DeterministicRandom
from repro.sim.core import Simulator
from repro.sim.network import Network, Site
from repro.tls.channel import TLSConnection, TLSServer

from benchmarks.conftest import run_once

_SECRET_COUNTS = (1, 5, 50, 100)
_DEPLOYMENTS = {
    "Local": Site.SAME_RACK,
    "Local+Same DC": Site.SAME_DC,
    "Local+Remote": Site.INTERCONTINENTAL_11000KM,
}


def _retrieve(site, count, seed):
    """One full retrieval: TLS handshake + one request for `count` keys."""
    sim = Simulator()
    rng = DeterministicRandom(seed)
    net = Network(sim, rng.fork(b"net"), jitter_fraction=0.0)
    secrets = {f"KEY_{i}": rng.fork(b"secret%d" % i).bytes(32)
               for i in range(count)}

    def handler(request, _session):
        names = request["names"]
        return {name: secrets[name] for name in names}

    endpoint = net.endpoint("palaemon", site)
    server = TLSServer(net, endpoint, handler)
    server.start()

    def main():
        start = sim.now
        connection = yield sim.process(TLSConnection.connect(
            net, "client", Site.SAME_RACK, endpoint, rng))
        server.register_session(connection.session)
        reply = yield sim.process(connection.request(
            {"names": list(secrets)}, size_bytes=256 + 48 * count))
        server.stop()
        assert reply == secrets  # functional: all keys arrive intact
        return sim.now - start

    return sim.run_process(main())


def _measure_all():
    results = {}
    for deployment, site in _DEPLOYMENTS.items():
        for count in _SECRET_COUNTS:
            seed = f"{deployment}-{count}".encode()
            results[(deployment, count)] = _retrieve(site, count, seed)
    return results


def test_fig12_secret_access(benchmark):
    latencies = run_once(benchmark, _measure_all)

    rows = [[deployment] + [latencies[(deployment, count)] * 1e3
                            for count in _SECRET_COUNTS]
            for deployment in _DEPLOYMENTS]
    print()
    print(format_table(
        ["deployment"] + [f"{count} keys (ms)" for count in _SECRET_COUNTS],
        rows, title="Fig 12: secret retrieval latency over HTTPS"))

    # Flat in the number of secrets: 100 keys cost at most ~20% more than 1.
    for deployment in _DEPLOYMENTS:
        one = latencies[(deployment, 1)]
        hundred = latencies[(deployment, 100)]
        assert hundred <= one * 1.2, deployment

    # Deployment distance dominates: remote continent >> same DC ~ local.
    local = latencies[("Local", 1)]
    same_dc = latencies[("Local+Same DC", 1)]
    remote = latencies[("Local+Remote", 1)]
    assert remote > 10 * same_dc
    assert same_dc < 5 * local
    # Remote latency is in the hundreds of milliseconds (TLS over ~150 ms
    # RTT), inside the figure's axis range.
    assert 0.2 <= remote <= 1.2
