#!/usr/bin/env python3
"""Serverless cold starts under attestation (the Clemmys setting, SS VII).

The paper's attestation design matters most where enclaves start *often* —
FaaS platforms cold-start function instances on demand, and every cold
start must be attested before it may touch secrets. This example runs a
burst of function invocations against a platform whose cold starts are
attested three ways (Fig 9's variants) and shows why per-start IAS round
trips are untenable while PALAEMON keeps cold starts interactive.

Run:  python examples/faas_coldstart.py
"""

from repro.runtime.startup import AttestationVariant, StartupModel
from repro.sim.core import Simulator
from repro.sim.metrics import LatencyRecorder
from repro.sim.workload import run_closed_loop

#: A burst of concurrent invocations hitting cold functions.
BURST = 24
#: Function body runtime once started (ms of compute).
FUNCTION_RUNTIME_SECONDS = 0.005


def run_burst(variant: AttestationVariant) -> tuple:
    """Cold-start BURST functions; return (per-invocation stats, rate)."""
    simulator = Simulator()
    model = StartupModel(simulator)
    latencies = LatencyRecorder(variant.value)

    def invoke(_request_id):
        started = simulator.now
        yield simulator.process(model.start_one(variant))  # cold start
        yield simulator.timeout(FUNCTION_RUNTIME_SECONDS)   # the function
        latencies.record(simulator.now - started)

    point = run_closed_loop(simulator, concurrency=BURST, factory=invoke,
                            duration=3.0)
    return latencies.summary(), point.achieved_rate


def main() -> None:
    print(f"FaaS burst: {BURST} concurrent invocations, every one a cold "
          f"start that must be attested before receiving its secrets.\n")
    results = {}
    for variant in (AttestationVariant.SGX_ONLY, AttestationVariant.PALAEMON,
                    AttestationVariant.IAS):
        summary, rate = run_burst(variant)
        results[variant] = (summary, rate)
        print(f"  {variant.value:<26} p50={summary.p50 * 1e3:7.1f} ms   "
              f"p95={summary.p95 * 1e3:7.1f} ms   "
              f"throughput={rate:6.1f} invocations/s")

    palaemon_p95 = results[AttestationVariant.PALAEMON][0].p95
    ias_p95 = results[AttestationVariant.IAS][0].p95
    print(f"\nPALAEMON keeps p95 cold-start latency at "
          f"{palaemon_p95 * 1e3:.0f} ms — close to the unattested floor —")
    print(f"while per-start IAS attestation pushes p95 to "
          f"{ias_p95 * 1e3:.0f} ms ({ias_p95 / palaemon_p95:.1f}x worse) "
          f"and halves sustainable invocation throughput twice over.")
    print("Unattested SGX starts are faster still, but receive no secrets: "
          "not an option for confidential functions.")
    assert ias_p95 > 2 * palaemon_p95
    assert results[AttestationVariant.PALAEMON][1] > \
        2 * results[AttestationVariant.IAS][1]


if __name__ == "__main__":
    main()
