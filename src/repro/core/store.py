"""PALAEMON's encrypted policy database.

The paper embeds an encrypted SQLite inside the PALAEMON enclave (§IV); here
the database is an encrypted, integrity-protected key/value document
persisted to an untrusted block store. Everything PALAEMON must remember
lives in it: policies, materialized secrets, expected file-system tags,
per-service clean-exit flags — and the **version number** ``v`` that pairs
with the hardware monotonic counter ``c`` in the rollback protocol (Fig 6).

Reads are served from enclave memory; *updates* commit the encrypted blob to
disk, which is why tag updates cost ~6x tag reads (Fig 11 left).
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Generator

from repro import calibration
from repro.crypto.primitives import DeterministicRandom
from repro.crypto.symmetric import SecretBox
from repro.errors import IntegrityError, PolicyValidationError
from repro.fs.blockstore import BlockStore
from repro.sim.core import Event, Simulator
from repro.sim.resources import DiskModel

_DB_PATH = "/palaemon.db"

#: Disk commit latency calibrated against Fig 11: a tag update (commit
#: included) takes ~27 ms vs ~4.5 ms for a read.
_COMMIT_LATENCY_SECONDS = (calibration.TAG_UPDATE_LATENCY_SECONDS
                           - calibration.TAG_READ_LATENCY_SECONDS)


class PolicyStore:
    """An encrypted single-document database with an explicit version."""

    def __init__(self, simulator: Simulator, store: BlockStore,
                 db_key: bytes, rng: DeterministicRandom) -> None:
        self.simulator = simulator
        self.store = store
        self._box = SecretBox(db_key, rng.fork(b"db-nonces"))
        self.disk = DiskModel(simulator, _COMMIT_LATENCY_SECONDS,
                              name="palaemon-db-disk")
        self._data: Dict[str, Any] = {"version": 0, "tables": {}}
        if store.exists(_DB_PATH):
            self._load()

    # -- persistence -----------------------------------------------------

    def _load(self) -> None:
        sealed = self.store.read(_DB_PATH)
        try:
            payload = self._box.open(sealed, associated_data=b"palaemon-db")
        except IntegrityError:
            raise IntegrityError(
                "policy database failed integrity verification") from None
        self._data = pickle.loads(payload)

    def _flush(self) -> None:
        payload = pickle.dumps(self._data)
        self.store.write(_DB_PATH,
                         self._box.seal(payload,
                                        associated_data=b"palaemon-db"))

    def commit(self) -> Generator[Event, Any, None]:
        """Durably persist the database (simulated disk latency)."""
        self._flush()
        yield self.simulator.process(self.disk.commit())

    def commit_instant(self) -> None:
        """Persist without simulating latency (functional paths)."""
        self._flush()

    # -- version (rollback protocol) -----------------------------------------

    @property
    def version(self) -> int:
        return self._data["version"]

    def set_version(self, version: int) -> None:
        if version < self._data["version"]:
            # A typed error, not a bare ValueError: callers routing errors
            # over the REST layer map exception classes to stable codes,
            # and a decreasing version is a policy-integrity refusal.
            raise PolicyValidationError(
                f"database version must not decrease "
                f"({version} < {self._data['version']})")
        self._data["version"] = version

    # -- tables ------------------------------------------------------------

    def table(self, name: str) -> Dict[str, Any]:
        """A named table (a dict); created on first use."""
        return self._data["tables"].setdefault(name, {})

    def put(self, table: str, key: str, value: Any) -> None:
        self.table(table)[key] = value

    def get(self, table: str, key: str, default: Any = None) -> Any:
        return self.table(table).get(key, default)

    def delete(self, table: str, key: str) -> None:
        self.table(table).pop(key, None)

    def keys(self, table: str) -> list:
        return sorted(self.table(table))

    def __contains__(self, table_key: tuple) -> bool:
        table, key = table_key
        return key in self.table(table)
