"""The file-system shield: transparent encryption with tag verification.

Inside the TEE, applications see plaintext files; the untrusted block store
only ever sees ciphertext. The shield maintains the FSPF and pushes the
current tag to a :class:`TagListener` (PALAEMON, in the full system) on the
three events §III-D names: file close, explicit sync, and process exit.

Tag verification on open detects both tampering and rollback: a store
restored from an old snapshot carries the *old* tag, which no longer matches
the expected tag recorded at PALAEMON.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.crypto.primitives import DeterministicRandom, sha256
from repro.crypto.symmetric import SecretBox
from repro.errors import IntegrityError, StorageFaultError, TagMismatchError
from repro.fs.blockstore import BlockStore
from repro.fs.fspf import FileSystemProtectionFile

#: Called with the new tag whenever the shield persists state.
TagListener = Callable[[bytes], None]

_FSPF_PATH = "/.fspf"


class ProtectedFileSystem:
    """A transparently encrypted, tag-protected view over a block store."""

    def __init__(self, store: BlockStore, fs_key: bytes,
                 rng: DeterministicRandom,
                 tag_listener: Optional[TagListener] = None) -> None:
        self.store = store
        self._box = SecretBox(fs_key, rng.fork(b"fs-nonces"))
        self._rng = rng
        self.tag_listener = tag_listener
        self._fspf = FileSystemProtectionFile()
        self._cache: Dict[str, bytes] = {}
        # Store write generation at which each cached path was last
        # validated against its FSPF hash; sync() skips re-reading paths
        # whose backing blocks have not changed since.
        self._validated_generation: Dict[str, int] = {}
        self.decrypt_count = 0
        self.encrypt_count = 0
        if store.exists(_FSPF_PATH):
            self._fspf = FileSystemProtectionFile.unseal(
                self._box, store.read(_FSPF_PATH))

    # -- mounting ---------------------------------------------------------

    def verify_tag(self, expected_tag: bytes) -> None:
        """Check the actual tag against PALAEMON's expected tag.

        This is the mount-time freshness check: a mismatch means the volume
        was tampered with or rolled back since the expected tag was pushed.
        """
        actual = self.tag()
        if actual != expected_tag:
            # The volume failed its freshness check: every cached
            # plaintext was decrypted from state that can no longer be
            # trusted, so serving it from read() would leak exactly what
            # the tag check exists to prevent.
            self._cache.clear()
            self._validated_generation.clear()
            raise TagMismatchError(
                f"file system tag mismatch on {self.store.name!r}: "
                f"expected {expected_tag.hex()[:16]}..., "
                f"actual {actual.hex()[:16]}...")

    def tag(self) -> bytes:
        """The current file-system tag (Merkle root over ciphertexts)."""
        return self._fspf.tag()

    # -- file operations ----------------------------------------------------

    def write(self, path: str, plaintext: bytes) -> None:
        """Encrypt and stage ``plaintext`` at ``path`` (not yet durable)."""
        self._check_path(path)
        ciphertext = self._box.seal(plaintext, associated_data=path.encode())
        self.encrypt_count += 1
        self.store.write(path, ciphertext)
        self._fspf.set_entry(path, sha256(ciphertext), len(plaintext))
        self._cache[path] = plaintext
        self._record_validation(path)

    def read(self, path: str) -> bytes:
        """Read and transparently decrypt ``path``, verifying integrity."""
        self._check_path(path)
        if path in self._cache:
            return self._cache[path]
        if path not in self._fspf.entries:
            raise FileNotFoundError(path)
        ciphertext = self.store.read(path)
        entry = self._fspf.entries[path]
        if sha256(ciphertext) != entry.ciphertext_hash:
            raise IntegrityError(f"file {path!r} does not match its FSPF hash")
        plaintext = self._box.open(ciphertext, associated_data=path.encode())
        self.decrypt_count += 1
        self._cache[path] = plaintext
        self._record_validation(path)
        return plaintext

    def delete(self, path: str) -> None:
        self._check_path(path)
        if path not in self._fspf.entries:
            raise FileNotFoundError(path)
        self.store.delete(path)
        self._fspf.remove_entry(path)
        self._cache.pop(path, None)
        self._validated_generation.pop(path, None)

    def exists(self, path: str) -> bool:
        return path in self._fspf.entries

    def list(self) -> List[str]:
        return sorted(self._fspf.entries)

    # -- tag persistence -----------------------------------------------------

    def close_file(self, path: str) -> bytes:
        """File close: persist the FSPF and push the tag (§III-D event i)."""
        self._cache.pop(path, None)
        return self._persist()

    def sync(self) -> bytes:
        """Explicit sync: persist and push the tag (§III-D event ii).

        Sync is also the revalidation point for the plaintext cache: an
        entry whose backing ciphertext no longer matches its FSPF hash
        (tampered, deleted, or unreadable underneath us) is evicted, so a
        later read() re-verifies against the store instead of serving a
        plaintext the store no longer backs. Paths whose store write
        generation is unchanged since their last validation are skipped —
        their blocks cannot have changed, so sync no longer re-reads and
        re-hashes every cached ciphertext.
        """
        for path in list(self._cache):
            entry = self._fspf.entries.get(path)
            if entry is None or not self.store.exists(path):
                self._evict(path)
                continue
            generation = self._generation(path)
            if generation is not None and \
                    generation == self._validated_generation.get(path):
                continue
            try:
                ciphertext = self.store.read(path)
            except StorageFaultError:
                self._evict(path)
                continue
            if sha256(ciphertext) != entry.ciphertext_hash:
                self._evict(path)
            elif generation is not None:
                self._validated_generation[path] = generation
        return self._persist()

    def on_exit(self) -> bytes:
        """Process exit: persist and push the tag (§III-D event iii)."""
        self._cache.clear()
        self._validated_generation.clear()
        return self._persist()

    def _evict(self, path: str) -> None:
        self._cache.pop(path, None)
        self._validated_generation.pop(path, None)

    def _generation(self, path: str) -> Optional[int]:
        """The store's write generation for ``path``, if it offers one.

        Backends that cannot soundly report "unchanged" (e.g. a replicated
        store whose Byzantine replicas may diverge without a version bump)
        simply lack the method, and sync falls back to full revalidation.
        """
        generation = getattr(self.store, "generation", None)
        return generation(path) if generation is not None else None

    def _record_validation(self, path: str) -> None:
        generation = self._generation(path)
        if generation is not None:
            self._validated_generation[path] = generation

    def _persist(self) -> bytes:
        self.store.write(_FSPF_PATH, self._fspf.seal(self._box))
        tag = self.tag()
        if self.tag_listener is not None:
            self.tag_listener(tag)
        return tag

    @staticmethod
    def _check_path(path: str) -> None:
        if path == _FSPF_PATH:
            raise ValueError(f"{_FSPF_PATH} is reserved for the shield")
        if not path.startswith("/"):
            raise ValueError(f"paths must be absolute, got {path!r}")
