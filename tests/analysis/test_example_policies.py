"""Satellite check: every policy an example constructs passes palint.

The examples are the documentation users actually copy; if one of them
builds a policy with an ERROR-or-worse trust smell, the linter and the
docs contradict each other. Each example's ``main()`` runs in-process
with ``SecurityPolicy.validate`` instrumented to capture every policy
instance, and the captured set (last definition per name — examples
re-submit updated revisions under the same name) is then analyzed.
"""

import contextlib
import importlib.util
import io
import pathlib

import pytest

from repro.analysis.engine import Analyzer
from repro.analysis.findings import Severity
from repro.core.policy import SecurityPolicy

ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))
#: Examples that are pure latency studies and never build a policy.
POLICY_FREE = {"faas_coldstart"}


def run_example_capturing_policies(path, monkeypatch):
    """Import + run one example, returning every policy it validated."""
    captured = {}
    original = SecurityPolicy.validate

    def recording_validate(self):
        captured[self.name] = self
        return original(self)

    monkeypatch.setattr(SecurityPolicy, "validate", recording_validate)
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    with contextlib.redirect_stdout(io.StringIO()):
        spec.loader.exec_module(module)
        module.main()
    return captured


def test_every_example_is_covered():
    assert [path.name for path in EXAMPLES] == [
        "faas_coldstart.py", "federation_failover.py", "managed_cloud.py",
        "ml_pipeline.py", "quickstart.py", "secure_update.py"]


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda path: path.stem)
def test_example_policies_pass_lint(path, monkeypatch):
    captured = run_example_capturing_policies(path, monkeypatch)
    if path.stem in POLICY_FREE:
        assert not captured, f"{path.name} now builds policies; unlist it"
        return
    assert captured, f"{path.name} never constructed a policy"
    findings = Analyzer().analyze_policy_set(captured)
    serious = [finding for finding in findings
               if finding.severity >= Severity.ERROR]
    assert serious == [], "\n".join(
        f"{path.name}: {finding.location}: [{finding.code}] "
        f"{finding.message}" for finding in serious)
