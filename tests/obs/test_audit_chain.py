"""The audit chain must detect every class of tampering: editing a
record, dropping one, reordering two, and truncating the tail (given an
anchored head)."""

import pytest

from repro.errors import IntegrityError
from repro.obs.audit import GENESIS_HASH, AuditLog, record_digest


def make_log(records=5):
    clock = {"now": 0.0}

    def tick():
        clock["now"] += 1.0
        return clock["now"]

    log = AuditLog(tick)
    for index in range(records):
        log.append("tag.update", policy="p", service="s", round=index)
    return log


class TestChainConstruction:
    def test_empty_log_verifies(self):
        log = AuditLog(lambda: 0.0)
        assert log.verify_chain() == 0
        assert log.head() == GENESIS_HASH

    def test_records_chain_to_genesis(self):
        log = make_log(3)
        assert log.records[0].previous_hash == GENESIS_HASH
        for prev, curr in zip(log.records, log.records[1:]):
            assert curr.previous_hash == prev.record_hash
        assert log.verify_chain() == 3
        assert log.is_valid()

    def test_head_tracks_newest_record(self):
        log = make_log(4)
        assert log.head() == log.records[-1].record_hash

    def test_details_sanitized_for_hashing(self):
        log = AuditLog(lambda: 0.0)
        record = log.append("attest.accept", tag=b"\x01\x02",
                            count=3, ok=True, missing=None,
                            other=["not", "scalar"])
        assert record.details["tag"] == "0102"
        assert record.details["count"] == 3
        assert record.details["ok"] is True
        assert record.details["missing"] is None
        assert isinstance(record.details["other"], str)
        assert log.verify_chain() == 1

    def test_by_kind_filters(self):
        log = make_log(3)
        log.append("policy.create", policy="q")
        assert len(log.by_kind("tag.update")) == 3
        assert len(log.by_kind("policy.create")) == 1


class TestTamperDetection:
    @pytest.mark.parametrize("field,value", [
        ("kind", "tag.update.fake"),
        ("timestamp", 99.0),
        ("sequence", 7),
    ])
    def test_editing_scalar_field_detected(self, field, value):
        log = make_log()
        setattr(log.records[2], field, value)
        with pytest.raises(IntegrityError):
            log.verify_chain()
        assert not log.is_valid()

    def test_editing_details_detected(self):
        log = make_log()
        log.records[1].details["policy"] = "someone-elses-policy"
        with pytest.raises(IntegrityError, match="edited"):
            log.verify_chain()

    def test_editing_any_single_record_detected(self):
        for position in range(5):
            log = make_log(5)
            log.records[position].details["round"] = 999
            assert not log.is_valid(), f"edit at {position} missed"

    def test_dropping_interior_record_detected(self):
        log = make_log()
        del log.records[2]
        with pytest.raises(IntegrityError):
            log.verify_chain()

    def test_dropping_first_record_detected(self):
        log = make_log()
        del log.records[0]
        with pytest.raises(IntegrityError):
            log.verify_chain()

    def test_reordering_detected(self):
        log = make_log()
        log.records[1], log.records[2] = log.records[2], log.records[1]
        with pytest.raises(IntegrityError):
            log.verify_chain()

    def test_recomputed_forgery_still_breaks_successor(self):
        """Even re-hashing an edited record breaks the chain link after it."""
        log = make_log()
        record = log.records[1]
        record.details["policy"] = "forged"
        record.record_hash = record_digest(
            record.sequence, record.timestamp, record.kind, record.details,
            record.previous_hash)
        with pytest.raises(IntegrityError):
            log.verify_chain()

    def test_truncation_detected_with_anchored_head(self):
        log = make_log()
        anchored = log.head()
        log.records.pop()  # Byzantine operator truncates the newest record
        assert log.verify_chain() == 4  # chain walk alone cannot see it...
        with pytest.raises(IntegrityError, match="truncated"):
            log.verify_chain(expected_head=anchored)  # ...the anchor can

    def test_full_replacement_detected_with_anchored_head(self):
        log = make_log()
        anchored = log.head()
        replacement = AuditLog(lambda: 0.0)
        for index in range(5):
            replacement.append("tag.update", policy="benign", round=index)
        log.records = replacement.records  # internally consistent forgery
        assert log.verify_chain() == 5
        with pytest.raises(IntegrityError):
            log.verify_chain(expected_head=anchored)
