"""Tests for the PALAEMON CA, client attestation paths, and secure update."""

import pytest

from repro.core.ca import PalaemonCA, build_ca_image
from repro.core.client import PalaemonClient
from repro.core.board import BoardEvaluator
from repro.core.service import PalaemonService, build_palaemon_image
from repro.core.update import (
    CAUpdateCoordinator,
    ImagePolicyExport,
    ImageRelease,
    apply_image_export,
    intersect_permitted,
    prepare_application_update,
)
from repro.crypto.primitives import DeterministicRandom, sha256
from repro.errors import AttestationError, UpdateError
from repro.fs.blockstore import BlockStore
from repro.tee.image import build_image

from tests.core.conftest import Deployment


class TestCaImage:
    def test_allowlist_embedded_in_measurement(self):
        """Changing the allow-list changes the CA's own MRENCLAVE."""
        a = build_ca_image(frozenset({b"\x01" * 32}))
        b = build_ca_image(frozenset({b"\x02" * 32}))
        assert a.mrenclave() != b.mrenclave()

    def test_allowlist_order_irrelevant(self):
        a = build_ca_image(frozenset({b"\x01" * 32, b"\x02" * 32}))
        b = build_ca_image(frozenset({b"\x02" * 32, b"\x01" * 32}))
        assert a.mrenclave() == b.mrenclave()


class TestCaIssuance:
    def test_approved_instance_gets_certificate(self, deployment):
        cert = deployment.palaemon.certificate
        assert cert is not None
        cert.verify(now=deployment.simulator.now,
                    trusted_root=deployment.ca.root_public_key)
        assert cert.attributes["mrenclave"] == \
            deployment.palaemon.mrenclave.hex()

    def test_unapproved_mre_refused(self, deployment):
        """A provider-modified PALAEMON build never gets certified."""
        rogue = PalaemonService(
            deployment.platform, BlockStore("rogue-volume"),
            DeterministicRandom(b"rogue"), version="evil-fork")
        assert rogue.mrenclave != deployment.palaemon.mrenclave
        with pytest.raises(AttestationError, match="not an approved"):
            rogue.obtain_certificate(deployment.ca)

    def test_certificate_lifetime_limited(self, deployment):
        from repro.errors import CertificateError

        cert = deployment.palaemon.certificate
        with pytest.raises(CertificateError, match="expired"):
            cert.verify(now=deployment.simulator.now
                        + deployment.ca.cert_lifetime + 1,
                        trusted_root=deployment.ca.root_public_key)

    def test_key_binding_enforced(self, deployment):
        """The CA refuses quotes that do not bind the claimed public key."""
        from repro.crypto.signatures import KeyPair

        other_keys = KeyPair.generate(DeterministicRandom(b"other"), bits=512)
        quote = deployment.platform.quoting_enclave.quote(
            deployment.palaemon.enclave,
            sha256(deployment.palaemon.public_key.to_bytes()))
        with pytest.raises(AttestationError, match="bind"):
            deployment.ca.issue_instance_certificate(
                quote, other_keys.public, subject="mitm")


class TestClientAttestation:
    def test_via_ca_accepts_certified_instance(self, deployment):
        client = PalaemonClient("fresh", DeterministicRandom(b"fresh"))
        client.attest_instance_via_ca(deployment.palaemon,
                                      deployment.ca.root_public_key,
                                      now=deployment.simulator.now)
        assert deployment.palaemon.name in client.attested_instances

    def test_via_ca_rejects_uncertified_instance(self, deployment):
        rogue = PalaemonService(deployment.platform, BlockStore("r"),
                                DeterministicRandom(b"r2"),
                                name="rogue-instance")
        client = PalaemonClient("fresh", DeterministicRandom(b"fresh"))
        with pytest.raises(AttestationError, match="no CA certificate"):
            client.attest_instance_via_ca(rogue,
                                          deployment.ca.root_public_key,
                                          now=deployment.simulator.now)

    def test_via_ca_rejects_foreign_root(self, deployment):
        from repro.crypto.certificates import CertificateAuthority

        evil_root = CertificateAuthority.create(
            "evil", DeterministicRandom(b"evil"))
        client = PalaemonClient("fresh", DeterministicRandom(b"fresh"))
        with pytest.raises(AttestationError, match="rejected"):
            client.attest_instance_via_ca(deployment.palaemon,
                                          evil_root.root_public_key,
                                          now=deployment.simulator.now)

    def test_explicit_attestation_accepts_trusted_mre(self, deployment):
        client = PalaemonClient("explicit", DeterministicRandom(b"e"))
        report = client.attest_instance_explicitly(
            deployment.palaemon, deployment.ias,
            trusted_mrenclaves=frozenset({deployment.palaemon.mrenclave}))
        assert report.mrenclave == deployment.palaemon.mrenclave
        assert deployment.palaemon.name in client.attested_instances

    def test_explicit_attestation_rejects_unknown_mre(self, deployment):
        """Clients that only trust older PALAEMON versions reject this one."""
        client = PalaemonClient("cautious", DeterministicRandom(b"c"))
        older_version = build_palaemon_image(version="0.9").mrenclave()
        with pytest.raises(AttestationError, match="not a PALAEMON version"):
            client.attest_instance_explicitly(
                deployment.palaemon, deployment.ias,
                trusted_mrenclaves=frozenset({older_version}))


class TestApplicationUpdate:
    def test_board_approved_update_admits_new_version(self, deployment):
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        new_image = build_image("ml-engine", seed=b"v2", version="2.0")
        # Old version attests fine; new version is refused pre-update.
        deployment.palaemon.attest_application(
            deployment.evidence_for("ml_policy"))
        from repro.errors import MrenclaveNotPermittedError

        with pytest.raises(MrenclaveNotPermittedError):
            deployment.palaemon.attest_application(
                deployment.evidence_for("ml_policy", image=new_image))
        # Update the policy (board approves by default in this deployment).
        policy = deployment.client.read_policy(deployment.palaemon,
                                               "ml_policy")
        prepare_application_update(policy, "ml_app", new_image.mrenclave())
        deployment.client.update_policy(deployment.palaemon, policy)
        deployment.palaemon.attest_application(
            deployment.evidence_for("ml_policy", image=new_image))

    def test_retiring_old_version(self, deployment):
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        new_image = build_image("ml-engine", seed=b"v2", version="2.0")
        policy = deployment.client.read_policy(deployment.palaemon,
                                               "ml_policy")
        prepare_application_update(policy, "ml_app", new_image.mrenclave(),
                                   keep_old=False)
        deployment.client.update_policy(deployment.palaemon, policy)
        from repro.errors import MrenclaveNotPermittedError

        with pytest.raises(MrenclaveNotPermittedError):
            deployment.palaemon.attest_application(
                deployment.evidence_for("ml_policy"))  # old image now refused

    def test_rejected_update_keeps_old_policy(self):
        """A malicious update dies at the board; old version keeps working."""
        deployment = Deployment(seed=b"malicious-update")
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        # Board now refuses updates (insider pushing malware gets blocked).
        for service in deployment.approval_services.values():
            service.decision_rule = (
                lambda request: request.operation != "update")
        malicious = build_image("ml-engine", seed=b"backdoored")
        policy = deployment.make_policy()
        prepare_application_update(policy, "ml_app", malicious.mrenclave())
        from repro.errors import ApprovalDeniedError, MrenclaveNotPermittedError

        with pytest.raises(ApprovalDeniedError):
            deployment.client.update_policy(deployment.palaemon, policy)
        with pytest.raises(MrenclaveNotPermittedError):
            deployment.palaemon.attest_application(
                deployment.evidence_for("ml_policy", image=malicious))
        deployment.palaemon.attest_application(
            deployment.evidence_for("ml_policy"))  # old version unaffected

    def test_duplicate_mre_update_rejected(self, deployment):
        policy = deployment.make_policy()
        with pytest.raises(UpdateError, match="already permitted"):
            prepare_application_update(policy, "ml_app",
                                       deployment.app_image.mrenclave())


class TestImagePolicyIntersection:
    def release(self, version, seed):
        image = build_image("python-curated", seed=seed, version=version)
        return ImageRelease(mrenclave=image.mrenclave(),
                            fs_tag=sha256(b"tag" + seed), version=version)

    def test_intersection(self):
        r1, r2, r3 = (self.release("1.0", b"1"), self.release("1.1", b"2"),
                      self.release("1.2", b"3"))
        export = ImagePolicyExport("python-curated", [r1, r2, r3])
        app_allowed = {(r1.mrenclave, r1.fs_tag), (r2.mrenclave, r2.fs_tag)}
        permitted = intersect_permitted(export, app_allowed)
        assert len(permitted) == 2
        assert (r3.mrenclave, r3.fs_tag) not in permitted

    def test_upstream_revocation_propagates(self):
        """§III-E: when the image provider revokes a release, applications
        that imported it lose it automatically."""
        r1, r2 = self.release("1.0", b"1"), self.release("1.1", b"2")
        export = ImagePolicyExport("python-curated", [r1, r2])
        app_allowed = {(r1.mrenclave, r1.fs_tag), (r2.mrenclave, r2.fs_tag)}
        assert len(intersect_permitted(export, app_allowed)) == 2
        export.revoke("1.0")  # vulnerability found in 1.0
        remaining = intersect_permitted(export, app_allowed)
        assert remaining == [(r2.mrenclave, r2.fs_tag)]

    def test_revoke_unknown_version(self):
        export = ImagePolicyExport("img", [self.release("1.0", b"1")])
        with pytest.raises(UpdateError):
            export.revoke("9.9")

    def test_apply_to_policy_enforced_at_attestation(self, deployment):
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        # The image provider only vouches for a *different* build.
        other = self.release("2.0", b"other")
        export = ImagePolicyExport("ml-engine", [other])
        policy = deployment.client.read_policy(deployment.palaemon,
                                               "ml_policy")
        apply_image_export(policy, export)
        deployment.client.update_policy(deployment.palaemon, policy)
        with pytest.raises(AttestationError, match="combination"):
            deployment.palaemon.attest_application(
                deployment.evidence_for("ml_policy"))


class TestCaUpdate:
    def test_board_approved_ca_update(self, deployment):
        """Deploying a new PALAEMON version: new CA with extended allow-list."""
        new_palaemon_mre = build_palaemon_image(version="2.0").mrenclave()
        coordinator = CAUpdateCoordinator(deployment.board,
                                          deployment.evaluator,
                                          deployment.client.certificate)
        new_ca = coordinator.approve_and_build(
            deployment.ca,
            frozenset({deployment.palaemon.mrenclave, new_palaemon_mre}),
            DeterministicRandom(b"ca-v2"), version="2.0")
        assert new_ca.mrenclave != deployment.ca.mrenclave
        # The old instance can be re-certified by the new CA too.
        deployment.palaemon.obtain_certificate(new_ca)

    def test_board_rejection_blocks_ca_update(self):
        deployment = Deployment(seed=b"ca-block")
        for service in deployment.approval_services.values():
            service.decision_rule = lambda _request: False
        coordinator = CAUpdateCoordinator(deployment.board,
                                          deployment.evaluator,
                                          deployment.client.certificate)
        from repro.errors import ApprovalDeniedError

        with pytest.raises(ApprovalDeniedError):
            coordinator.approve_and_build(
                deployment.ca, frozenset({b"\x01" * 32}),
                DeterministicRandom(b"x"), version="2.0")

    def test_old_ca_certificates_do_not_chain_to_new_root(self, deployment):
        coordinator = CAUpdateCoordinator(deployment.board,
                                          deployment.evaluator,
                                          deployment.client.certificate)
        new_ca = coordinator.approve_and_build(
            deployment.ca, frozenset({deployment.palaemon.mrenclave}),
            DeterministicRandom(b"ca-v2"), version="2.0")
        from repro.errors import CertificateError

        old_cert = deployment.palaemon.certificate
        with pytest.raises(CertificateError):
            old_cert.verify(now=deployment.simulator.now,
                            trusted_root=new_ca.root_public_key)
