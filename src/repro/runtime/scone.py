"""The SCONE runtime entry point: launch, attest, configure, run (§IV-A).

``SconeRuntime.launch`` is the full startup path an application takes in
the paper: enclave creation, fresh key pair, local quote binding the key,
attestation against PALAEMON (the policy name travels in an *unprotected*
environment variable — it is not a secret), configuration delivery, and
shielded-FS mounting with tag verification.
"""

from __future__ import annotations

from typing import Optional

from repro.core.attestation import AttestationEvidence
from repro.core.service import PalaemonService
from repro.crypto.primitives import DeterministicRandom, sha256
from repro.crypto.signatures import KeyPair
from repro.errors import QuoteError
from repro.fs.blockstore import BlockStore
from repro.runtime.application import RunningApplication
from repro.tee.enclave import ExecutionMode
from repro.tee.image import EnclaveImage
from repro.tee.platform import SGXPlatform


class SconeRuntime:
    """Launches applications under a PALAEMON policy."""

    def __init__(self, platform: SGXPlatform, palaemon: PalaemonService,
                 rng: DeterministicRandom) -> None:
        self.platform = platform
        self.palaemon = palaemon
        self._rng = rng
        self.launches = 0

    def launch(self, image: EnclaveImage, policy_name: str,
               service_name: str, volume: Optional[BlockStore] = None,
               mode: ExecutionMode = ExecutionMode.HARDWARE,
               ) -> RunningApplication:
        """Attest ``image`` under the named policy and hand back the app.

        Every failure mode of §IV-A surfaces as a typed exception before
        any secret leaves PALAEMON: wrong MRE, wrong platform, missing
        policy, bad TLS key binding, strict-mode violation, stale volume.
        """
        self.launches += 1
        enclave = self.platform.launch_instant(image, mode=mode)
        # Fresh per-instance key pair; its hash goes into the report data.
        tls_keys = KeyPair.generate(
            self._rng.fork(b"launch:" + str(self.launches).encode()),
            bits=512)
        if mode is not ExecutionMode.HARDWARE:
            raise QuoteError(
                "only hardware mode can be attested; EMU/native runs have "
                "no hardware root of trust")
        quote = self.platform.quoting_enclave.quote(
            enclave, sha256(tls_keys.public.to_bytes()))
        evidence = AttestationEvidence(
            quote=quote, policy_name=policy_name, service_name=service_name,
            tls_public_key=tls_keys.public)
        config = self.palaemon.attest_application(evidence)
        volume = volume if volume is not None else BlockStore(
            f"{policy_name}-{service_name}-volume")
        return RunningApplication(
            enclave=enclave, config=config, volume=volume,
            palaemon=self.palaemon, policy_name=policy_name,
            service_name=service_name,
            rng=self._rng.fork(b"app:" + str(self.launches).encode()))
