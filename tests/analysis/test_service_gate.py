"""The pre-board lint gate: create/update_policy(..., analyze=True)."""

import pytest

from repro.errors import PolicyNotFoundError, PolicyValidationError

from tests.core.conftest import Deployment


def argv_leak_policy(deployment, name="leaky"):
    """A policy whose command line carries a secret (PAL020 CRITICAL)."""
    policy = deployment.make_policy(name=name)
    policy.services[0].command.append("--api-key=$$PALAEMON$API_KEY$$")
    return policy


def used_secret_policy(deployment, name="clean"):
    """A policy the analyzer raises no CRITICAL finding on."""
    return deployment.make_policy(
        name=name,
        injection_files={"/etc/app.conf": b"key=$$PALAEMON$API_KEY$$"})


@pytest.fixture()
def deployment():
    return Deployment()


class TestCreateGate:
    def test_clean_policy_accepted(self, deployment):
        policy = used_secret_policy(deployment)
        deployment.palaemon.create_policy(
            policy, deployment.client.certificate, analyze=True)
        fetched = deployment.client.read_policy(deployment.palaemon,
                                                policy.name)
        assert fetched.name == policy.name

    def test_critical_finding_rejects_before_storage(self, deployment):
        policy = argv_leak_policy(deployment)
        with pytest.raises(PolicyValidationError) as excinfo:
            deployment.palaemon.create_policy(
                policy, deployment.client.certificate, analyze=True)
        assert "PAL020" in str(excinfo.value)
        with pytest.raises(PolicyNotFoundError):
            deployment.client.read_policy(deployment.palaemon, policy.name)

    def test_rejection_happens_before_board_round(self, deployment):
        """No approval service hears about a policy the analyzer killed."""
        policy = argv_leak_policy(deployment)
        with pytest.raises(PolicyValidationError):
            deployment.palaemon.create_policy(
                policy, deployment.client.certificate, analyze=True)
        for approval in deployment.approval_services.values():
            assert all(request.policy_name != policy.name
                       for request in getattr(approval, "seen", []))

    def test_gate_is_opt_in(self, deployment):
        """Without analyze=True the historical behaviour is unchanged."""
        policy = argv_leak_policy(deployment)
        deployment.palaemon.create_policy(policy,
                                          deployment.client.certificate)
        fetched = deployment.client.read_policy(deployment.palaemon,
                                                policy.name)
        assert fetched.name == policy.name

    def test_weak_quorum_board_rejected(self):
        deployment = Deployment(board_members=4, board_threshold=1)
        policy = used_secret_policy(deployment)
        with pytest.raises(PolicyValidationError) as excinfo:
            deployment.palaemon.create_policy(
                policy, deployment.client.certificate, analyze=True)
        assert "PAL001" in str(excinfo.value)


class TestUpdateGate:
    def test_update_rejects_critical_finding(self, deployment):
        policy = used_secret_policy(deployment)
        deployment.palaemon.create_policy(
            policy, deployment.client.certificate, analyze=True)
        tainted = used_secret_policy(deployment)
        tainted.services[0].command.append(
            "--api-key=$$PALAEMON$API_KEY$$")
        with pytest.raises(PolicyValidationError):
            deployment.palaemon.update_policy(
                tainted, deployment.client.certificate, analyze=True)
        fetched = deployment.client.read_policy(deployment.palaemon,
                                                policy.name)
        assert "--api-key=$$PALAEMON$API_KEY$$" not in \
            fetched.services[0].command


class TestGateTelemetry:
    def test_findings_counted_by_code_and_severity(self, deployment):
        policy = argv_leak_policy(deployment)
        with pytest.raises(PolicyValidationError):
            deployment.palaemon.create_policy(
                policy, deployment.client.certificate, analyze=True)
        counter = deployment.palaemon.telemetry.metrics.counter(
            "palaemon_lint_findings_total",
            code="PAL020", severity="critical")
        assert counter.value >= 1

    def test_analysis_is_audited(self, deployment):
        policy = used_secret_policy(deployment)
        deployment.palaemon.create_policy(
            policy, deployment.client.certificate, analyze=True)
        records = [record for record
                   in deployment.palaemon.telemetry.audit_log.records
                   if record.kind == "policy.analyze"]
        assert len(records) == 1
        assert records[0].details["policy"] == policy.name
        assert records[0].details["critical"] == 0

    def test_rejection_is_audited_too(self, deployment):
        policy = argv_leak_policy(deployment)
        with pytest.raises(PolicyValidationError):
            deployment.palaemon.create_policy(
                policy, deployment.client.certificate, analyze=True)
        records = [record for record
                   in deployment.palaemon.telemetry.audit_log.records
                   if record.kind == "policy.analyze"]
        assert len(records) == 1
        assert records[0].details["critical"] >= 1

    def test_analysis_emits_a_span(self, deployment):
        policy = used_secret_policy(deployment)
        deployment.palaemon.create_policy(
            policy, deployment.client.certificate, analyze=True)
        names = [span.name
                 for span in deployment.palaemon.telemetry.spans()]
        assert "policy.analyze" in names
