"""Digital signatures: textbook RSA full-domain-hash over SHA-256.

Pure-Python RSA gives the reproduction *real* public-key verification — a
verifier holding only the public key can check a signature, and nothing in
the simulation can forge one without the private exponent. Keys default to
768 bits: far too small for production (the paper's PALAEMON uses Ed25519)
but computationally honest and fast enough to generate thousands of keys in
a test run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.primitives import DeterministicRandom, sha256
from repro.errors import SignatureError

DEFAULT_KEY_BITS = 768

# Deterministic Miller-Rabin witness sets are proven exhaustive below
# 3_317_044_064_679_887_385_961_981; for larger candidates we add rounds with
# witnesses drawn from the key-generation DRBG.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)


def _is_probable_prime(candidate: int, rng: DeterministicRandom,
                       rounds: int = 24) -> bool:
    """Miller-Rabin primality test with DRBG-chosen witnesses."""
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate % prime == 0:
            return candidate == prime
    # Write candidate - 1 as d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        witness = rng.randint(2, candidate - 2)
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, rng: DeterministicRandom) -> int:
    """Generate a random prime of exactly ``bits`` bits."""
    while True:
        candidate = int.from_bytes(rng.bytes((bits + 7) // 8), "big")
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        candidate &= (1 << bits) - 1
        if _is_probable_prime(candidate, rng):
            return candidate


def _modular_inverse(a: int, modulus: int) -> int:
    """Return a^-1 mod modulus via the extended Euclidean algorithm."""
    old_r, r = a, modulus
    old_s, s = 1, 0
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
    if old_r != 1:
        raise ValueError("inverse does not exist")
    return old_s % modulus


def _full_domain_hash(message: bytes, modulus: int) -> int:
    """Hash ``message`` into Z_n by concatenating counter-indexed digests."""
    nbytes = (modulus.bit_length() + 7) // 8
    material = bytearray()
    counter = 0
    while len(material) < nbytes:
        material.extend(sha256(b"rsa-fdh", counter.to_bytes(4, "big"), message))
        counter += 1
    return int.from_bytes(bytes(material[:nbytes]), "big") % modulus


@dataclass(frozen=True)
class PublicKey:
    """An RSA public key ``(n, e)``; hashable so it can identify principals."""

    modulus: int
    exponent: int

    def fingerprint(self) -> bytes:
        """A short stable identifier for this key."""
        return sha256(self.to_bytes())[:16]

    def to_bytes(self) -> bytes:
        n_bytes = self.modulus.to_bytes((self.modulus.bit_length() + 7) // 8,
                                        "big")
        e_bytes = self.exponent.to_bytes(4, "big")
        return len(n_bytes).to_bytes(2, "big") + n_bytes + e_bytes

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        n_len = int.from_bytes(data[:2], "big")
        modulus = int.from_bytes(data[2:2 + n_len], "big")
        exponent = int.from_bytes(data[2 + n_len:2 + n_len + 4], "big")
        return cls(modulus=modulus, exponent=exponent)

    def verify(self, message: bytes, signature: bytes) -> None:
        """Raise :class:`SignatureError` unless ``signature`` is valid."""
        if not verify_signature(self, message, signature):
            raise SignatureError("signature verification failed")


@dataclass(frozen=True)
class SigningKey:
    """The private half of a key pair."""

    modulus: int
    private_exponent: int

    def sign(self, message: bytes) -> bytes:
        """Produce an RSA-FDH signature over ``message``."""
        digest = _full_domain_hash(message, self.modulus)
        signature = pow(digest, self.private_exponent, self.modulus)
        nbytes = (self.modulus.bit_length() + 7) // 8
        return signature.to_bytes(nbytes, "big")


@dataclass(frozen=True)
class KeyPair:
    """A signing key pair; generate with :meth:`generate`."""

    public: PublicKey
    private: SigningKey

    @classmethod
    def generate(cls, rng: DeterministicRandom,
                 bits: int = DEFAULT_KEY_BITS) -> "KeyPair":
        """Generate a fresh RSA key pair from the given DRBG."""
        if bits < 128:
            raise ValueError("key size too small even for simulation")
        exponent = 65537
        while True:
            p = _generate_prime(bits // 2, rng)
            q = _generate_prime(bits - bits // 2, rng)
            if p == q:
                continue
            totient = (p - 1) * (q - 1)
            if totient % exponent == 0:
                continue
            modulus = p * q
            private_exponent = _modular_inverse(exponent, totient)
            public = PublicKey(modulus=modulus, exponent=exponent)
            private = SigningKey(modulus=modulus,
                                 private_exponent=private_exponent)
            return cls(public=public, private=private)

    def sign(self, message: bytes) -> bytes:
        return self.private.sign(message)


def verify_signature(public_key: PublicKey, message: bytes,
                     signature: bytes) -> bool:
    """Return True iff ``signature`` is a valid signature on ``message``."""
    expected_len = (public_key.modulus.bit_length() + 7) // 8
    if len(signature) != expected_len:
        return False
    sig_int = int.from_bytes(signature, "big")
    if sig_int >= public_key.modulus:
        return False
    digest = _full_domain_hash(message, public_key.modulus)
    return pow(sig_int, public_key.exponent, public_key.modulus) == digest
