"""Tests for enclaves, quoting, sealing, counters, and IAS."""

import pytest

from repro import calibration
from repro.crypto.primitives import DeterministicRandom
from repro.errors import (
    CounterError,
    CounterWearError,
    EnclaveError,
    QuoteError,
    SealingError,
)
from repro.sim.core import Simulator
from repro.sim.network import Site
from repro.tee.enclave import ExecutionMode
from repro.tee.ias import AttestationVerdict, IntelAttestationService
from repro.tee.image import build_image
from repro.tee.platform import SGXPlatform


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def platform(sim):
    return SGXPlatform(sim, "node-1", DeterministicRandom(b"platform-1"))


@pytest.fixture()
def image():
    return build_image("test-app")


class TestEnclaveLifecycle:
    def test_launch_hardware(self, sim, platform, image):
        def main():
            enclave = yield sim.process(platform.launch(image))
            return enclave

        enclave = sim.run_process(main())
        assert enclave.mrenclave == image.mrenclave()
        assert enclave.mode is ExecutionMode.HARDWARE

    def test_launch_native_skips_epc(self, sim, platform, image):
        def main():
            enclave = yield sim.process(
                platform.launch(image, mode=ExecutionMode.NATIVE))
            return enclave

        sim.run_process(main())
        assert platform.epc.allocated_bytes == 0

    def test_destroy_frees_epc(self, platform, image):
        enclave = platform.launch_instant(image)
        assert platform.epc.allocated_bytes == image.total_bytes
        enclave.destroy()
        assert platform.epc.allocated_bytes == 0
        enclave.destroy()  # idempotent

    def test_destroyed_enclave_rejects_work(self, sim, platform, image):
        enclave = platform.launch_instant(image)
        enclave.destroy()

        def main():
            yield sim.process(enclave.compute(0.001))

        with pytest.raises(EnclaveError):
            sim.run_process(main())

    def test_ocall_costs_by_mode(self, sim, platform, image):
        """HW ocalls cost more than EMU, which cost more than native."""
        costs = {}
        for mode in ExecutionMode:
            local_sim = Simulator()
            local_platform = SGXPlatform(local_sim, "n",
                                         DeterministicRandom(b"p"))
            enclave = local_platform.launch_instant(image, mode=mode)

            def main(enclave=enclave, local_sim=local_sim):
                yield local_sim.process(enclave.ocall(syscall_seconds=1e-6))
                return local_sim.now

            costs[mode] = local_sim.run_process(main())
        assert costs[ExecutionMode.NATIVE] < costs[ExecutionMode.EMULATED]
        assert costs[ExecutionMode.EMULATED] < costs[ExecutionMode.HARDWARE]

    def test_microcode_update_raises_exit_cost(self, sim, platform, image):
        platform.set_microcode(calibration.MICROCODE_PRE_SPECTRE)
        enclave = platform.launch_instant(image)
        pre = enclave.transition_cost()
        platform.set_microcode(calibration.MICROCODE_POST_FORESHADOW)
        post = enclave.transition_cost()
        assert post > pre
        assert calibration.MICROCODE_POST_FORESHADOW.flushes_l1_on_exit
        assert not calibration.MICROCODE_PRE_SPECTRE.flushes_l1_on_exit

    def test_compute_pays_paging_when_over_epc(self, sim, platform):
        huge = build_image("huge", heap_bytes=512 * calibration.MB)
        enclave = platform.launch_instant(huge)

        def main():
            start = sim.now
            yield sim.process(enclave.compute(0.001,
                                              touched_bytes=calibration.MB))
            return sim.now - start

        elapsed = sim.run_process(main())
        assert elapsed > 0.001  # paging penalty on top of CPU time


class TestQuoting:
    def test_quote_verifies(self, platform, image):
        enclave = platform.launch_instant(image)
        quote = platform.quoting_enclave.quote(enclave, b"report-data")
        quote.verify()
        assert quote.report.mrenclave == image.mrenclave()

    def test_tampered_quote_rejected(self, platform, image):
        enclave = platform.launch_instant(image)
        quote = platform.quoting_enclave.quote(enclave, b"data")
        from dataclasses import replace
        from repro.tee.quoting import Report
        forged_report = Report(mrenclave=b"\x00" * 32,
                               platform_id=quote.report.platform_id,
                               report_data=quote.report.report_data)
        forged = replace(quote, report=forged_report)
        with pytest.raises(QuoteError):
            forged.verify()

    def test_emulated_enclave_cannot_be_quoted(self, platform, image):
        enclave = platform.launch_instant(image, mode=ExecutionMode.EMULATED)
        with pytest.raises(QuoteError, match="hardware root of trust"):
            platform.quoting_enclave.quote(enclave, b"data")

    def test_destroyed_enclave_cannot_be_quoted(self, platform, image):
        enclave = platform.launch_instant(image)
        enclave.destroy()
        with pytest.raises(QuoteError):
            platform.quoting_enclave.quote(enclave, b"data")

    def test_long_report_data_hashed(self, platform, image):
        enclave = platform.launch_instant(image)
        quote = platform.quoting_enclave.quote(enclave, b"x" * 1000)
        assert len(quote.report.report_data) == 32


class TestSealing:
    def test_seal_unseal_round_trip(self, platform, image):
        enclave = platform.launch_instant(image)
        blob = platform.sealing.seal(enclave, "identity", b"key material")
        assert platform.sealing.unseal(enclave, blob) == b"key material"

    def test_same_mre_new_instance_can_unseal(self, platform, image):
        first = platform.launch_instant(image)
        blob = platform.sealing.seal(first, "identity", b"persistent")
        first.destroy()
        restarted = platform.launch_instant(image)
        assert platform.sealing.unseal(restarted, blob) == b"persistent"

    def test_different_mre_cannot_unseal(self, platform, image):
        enclave = platform.launch_instant(image)
        blob = platform.sealing.seal(enclave, "identity", b"secret")
        other = platform.launch_instant(build_image("other-app"))
        with pytest.raises(SealingError):
            platform.sealing.unseal(other, blob)

    def test_different_platform_cannot_unseal(self, sim, platform, image):
        enclave = platform.launch_instant(image)
        blob = platform.sealing.seal(enclave, "identity", b"secret")
        other_platform = SGXPlatform(sim, "node-2",
                                     DeterministicRandom(b"platform-2"))
        foreign = other_platform.launch_instant(image)
        with pytest.raises(SealingError):
            other_platform.sealing.unseal(foreign, blob)

    def test_sealed_blob_hides_data(self, platform, image):
        enclave = platform.launch_instant(image)
        blob = platform.sealing.seal(enclave, "identity", b"visible-secret")
        assert b"visible-secret" not in blob.ciphertext


class TestPlatformCounters:
    def test_create_read_increment(self, sim, platform):
        platform.counters.create("c1")
        assert platform.counters.read("c1") == 0

        def main():
            value = yield sim.process(platform.counters.increment("c1"))
            return value

        assert sim.run_process(main()) == 1

    def test_rate_limit_enforced(self, sim, platform):
        platform.counters.create("c1")

        def main():
            for _ in range(5):
                yield sim.process(platform.counters.increment("c1"))
            return sim.now

        elapsed = sim.run_process(main())
        # 5 increments at >= 50 ms each.
        assert elapsed >= 5 * calibration.SGX_COUNTER_INCREMENT_INTERVAL_SECONDS

    def test_measured_rate_matches_paper(self, sim, platform):
        """End-to-end increment rate lands in the paper's 13-20/s band."""
        platform.counters.create("c1")

        def main():
            for _ in range(20):
                yield sim.process(platform.counters.increment("c1"))
            return sim.now

        elapsed = sim.run_process(main())
        rate = 20 / elapsed
        assert 10 <= rate <= 20

    def test_wear_out(self, sim):
        platform = SGXPlatform(sim, "wear", DeterministicRandom(b"w"))
        platform.counters.wear_limit = 3
        platform.counters.create("c1")

        def main():
            for _ in range(4):
                yield sim.process(platform.counters.increment("c1"))

        with pytest.raises(CounterWearError):
            sim.run_process(main())

    def test_unknown_counter_rejected(self, sim, platform):
        with pytest.raises(CounterError):
            platform.counters.read("nope")
        with pytest.raises(CounterError):
            platform.counters.writes("nope")

    def test_duplicate_create_rejected(self, platform):
        platform.counters.create("c1")
        with pytest.raises(CounterError):
            platform.counters.create("c1")


class TestIAS:
    def make_ias(self, sim):
        return IntelAttestationService(sim, Site.IAS_US,
                                       DeterministicRandom(b"ias"))

    def test_genuine_platform_ok(self, sim, platform, image):
        ias = self.make_ias(sim)
        ias.register_platform(platform.quoting_enclave.attestation_public_key,
                              platform.microcode.revision)
        enclave = platform.launch_instant(image)
        quote = platform.quoting_enclave.quote(enclave, b"data")
        report = ias.verify_quote_local(quote)
        assert report.verdict is AttestationVerdict.OK
        report.verify(ias.public_key)

    def test_unknown_platform_rejected(self, sim, platform, image):
        ias = self.make_ias(sim)
        enclave = platform.launch_instant(image)
        quote = platform.quoting_enclave.quote(enclave, b"data")
        report = ias.verify_quote_local(quote)
        assert report.verdict is AttestationVerdict.SIGNATURE_INVALID

    def test_revoked_platform_rejected(self, sim, platform, image):
        ias = self.make_ias(sim)
        key = platform.quoting_enclave.attestation_public_key
        ias.register_platform(key, platform.microcode.revision)
        ias.revoke_platform(key)
        enclave = platform.launch_instant(image)
        quote = platform.quoting_enclave.quote(enclave, b"data")
        report = ias.verify_quote_local(quote)
        assert report.verdict is AttestationVerdict.KEY_REVOKED
        with pytest.raises(QuoteError, match="KEY_REVOKED"):
            report.verify(ias.public_key)

    def test_outdated_microcode_rejected(self, sim, image):
        ias = self.make_ias(sim)
        platform = SGXPlatform(sim, "old", DeterministicRandom(b"old"),
                               microcode=calibration.MICROCODE_PRE_SPECTRE)
        key = platform.quoting_enclave.attestation_public_key
        ias.register_platform(key, platform.microcode.revision)
        ias.minimum_microcode = calibration.MICROCODE_POST_FORESHADOW.revision
        enclave = platform.launch_instant(image)
        quote = platform.quoting_enclave.quote(enclave, b"data")
        report = ias.verify_quote_local(quote)
        assert report.verdict is AttestationVerdict.GROUP_OUT_OF_DATE

    def test_remote_verification_latency(self, sim, platform, image):
        ias = self.make_ias(sim)
        ias.register_platform(platform.quoting_enclave.attestation_public_key,
                              platform.microcode.revision)
        enclave = platform.launch_instant(image)
        quote = platform.quoting_enclave.quote(enclave, b"data")

        def main():
            report = yield sim.process(
                ias.verify_quote(quote, client_site=Site.SAME_RACK))
            return report, sim.now

        report, elapsed = sim.run_process(main())
        assert report.verdict is AttestationVerdict.OK
        # Must include the server-side verification wait.
        assert elapsed >= ias.verification_seconds

    def test_tampered_ias_report_rejected(self, sim, platform, image):
        ias = self.make_ias(sim)
        ias.register_platform(platform.quoting_enclave.attestation_public_key,
                              platform.microcode.revision)
        enclave = platform.launch_instant(image)
        quote = platform.quoting_enclave.quote(enclave, b"data")
        report = ias.verify_quote_local(quote)
        from dataclasses import replace
        forged = replace(report, mrenclave=b"\x11" * 32)
        with pytest.raises(QuoteError, match="signature invalid"):
            forged.verify(ias.public_key)
