"""Fixture policy sets with seeded defects for the analyzer tests.

Each builder seeds exactly one defect, constructed so that exactly one
rule code fires on it — the tests assert both the detection and the
absence of collateral findings.
"""

from repro.core.policy import (
    BoardSpec,
    ImportSpec,
    PolicyBoardMember,
    SecurityPolicy,
    ServiceSpec,
)
from repro.core.secrets import SecretKind, SecretSpec
from repro.crypto.certificates import self_signed_certificate
from repro.crypto.primitives import DeterministicRandom
from repro.crypto.signatures import KeyPair

MRE = b"\x01" * 32


def board(member_count=3, threshold=2, veto_members=("member-0",),
          seed=b"fixture-board"):
    """A board with real certificates; member-0 holds veto by default."""
    rng = DeterministicRandom(seed)
    members = []
    for index in range(member_count):
        name = f"member-{index}"
        keys = KeyPair.generate(rng.fork(name.encode()), bits=512)
        members.append(PolicyBoardMember(
            name=name,
            certificate=self_signed_certificate(name, keys),
            approval_endpoint=f"approval-{name}",
            veto=name in veto_members))
    return BoardSpec(members=tuple(members), threshold=threshold)


def service(name="app", command=("python", "/app.py"),
            environment=None, injection_files=None):
    return ServiceSpec(
        name=name, image_name=f"{name}-image",
        command=list(command),
        environment=dict(environment or {}),
        mrenclaves=[MRE],
        injection_files=dict(injection_files or {}))


def clean_policy(name="clean"):
    """A policy no rule fires on: majority+veto board, used secret."""
    return SecurityPolicy(
        name=name,
        services=[service(injection_files={
            "/etc/app.conf": b"key=$$PALAEMON$API_KEY$$"})],
        secrets=[SecretSpec(name="API_KEY", kind=SecretKind.RANDOM)],
        board=board())


def weak_quorum_set():
    """threshold=1 with 4 members -> PAL001 (CRITICAL) and nothing else."""
    policy = SecurityPolicy(
        name="weak_quorum",
        services=[service(injection_files={
            "/etc/app.conf": b"key=$$PALAEMON$API_KEY$$"})],
        secrets=[SecretSpec(name="API_KEY", kind=SecretKind.RANDOM)],
        board=board(member_count=4, threshold=1))
    return {policy.name: policy}


def cycle_set():
    """producer <-> consumer import cycle -> PAL011 and nothing else."""
    producer = SecurityPolicy(
        name="cycle_producer",
        secrets=[SecretSpec(name="MODEL_KEY", kind=SecretKind.RANDOM,
                            export_to=("cycle_consumer",))],
        imports=[ImportSpec(from_policy="cycle_consumer",
                            secret_name="RESULT_KEY")])
    consumer = SecurityPolicy(
        name="cycle_consumer",
        secrets=[SecretSpec(name="RESULT_KEY", kind=SecretKind.RANDOM,
                            export_to=("cycle_producer",))],
        imports=[ImportSpec(from_policy="cycle_producer",
                            secret_name="MODEL_KEY")])
    return {producer.name: producer, consumer.name: consumer}


def dangling_import_set():
    """Import from a policy outside the set -> PAL010 and nothing else."""
    orphan = SecurityPolicy(
        name="orphan",
        imports=[ImportSpec(from_policy="never_created",
                            secret_name="DB_PASSWORD")])
    return {orphan.name: orphan}


def argv_secret_set():
    """A secret substituted into argv -> PAL020 and nothing else."""
    policy = SecurityPolicy(
        name="argv_leak",
        services=[service(
            command=("python", "/app.py",
                     "--api-key=$$PALAEMON$API_KEY$$"))],
        secrets=[SecretSpec(name="API_KEY", kind=SecretKind.RANDOM)])
    return {policy.name: policy}


SEEDED_DEFECTS = {
    "PAL001": weak_quorum_set,
    "PAL010": dangling_import_set,
    "PAL011": cycle_set,
    "PAL020": argv_secret_set,
}
