"""Tests for the EPC and the enclave loader."""

import pytest

from repro import calibration
from repro.errors import EnclaveError
from repro.sim.core import Simulator
from repro.tee.epc import EnclavePageCache
from repro.tee.image import build_image
from repro.tee.loader import EnclaveLoader, MeasurementScope


class TestEpcAccounting:
    def test_allocate_and_free(self):
        sim = Simulator()
        epc = EnclavePageCache(sim, size_bytes=100 * calibration.MB,
                               usable_fraction=1.0)

        def main():
            evicted = yield sim.process(epc.allocate(10 * calibration.MB))
            return evicted

        assert sim.run_process(main()) == 0
        assert epc.allocated_bytes == 10 * calibration.MB
        epc.free(10 * calibration.MB)
        assert epc.allocated_bytes == 0

    def test_eviction_when_over_capacity(self):
        sim = Simulator()
        epc = EnclavePageCache(sim, size_bytes=10 * calibration.MB,
                               usable_fraction=1.0)

        def main():
            yield sim.process(epc.allocate(8 * calibration.MB))
            evicted = yield sim.process(epc.allocate(5 * calibration.MB))
            return evicted

        assert sim.run_process(main()) == 3 * calibration.MB
        assert epc.evicted_bytes == 3 * calibration.MB

    def test_negative_allocation_rejected(self):
        sim = Simulator()
        epc = EnclavePageCache(sim)

        def main():
            yield sim.process(epc.allocate(-1))

        with pytest.raises(EnclaveError):
            sim.run_process(main())

    def test_negative_free_rejected(self):
        with pytest.raises(EnclaveError):
            EnclavePageCache(Simulator()).free(-1)

    def test_overcommitment_fractions(self):
        sim = Simulator()
        epc = EnclavePageCache(sim, size_bytes=100 * calibration.MB,
                               usable_fraction=1.0)
        assert epc.overcommitment(50 * calibration.MB) == 0.0
        assert epc.overcommitment(200 * calibration.MB) == pytest.approx(0.5)
        epc.allocated_bytes = 100 * calibration.MB
        assert epc.overcommitment(10 * calibration.MB) == 1.0

    def test_fault_penalty_zero_when_fits(self):
        sim = Simulator()
        epc = EnclavePageCache(sim, size_bytes=100 * calibration.MB,
                               usable_fraction=1.0)
        assert epc.fault_penalty_seconds(calibration.MB, calibration.MB) == 0.0

    def test_fault_penalty_grows_with_overcommit(self):
        sim = Simulator()
        epc = EnclavePageCache(sim, size_bytes=100 * calibration.MB,
                               usable_fraction=1.0)
        small = epc.fault_penalty_seconds(150 * calibration.MB,
                                          calibration.MB)
        large = epc.fault_penalty_seconds(400 * calibration.MB,
                                          calibration.MB)
        assert 0 < small < large


class TestLoader:
    def make(self, epc_mb=128):
        sim = Simulator()
        epc = EnclavePageCache(sim, size_bytes=epc_mb * calibration.MB,
                               usable_fraction=1.0)
        return sim, EnclaveLoader(sim, epc)

    def test_code_only_measures_less_than_all_pages(self):
        sim, loader = self.make()
        image = build_image("app", heap_bytes=32 * calibration.MB)

        def main():
            report = yield sim.process(
                loader.load(image, scope=MeasurementScope.CODE_ONLY))
            return report

        report = sim.run_process(main())
        naive = EnclaveLoader.estimate(image, MeasurementScope.ALL_PAGES)
        assert report.measurement_seconds < naive.measurement_seconds / 100

    def test_measurement_dominates_naive_large_enclaves(self):
        """Fig 7 right bars: at 128 MB, measuring all pages dominates."""
        image = build_image("app", heap_bytes=128 * calibration.MB)
        naive = EnclaveLoader.estimate(image, MeasurementScope.ALL_PAGES)
        assert naive.measurement_seconds > naive.addition_seconds
        assert naive.measurement_seconds > naive.bookkeeping_seconds
        # ~865 ms at 148 MB/s for 128 MB.
        assert 0.7 < naive.measurement_seconds < 1.0

    def test_bookkeeping_and_addition_dominate_palaemon_loads(self):
        """Fig 7 left bars: with code-only measurement, copying dominates."""
        image = build_image("app", heap_bytes=128 * calibration.MB)
        fast = EnclaveLoader.estimate(image, MeasurementScope.CODE_ONLY)
        assert fast.measurement_seconds < fast.bookkeeping_seconds

    def test_estimate_matches_simulated_components(self):
        sim, loader = self.make()
        image = build_image("app", heap_bytes=8 * calibration.MB)

        def main():
            report = yield sim.process(loader.load(image))
            return report

        simulated = sim.run_process(main())
        estimated = EnclaveLoader.estimate(image, MeasurementScope.CODE_ONLY)
        assert simulated.addition_seconds == estimated.addition_seconds
        assert simulated.measurement_seconds == estimated.measurement_seconds
        assert simulated.bookkeeping_seconds == estimated.bookkeeping_seconds

    def test_driver_lock_serializes_parallel_loads(self):
        """Two concurrent loads cannot overlap their lock-held phase."""
        sim, loader = self.make()
        image = build_image("tiny", code_size=8 * calibration.KB,
                            data_size=0, heap_bytes=0)

        def load_one():
            yield sim.process(loader.load(image))
            return sim.now

        def main():
            results = yield sim.all_of([sim.process(load_one()),
                                        sim.process(load_one())])
            return results

        finish_times = sim.run_process(main())
        # Each load holds the lock for SGX_DRIVER_LOCK_SECONDS_PER_START, so
        # the second finishes at least one lock period after the first.
        spread = abs(finish_times[0] - finish_times[1])
        assert spread >= calibration.SGX_DRIVER_LOCK_SECONDS_PER_START * 0.99

    def test_eviction_cost_charged_when_epc_exceeded(self):
        sim, loader = self.make(epc_mb=16)
        big = build_image("big", heap_bytes=14 * calibration.MB)
        bigger = build_image("bigger", heap_bytes=14 * calibration.MB)

        def main():
            first = yield sim.process(loader.load(big))
            second = yield sim.process(loader.load(bigger))
            return first, second

        first, second = sim.run_process(main())
        assert first.eviction_seconds == 0.0
        assert second.eviction_seconds > 0.0

    def test_unload_frees_pages(self):
        sim, loader = self.make()
        image = build_image("app", heap_bytes=calibration.MB)

        def main():
            yield sim.process(loader.load(image))

        sim.run_process(main())
        before = loader.epc.allocated_bytes
        loader.unload(image)
        assert loader.epc.allocated_bytes == before - image.total_bytes
