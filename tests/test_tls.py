"""Tests for TLS handshake and secure channels."""

import pytest

from repro import calibration
from repro.crypto.certificates import CertificateAuthority
from repro.crypto.primitives import DeterministicRandom
from repro.crypto.signatures import KeyPair
from repro.errors import CertificateError
from repro.sim.core import Simulator
from repro.sim.network import Network, Site
from repro.tls.channel import TLSConnection, TLSServer
from repro.tls.handshake import handshake_latency, perform_handshake


@pytest.fixture()
def rng():
    return DeterministicRandom(b"tls-tests")


class TestHandshakeLatency:
    def test_two_round_trips_plus_crypto(self):
        latency = handshake_latency(Site.SAME_RACK, Site.SAME_DC)
        expected = (2 * calibration.RTT_SAME_DC
                    + calibration.TLS_HANDSHAKE_CRYPTO_SECONDS)
        assert latency == pytest.approx(expected)

    def test_distance_dominates_far_handshakes(self):
        near = handshake_latency(Site.SAME_RACK, Site.SAME_RACK)
        far = handshake_latency(Site.SAME_RACK,
                                Site.INTERCONTINENTAL_11000KM)
        assert far > 10 * near


class TestHandshake:
    def test_session_established_with_time_cost(self, rng):
        sim = Simulator()

        def main():
            session = yield sim.process(perform_handshake(
                sim, rng, Site.SAME_RACK, Site.SAME_DC))
            return session, sim.now

        session, elapsed = sim.run_process(main())
        assert elapsed == pytest.approx(
            handshake_latency(Site.SAME_RACK, Site.SAME_DC))
        assert session.session_id

    def test_certificate_verified_against_root(self, rng):
        sim = Simulator()
        ca = CertificateAuthority.create("palaemon-ca", rng.fork(b"ca"))
        server_keys = KeyPair.generate(rng.fork(b"server"), bits=512)
        cert = ca.issue("palaemon-1", server_keys.public, 0.0, 1e9)

        def main():
            session = yield sim.process(perform_handshake(
                sim, rng, Site.SAME_RACK, Site.SAME_RACK,
                server_certificate=cert, trusted_root=ca.root_public_key))
            return session

        assert sim.run_process(main()).server_certificate is cert

    def test_untrusted_certificate_rejected(self, rng):
        sim = Simulator()
        good_ca = CertificateAuthority.create("palaemon-ca", rng.fork(b"ca"))
        evil_ca = CertificateAuthority.create("evil-ca", rng.fork(b"evil"))
        server_keys = KeyPair.generate(rng.fork(b"server"), bits=512)
        cert = evil_ca.issue("fake-palaemon", server_keys.public, 0.0, 1e9)

        def main():
            yield sim.process(perform_handshake(
                sim, rng, Site.SAME_RACK, Site.SAME_RACK,
                server_certificate=cert,
                trusted_root=good_ca.root_public_key))

        with pytest.raises(CertificateError):
            sim.run_process(main())

    def test_missing_certificate_rejected(self, rng):
        sim = Simulator()
        ca = CertificateAuthority.create("ca", rng.fork(b"ca"))

        def main():
            yield sim.process(perform_handshake(
                sim, rng, Site.SAME_RACK, Site.SAME_RACK,
                trusted_root=ca.root_public_key))

        with pytest.raises(CertificateError, match="no certificate"):
            sim.run_process(main())

    def test_sessions_have_distinct_keys(self, rng):
        """PFS shape: two sessions never share key material."""
        sim = Simulator()

        def main():
            one = yield sim.process(perform_handshake(
                sim, rng, Site.SAME_RACK, Site.SAME_RACK))
            two = yield sim.process(perform_handshake(
                sim, rng, Site.SAME_RACK, Site.SAME_RACK))
            return one, two

        one, two = sim.run_process(main())
        sealed_one = one.client_box.seal(b"same message")
        sealed_two = two.client_box.seal(b"same message")
        assert one.session_id != two.session_id
        assert sealed_one != sealed_two
        from repro.errors import IntegrityError
        with pytest.raises(IntegrityError):
            two.client_box.open(sealed_one)


class TestConnection:
    def make_server(self, sim, net, handler):
        endpoint = net.endpoint("server", Site.SAME_RACK)
        server = TLSServer(net, endpoint, handler)
        server.start()
        return server

    def test_request_reply_round_trip(self, rng):
        sim = Simulator()
        net = Network(sim, rng.fork(b"net"))
        server = self.make_server(
            sim, net, lambda request, _session: {"echo": request})

        def main():
            connection = yield sim.process(TLSConnection.connect(
                net, "client", Site.SAME_DC, server.endpoint, rng))
            server.register_session(connection.session)
            reply = yield sim.process(connection.request({"ping": 1}))
            server.stop()
            return reply

        assert sim.run_process(main()) == {"echo": {"ping": 1}}

    def test_payloads_encrypted_on_wire(self, rng):
        sim = Simulator()
        net = Network(sim, rng.fork(b"net"))
        net.wire_log_enabled = True
        server = self.make_server(
            sim, net, lambda request, _session: "ok")

        def main():
            connection = yield sim.process(TLSConnection.connect(
                net, "client", Site.SAME_DC, server.endpoint, rng))
            server.register_session(connection.session)
            yield sim.process(connection.request(
                {"secret": "plaintext-password"}))
            server.stop()

        sim.run_process(main())
        for _time, _src, _dst, payload in net.wire_log:
            raw = payload["data"] if isinstance(payload, dict) else payload
            assert b"plaintext-password" not in raw

    def test_generator_handler(self, rng):
        sim = Simulator()
        net = Network(sim, rng.fork(b"net"))

        def slow_handler(request, _session):
            yield sim.timeout(0.010)
            return request * 2

        server = self.make_server(sim, net, slow_handler)

        def main():
            connection = yield sim.process(TLSConnection.connect(
                net, "client", Site.SAME_RACK, server.endpoint, rng))
            server.register_session(connection.session)
            start = sim.now
            reply = yield sim.process(connection.request(21))
            server.stop()
            return reply, sim.now - start

        reply, elapsed = sim.run_process(main())
        assert reply == 42
        assert elapsed >= 0.010

    def test_unknown_session_dropped(self, rng):
        sim = Simulator()
        net = Network(sim, rng.fork(b"net"))
        served = []
        server = self.make_server(
            sim, net, lambda request, _s: served.append(request))

        def main():
            connection = yield sim.process(TLSConnection.connect(
                net, "client", Site.SAME_RACK, server.endpoint, rng))
            # Session deliberately NOT registered with the server.
            connection.client_endpoint.send(
                server.endpoint,
                {"session": b"bogus-session-id",
                 "data": connection.client_channel.seal("payload")})
            yield sim.timeout(0.1)
            server.stop()

        sim.run_process(main())
        assert served == []
        assert server.requests_served == 0
