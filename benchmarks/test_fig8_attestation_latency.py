"""Fig 8 — attestation and configuration latencies.

Four phases per attestation (initialization, send quote, wait for
confirmation, receive configuration) across three services: IAS from
Europe, IAS from the US (close to Intel's servers), and a rack-local
PALAEMON. The reproduced shape: PALAEMON completes in ~15 ms, an order of
magnitude faster than either IAS placement, whose wait phase dominates.
"""

from repro import calibration
from repro.benchlib.tables import PaperComparison, format_table, paper_vs_measured
from repro.runtime.startup import AttestationVariant, attestation_phase_latencies
from repro.sim.network import Site

from benchmarks.conftest import run_once


def _measure():
    return {
        "IAS (EU)": attestation_phase_latencies(AttestationVariant.IAS,
                                                ias_site=Site.IAS_EU),
        "IAS (US)": attestation_phase_latencies(AttestationVariant.IAS,
                                                ias_site=Site.IAS_US),
        "Palaemon": attestation_phase_latencies(AttestationVariant.PALAEMON),
    }


def test_fig8_attestation_latency(benchmark):
    phases = run_once(benchmark, _measure)

    rows = []
    for service, breakdown in phases.items():
        rows.append([service] + [breakdown[key] * 1e3 for key in
                                 ("initialization", "send_quote",
                                  "wait_confirmation", "receive_config")]
                    + [sum(breakdown.values()) * 1e3])
    print()
    print(format_table(
        ["service", "init (ms)", "send quote (ms)", "wait (ms)",
         "recv config (ms)", "total (ms)"],
        rows, title="Fig 8: attestation and configuration latencies"))

    totals = {service: sum(breakdown.values())
              for service, breakdown in phases.items()}
    comparisons = [
        PaperComparison("Palaemon total", 0.015, totals["Palaemon"],
                        unit="s"),
        PaperComparison("IAS (US) total", 0.280, totals["IAS (US)"],
                        unit="s"),
        PaperComparison("IAS (EU) total", 0.295, totals["IAS (EU)"],
                        unit="s"),
    ]
    print(paper_vs_measured(comparisons, title="paper vs measured"))
    for comparison in comparisons:
        assert comparison.within_tolerance, comparison.metric

    # Order-of-magnitude separation, as the paper reports.
    assert totals["IAS (US)"] / totals["Palaemon"] >= 10
    assert totals["IAS (EU)"] > totals["IAS (US)"]

    # Initialization is similar across services (TLS handshake dominated).
    inits = [breakdown["initialization"] for breakdown in phases.values()]
    assert max(inits) == min(inits)

    # The IAS wait phase dominates its total; PALAEMON's does not.
    assert (phases["IAS (US)"]["wait_confirmation"]
            > 0.5 * totals["IAS (US)"])
    assert (phases["Palaemon"]["wait_confirmation"]
            < 0.7 * totals["Palaemon"])
