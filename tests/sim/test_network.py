"""Tests for the simulated network."""

import pytest

from repro import calibration
from repro.errors import NetworkError
from repro.sim.core import Simulator
from repro.sim.network import Network, Site, rtt_between


class TestRtt:
    def test_same_site_is_rack_latency(self):
        assert rtt_between(Site.SAME_DC, Site.SAME_DC) == \
            calibration.RTT_SAME_RACK

    def test_rack_to_site(self):
        assert rtt_between(Site.SAME_RACK, Site.CONTINENTAL_7000KM) == \
            calibration.RTT_7000_KM

    def test_symmetry(self):
        for a in Site:
            for b in Site:
                assert rtt_between(a, b) == rtt_between(b, a)

    def test_distance_ordering(self):
        """Farther sites have strictly larger RTTs from the rack."""
        distances = [Site.SAME_RACK, Site.SAME_DC, Site.REGIONAL_300KM,
                     Site.CONTINENTAL_7000KM, Site.INTERCONTINENTAL_11000KM]
        rtts = [rtt_between(Site.SAME_RACK, site) for site in distances]
        assert rtts == sorted(rtts)
        assert len(set(rtts)) == len(rtts)


class TestDelivery:
    def make_net(self):
        sim = Simulator()
        net = Network(sim, jitter_fraction=0.0)
        return sim, net

    def test_message_arrives_after_one_way_delay(self):
        sim, net = self.make_net()
        a = net.endpoint("a", Site.SAME_RACK)
        b = net.endpoint("b", Site.CONTINENTAL_7000KM)

        def main():
            a.send(b, "hello", size_bytes=0)
            message = yield b.receive()
            return (message.payload, sim.now)

        payload, arrival = sim.run_process(main())
        assert payload == "hello"
        assert arrival == pytest.approx(calibration.RTT_7000_KM / 2)

    def test_serialization_delay_scales_with_size(self):
        sim, net = self.make_net()
        a = net.endpoint("a")
        b = net.endpoint("b")

        def main():
            a.send(b, "big", size_bytes=25_000_000)  # 10ms at 20Gb/s
            yield b.receive()
            return sim.now

        arrival = sim.run_process(main())
        expected = (calibration.RTT_SAME_RACK / 2
                    + 25_000_000 / net.bandwidth_bytes_per_second)
        assert arrival == pytest.approx(expected)

    def test_request_reply(self):
        sim, net = self.make_net()
        client = net.endpoint("client", Site.SAME_DC)
        server = net.endpoint("server", Site.SAME_RACK)

        def server_proc():
            message = yield server.receive()
            server.send(message.reply_to, ("echo", message.payload))

        def client_proc():
            sim.process(server_proc())
            client.send(server, "ping")
            reply = yield client.receive()
            return (reply.payload, sim.now)

        payload, elapsed = sim.run_process(client_proc())
        assert payload == ("echo", "ping")
        assert elapsed >= calibration.RTT_SAME_DC

    def test_duplicate_endpoint_site_conflict(self):
        _, net = self.make_net()
        net.endpoint("x", Site.SAME_DC)
        with pytest.raises(NetworkError):
            net.endpoint("x", Site.SAME_RACK)

    def test_duplicate_endpoint_same_site_returns_existing(self):
        _, net = self.make_net()
        assert net.endpoint("x", Site.SAME_DC) is net.endpoint("x", Site.SAME_DC)

    def test_closed_endpoint_rejects_send(self):
        _, net = self.make_net()
        a = net.endpoint("a")
        b = net.endpoint("b")
        a.close()
        with pytest.raises(NetworkError):
            a.send(b, "payload")

    def test_partition_drops_messages(self):
        sim, net = self.make_net()
        a = net.endpoint("a")
        b = net.endpoint("b")
        net.partition("a", "b")

        def main():
            a.send(b, "lost")
            yield sim.timeout(1.0)
            return len(b.inbox)

        assert sim.run_process(main()) == 0

    def test_heal_restores_delivery(self):
        sim, net = self.make_net()
        a = net.endpoint("a")
        b = net.endpoint("b")
        net.partition("a", "b")
        net.heal("a", "b")

        def main():
            a.send(b, "found")
            message = yield b.receive()
            return message.payload

        assert sim.run_process(main()) == "found"

    def test_wire_log_capture(self):
        sim, net = self.make_net()
        net.wire_log_enabled = True
        a = net.endpoint("a")
        b = net.endpoint("b")

        def main():
            a.send(b, b"ciphertext-bytes")
            yield b.receive()

        sim.run_process(main())
        assert len(net.wire_log) == 1
        assert net.wire_log[0][3] == b"ciphertext-bytes"

    def test_byte_accounting(self):
        sim, net = self.make_net()
        a = net.endpoint("a")
        b = net.endpoint("b")

        def main():
            a.send(b, "x", size_bytes=100)
            yield b.receive()

        sim.run_process(main())
        assert a.bytes_sent == 100
        assert b.bytes_received == 100
        assert net.messages_delivered == 1
