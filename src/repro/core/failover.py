"""Primary/backup fail-over for PALAEMON (the paper's "ongoing work").

The paper's rollback protection (§IV-D) deliberately trades availability
for freshness: a crash leaves the database version behind the monotonic
counter, so the crashed instance can never restart — "for any unscheduled
outage, we expect that we need to perform a fail-over to another PALAEMON
service instance anyhow." This module implements that fail-over path while
preserving the freshness guarantee:

- the primary streams sequenced state updates to a backup instance on a
  different platform (each with its *own* monotonic counter — counters
  never move between machines);
- on primary failure, an operator *promotes* the backup, which replays to
  the last acknowledged sequence number and starts serving under its own
  counter;
- a fenced (crashed or demoted) primary can never serve again: its own
  counter protocol refuses, and peers drop its epoch.

Freshness across fail-over is bounded by the replication acknowledgement:
promotion only exposes state the backup had durably applied, and the
promotion epoch increments so stale primaries are fenced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List

from typing import Optional

from repro.core.dispatch import AUTH_PEER, DEFAULT_REGISTRY, DispatchContext
from repro.core.service import PalaemonService
from repro.crypto.primitives import DeterministicRandom
from repro.errors import PolicyError, RetryExhaustedError, RollbackDetectedError
from repro.sim.core import Event, ProcessInterrupt, Simulator
from repro.sim.network import Network, Site, rtt_between
from repro.sim.retry import RetryPolicy


@dataclass(frozen=True)
class StateUpdate:
    """One sequenced replication record (a tag update, policy write, ...)."""

    sequence: int
    table: str
    key: str
    value: Any


@dataclass
class ReplicaState:
    """The backup's view of the replication stream."""

    applied_sequence: int = 0
    updates: List[StateUpdate] = field(default_factory=list)


class FailoverCoordinator:
    """Manages a primary and one synchronous backup.

    Two replication transports:

    - **legacy** (``network=None``) — replication is modelled as one round
      trip of latency and the backup acknowledges unconditionally.
    - **network** (``network`` given) — updates travel as messages between
      real ``{name}-repl`` endpoints, so a partition or an attached
      :class:`~repro.sim.faults.FaultPlan` genuinely prevents the ack.
      :meth:`replicate` then retries under ``retry_policy`` and, on
      giving up, leaves :meth:`replication_lag` > 0 — which
      :meth:`promote_backup` honours by replaying only the updates the
      backup actually acknowledged (bounded-freshness fail-over).
    """

    def __init__(self, primary: PalaemonService, backup: PalaemonService,
                 primary_site: Site = Site.SAME_DC,
                 backup_site: Site = Site.SAME_DC,
                 network: Optional[Network] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 rng: Optional[DeterministicRandom] = None) -> None:
        if primary.platform is backup.platform:
            raise PolicyError(
                "backup must run on a different platform (its own counter)")
        self.primary = primary
        self.backup = backup
        self.primary_site = primary_site
        self.backup_site = backup_site
        self.epoch = 1
        self._sequence = 0
        self._replica = ReplicaState()
        self.active: PalaemonService = primary
        self.fenced: List[str] = []
        self.network = network
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=4, base_delay=0.05, attempt_timeout=0.5)
        self._rng = rng or DeterministicRandom(b"failover-retry")
        #: Updates the primary committed locally but the backup has not
        #: acknowledged; resent in order on every attempt.
        self._pending: List[StateUpdate] = []
        self._primary_ep = None
        self._backup_ep = None
        if network is not None:
            self._primary_ep = network.endpoint(
                f"{primary.name}-repl", primary_site)
            self._backup_ep = network.endpoint(
                f"{backup.name}-repl", backup_site)
            self.simulator.process(self._backup_serve_loop(),
                                   name=f"repl-serve-{backup.name}")

    @property
    def simulator(self) -> Simulator:
        return self.primary.simulator

    # -- replication -------------------------------------------------------

    def replicate(self, table: str, key: str, value: Any,
                  ) -> Generator[Event, Any, int]:
        """Write through the active instance and synchronously replicate.

        Returns the acknowledged sequence number. Costs one round trip to
        the backup — the price of the availability the paper defers.
        """
        if self.active is not self.primary:
            raise PolicyError("replicate() is only valid before promotion")
        self._sequence += 1
        update = StateUpdate(sequence=self._sequence, table=table, key=key,
                             value=value)
        telemetry = self.primary.telemetry
        with telemetry.span("failover.replicate", table=table, key=key):
            started = self.simulator.now
            self.primary.store.put(table, key, value)
            self.primary.store.commit_instant()
            if self.network is None:
                yield self.simulator.timeout(
                    rtt_between(self.primary_site, self.backup_site))
                self._replica.updates.append(update)
                self._replica.applied_sequence = update.sequence
            else:
                self._pending.append(update)
                try:
                    ack = yield from self._replicate_pending(update.sequence)
                except RetryExhaustedError:
                    # Locally committed but unacknowledged: the lag gauge
                    # goes positive and promote_backup() will not expose
                    # this update.
                    telemetry.gauge("palaemon_failover_replication_lag",
                                    self.replication_lag())
                    raise
                self._pending = [u for u in self._pending
                                 if u.sequence > ack]
            telemetry.observe("palaemon_failover_replication_seconds",
                              self.simulator.now - started)
        telemetry.inc("palaemon_failover_replications_total")
        telemetry.gauge("palaemon_failover_replication_lag",
                        self.replication_lag())
        return update.sequence

    def _replicate_pending(self, target_sequence: int,
                           ) -> Generator[Event, Any, int]:
        """Send all unacked updates; wait for a cumulative ack covering
        ``target_sequence``, retrying under the coordinator's policy."""

        def attempt() -> Generator[Event, Any, int]:
            self._primary_ep.send(
                self._backup_ep,
                {"kind": "repl", "updates": list(self._pending)},
                size_bytes=256 + 128 * len(self._pending),
                reply_to=self._primary_ep)
            while True:
                pending = self._primary_ep.receive()
                try:
                    message = yield pending
                except ProcessInterrupt:
                    self._primary_ep.inbox.cancel(pending)
                    raise
                payload = message.payload
                if not isinstance(payload, dict) or "ack" not in payload:
                    continue
                if payload["ack"] >= target_sequence:
                    return payload["ack"]
                # A stale (lower) cumulative ack: keep waiting.

        ack = yield self.simulator.process(self.retry_policy.call(
            self.simulator, attempt, self._rng,
            operation="failover.replicate",
            telemetry=self.primary.telemetry),
            name="failover-replicate-retry")
        return ack

    def _backup_serve_loop(self) -> Generator[Event, Any, None]:
        """Route replication batches through the backup's dispatch pipeline.

        ``{"kind": "repl"}`` messages become ``failover.replicate``
        requests; the registered handler applies updates in order
        (idempotently — only the next expected sequence number is
        applied, everything else is skipped and re-acknowledged) and the
        cumulative ack travels back. Malformed payloads and refused
        requests produce no ack, so the primary's retry/backoff layer
        treats them exactly like a lost message.
        """
        from repro.sim.resources import StoreClosed

        while True:
            try:
                message = yield self._backup_ep.receive()
            except StoreClosed:
                return
            payload = message.payload
            if not isinstance(payload, dict):
                continue
            kind = payload.get("kind")
            route = ("failover.replicate" if kind == "repl"
                     else f"failover.{kind}")
            route_request = {key: value for key, value in payload.items()
                             if key != "kind"}
            route_request["route"] = route
            outcome = self.backup.dispatcher.handle(
                route_request, transport="failover",
                peer=self.primary.name, target=self)
            if message.reply_to is not None and "ok" in outcome:
                self._backup_ep.send(message.reply_to, outcome["ok"],
                                     size_bytes=64)

    # -- fail-over -----------------------------------------------------------

    def primary_crashed(self) -> None:
        """The primary dies uncleanly: its counter protocol fences it."""
        self.primary.crash()
        self.fenced.append(self.primary.name)
        self.primary.telemetry.inc("palaemon_failover_fences_total")
        self.primary.telemetry.audit("failover.fence",
                                     instance=self.primary.name,
                                     epoch=self.epoch)

    def promote_backup(self) -> Generator[Event, Any, PalaemonService]:
        """Operator-driven promotion: replay, start, bump the epoch."""
        if self.primary.running:
            raise PolicyError("cannot promote while the primary is serving")
        with self.backup.telemetry.span("failover.promote",
                                        backup=self.backup.name):
            for update in self._replica.updates:
                self.backup.store.put(update.table, update.key, update.value)
            self.backup.store.commit_instant()
            if not self.backup.running:
                yield self.simulator.process(self.backup.start())
            self.epoch += 1
            self.active = self.backup
        self.backup.telemetry.inc("palaemon_failover_promotions_total")
        self.backup.telemetry.audit(
            "failover.promote", backup=self.backup.name, epoch=self.epoch,
            replayed=len(self._replica.updates),
            applied_sequence=self._replica.applied_sequence)
        return self.backup

    def verify_primary_fenced(self) -> bool:
        """The old primary can never serve again (crash-as-attack)."""
        if self.primary.name not in self.fenced:
            return False

        def probe() -> Generator[Event, Any, bool]:
            try:
                yield self.simulator.process(self.primary.start(),
                                             name="fenced-restart-probe")
            except RollbackDetectedError:
                return True
            return False

        return self.simulator.run_process(probe(), name="fence-check")

    def replication_lag(self) -> int:
        """Updates the primary has that the backup has not acknowledged."""
        return self._sequence - self._replica.applied_sequence


@DEFAULT_REGISTRY.operation(
    "failover.replicate", fields=("updates",), auth=AUTH_PEER,
    serving_required=False, transports=("failover",),
    summary="apply a replication batch in order; reply a cumulative ack")
def _failover_replicate(ctx: DispatchContext) -> Any:
    replica = ctx.target._replica
    for update in ctx.request["updates"]:
        if update.sequence == replica.applied_sequence + 1:
            replica.updates.append(update)
            replica.applied_sequence = update.sequence
    return {"ack": replica.applied_sequence}
