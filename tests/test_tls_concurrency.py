"""Concurrency tests for the TLS server: many clients, one server."""

import pytest

from repro.crypto.primitives import DeterministicRandom
from repro.sim.core import Simulator
from repro.sim.network import Network, Site
from repro.tls.channel import TLSConnection, TLSServer


def make_stack(handler):
    sim = Simulator()
    rng = DeterministicRandom(b"tls-concurrency")
    net = Network(sim, rng.fork(b"net"))
    endpoint = net.endpoint("server", Site.SAME_RACK)
    server = TLSServer(net, endpoint, handler)
    server.start()
    return sim, rng, net, server


class TestConcurrentClients:
    def test_many_clients_isolated_sessions(self):
        """Twenty clients with distinct sessions each get their own reply,
        decryptable only under their own session keys."""
        sim, rng, net, server = make_stack(
            lambda request, _session: {"echo": request["client"]})
        replies = {}

        def client_proc(index):
            connection = yield sim.process(TLSConnection.connect(
                net, f"client-{index}", Site.SAME_DC, server.endpoint,
                rng.fork(b"client%d" % index)))
            server.register_session(connection.session)
            reply = yield sim.process(connection.request(
                {"client": index}))
            replies[index] = reply

        def main():
            yield sim.all_of([sim.process(client_proc(i))
                              for i in range(20)])

        sim.run_process(main())
        server.stop()
        assert replies == {i: {"echo": i} for i in range(20)}
        assert server.requests_served == 20

    def test_sessions_cryptographically_isolated(self):
        """One client's sealed request cannot be opened by another's keys."""
        from repro.errors import IntegrityError

        sim, rng, net, server = make_stack(lambda request, _s: "ok")

        def main():
            a = yield sim.process(TLSConnection.connect(
                net, "client-a", Site.SAME_RACK, server.endpoint,
                rng.fork(b"a")))
            b = yield sim.process(TLSConnection.connect(
                net, "client-b", Site.SAME_RACK, server.endpoint,
                rng.fork(b"b")))
            return a, b

        a, b = sim.run_process(main())
        server.stop()
        sealed_by_a = a.client_channel.seal({"secret": 1})
        with pytest.raises(IntegrityError):
            b.server_channel.open(sealed_by_a)

    def test_serialized_handler_queues_fairly(self):
        """A slow generator handler serves clients in arrival order."""
        sim, rng, net, _ = make_stack(lambda r, s: None)
        order = []

        def slow_handler(request, _session):
            yield sim.timeout(0.010)
            order.append(request["client"])
            return request["client"]

        endpoint = net.endpoint("slow-server", Site.SAME_RACK)
        server = TLSServer(net, endpoint, slow_handler)
        server.start()

        def client_proc(index):
            connection = yield sim.process(TLSConnection.connect(
                net, f"c{index}", Site.SAME_RACK, endpoint,
                rng.fork(b"cc%d" % index)))
            server.register_session(connection.session)
            yield sim.timeout(index * 0.001)  # staggered arrivals
            reply = yield sim.process(connection.request({"client": index}))
            assert reply == index

        def main():
            yield sim.all_of([sim.process(client_proc(i)) for i in range(5)])

        sim.run_process(main())
        server.stop()
        assert order == [0, 1, 2, 3, 4]

    def test_double_start_is_idempotent(self):
        sim, rng, net, server = make_stack(lambda r, s: "ok")
        server.start()  # second start must not spawn a second accept loop

        def main():
            connection = yield sim.process(TLSConnection.connect(
                net, "client", Site.SAME_RACK, server.endpoint,
                rng.fork(b"c")))
            server.register_session(connection.session)
            reply = yield sim.process(connection.request("ping"))
            return reply

        assert sim.run_process(main()) == "ok"
        server.stop()
        assert server.requests_served == 1
