"""Tests for policy boards: quorum, veto, Byzantine members, forgery."""

import pytest

from repro import calibration
from repro.core.board import (
    AccessRequest,
    ApprovalService,
    BoardEvaluator,
    Verdict,
    approve_everything,
)
from repro.core.policy import BoardSpec, PolicyBoardMember
from repro.crypto.certificates import self_signed_certificate
from repro.crypto.primitives import DeterministicRandom, sha256
from repro.crypto.signatures import KeyPair
from repro.errors import ApprovalDeniedError, SignatureError, VetoError
from repro.sim.core import Simulator
from repro.sim.network import Site


def make_board(simulator, member_specs, threshold):
    """member_specs: list of (name, decision_rule, veto)."""
    rng = DeterministicRandom(b"board-tests")
    services = {}
    members = []
    for name, rule, veto in member_specs:
        keys = KeyPair.generate(rng.fork(name.encode()), bits=512)
        cert = self_signed_certificate(name, keys)
        endpoint = f"ep-{name}"
        services[endpoint] = ApprovalService(simulator, name, keys,
                                             decision_rule=rule)
        members.append(PolicyBoardMember(name=name, certificate=cert,
                                         approval_endpoint=endpoint,
                                         veto=veto))
    board = BoardSpec(members=tuple(members), threshold=threshold)
    return board, BoardEvaluator(simulator, services), services


def request(operation="update"):
    return AccessRequest(policy_name="p", operation=operation,
                         requester_fingerprint=b"\x01" * 16,
                         nonce=b"\x02" * 16)


def reject_everything(_request):
    return False


class TestQuorum:
    def test_unanimous_approval_passes(self):
        sim = Simulator()
        board, evaluator, _ = make_board(
            sim, [("a", approve_everything, False),
                  ("b", approve_everything, False),
                  ("c", approve_everything, False)], threshold=2)
        outcome = evaluator.evaluate_local(board, request())
        BoardEvaluator.enforce(board, request(), outcome)
        assert len(outcome.approvals) == 3

    def test_exactly_threshold_passes(self):
        sim = Simulator()
        board, evaluator, _ = make_board(
            sim, [("a", approve_everything, False),
                  ("b", approve_everything, False),
                  ("c", reject_everything, False)], threshold=2)
        outcome = evaluator.evaluate_local(board, request())
        BoardEvaluator.enforce(board, request(), outcome)

    def test_below_threshold_denied(self):
        sim = Simulator()
        board, evaluator, _ = make_board(
            sim, [("a", approve_everything, False),
                  ("b", reject_everything, False),
                  ("c", reject_everything, False)], threshold=2)
        outcome = evaluator.evaluate_local(board, request())
        with pytest.raises(ApprovalDeniedError, match="1 approvals"):
            BoardEvaluator.enforce(board, request(), outcome)

    def test_single_byzantine_member_cannot_approve_alone(self):
        """The core §III-C property: one compromised member is not enough."""
        sim = Simulator()
        board, evaluator, _ = make_board(
            sim, [("byzantine", approve_everything, False),
                  ("honest-1", reject_everything, False),
                  ("honest-2", reject_everything, False)], threshold=2)
        outcome = evaluator.evaluate_local(board, request())
        with pytest.raises(ApprovalDeniedError):
            BoardEvaluator.enforce(board, request(), outcome)

    def test_offline_members_count_as_no_vote(self):
        sim = Simulator()
        board, evaluator, services = make_board(
            sim, [("a", approve_everything, False),
                  ("b", approve_everything, False),
                  ("c", approve_everything, False)], threshold=3)
        services["ep-c"].online = False
        outcome = evaluator.evaluate_local(board, request())
        assert outcome.unreachable == ["c"]
        with pytest.raises(ApprovalDeniedError):
            BoardEvaluator.enforce(board, request(), outcome)

    def test_missing_approval_service_unreachable(self):
        sim = Simulator()
        board, evaluator, services = make_board(
            sim, [("a", approve_everything, False)], threshold=1)
        evaluator._services = {}
        outcome = evaluator.evaluate_local(board, request())
        assert outcome.unreachable == ["a"]


class TestVeto:
    def test_veto_overrides_quorum(self):
        sim = Simulator()
        board, evaluator, _ = make_board(
            sim, [("data-provider", reject_everything, True),
                  ("dev-1", approve_everything, False),
                  ("dev-2", approve_everything, False)], threshold=2)
        outcome = evaluator.evaluate_local(board, request())
        with pytest.raises(VetoError, match="data-provider"):
            BoardEvaluator.enforce(board, request(), outcome)

    def test_veto_member_approving_is_fine(self):
        sim = Simulator()
        board, evaluator, _ = make_board(
            sim, [("data-provider", approve_everything, True),
                  ("dev-1", approve_everything, False)], threshold=2)
        outcome = evaluator.evaluate_local(board, request())
        BoardEvaluator.enforce(board, request(), outcome)

    def test_non_veto_rejection_does_not_block_quorum(self):
        sim = Simulator()
        board, evaluator, _ = make_board(
            sim, [("grump", reject_everything, False),
                  ("dev-1", approve_everything, False),
                  ("dev-2", approve_everything, False)], threshold=2)
        outcome = evaluator.evaluate_local(board, request())
        BoardEvaluator.enforce(board, request(), outcome)


class TestForgery:
    def test_forged_verdict_does_not_count(self):
        """An attacker cannot inject approvals without member keys."""
        sim = Simulator()
        board, evaluator, services = make_board(
            sim, [("a", reject_everything, False),
                  ("b", reject_everything, False)], threshold=1)

        req = request()
        outcome = evaluator.evaluate_local(board, req)
        # Attacker-crafted verdict claiming member "a" approved:
        forged = Verdict(member_name="a",
                         request_digest=sha256(req.to_bytes()),
                         approve=True, signature=b"\x00" * 64)
        BoardEvaluator._classify(board.member("a"), forged, outcome)
        assert forged not in outcome.approvals
        assert forged in outcome.invalid
        with pytest.raises(ApprovalDeniedError):
            BoardEvaluator.enforce(board, req, outcome)

    def test_verdict_bound_to_request(self):
        """A verdict for one request cannot authorize another."""
        sim = Simulator()
        board, evaluator, services = make_board(
            sim, [("a", approve_everything, False)], threshold=1)
        verdict = services["ep-a"].decide_local(request("read"))
        verdict.verify(board.member("a").certificate)
        other_digest = sha256(request("delete").to_bytes())
        assert verdict.request_digest != other_digest

    def test_tampered_verdict_rejected(self):
        sim = Simulator()
        board, _evaluator, services = make_board(
            sim, [("a", reject_everything, False)], threshold=1)
        verdict = services["ep-a"].decide_local(request())
        flipped = Verdict(member_name=verdict.member_name,
                          request_digest=verdict.request_digest,
                          approve=True,  # attacker flips reject -> approve
                          signature=verdict.signature)
        with pytest.raises(SignatureError):
            flipped.verify(board.member("a").certificate)


class TestDecisionRules:
    def test_rule_sees_request_details(self):
        """Members can implement per-operation policies (e.g. read-only)."""
        sim = Simulator()

        def reads_only(req):
            return req.operation == "read"

        board, evaluator, _ = make_board(sim, [("a", reads_only, False)],
                                         threshold=1)
        ok = evaluator.evaluate_local(board, request("read"))
        BoardEvaluator.enforce(board, request("read"), ok)
        denied = evaluator.evaluate_local(board, request("update"))
        with pytest.raises(ApprovalDeniedError):
            BoardEvaluator.enforce(board, request("update"), denied)


class TestTimedEvaluation:
    def test_members_queried_in_parallel(self):
        """The round costs one slowest-member latency, not the sum."""
        sim = Simulator()
        board, evaluator, services = make_board(
            sim, [("a", approve_everything, False),
                  ("b", approve_everything, False),
                  ("c", approve_everything, False)], threshold=3)
        for service in services.values():
            service.site = Site.CONTINENTAL_7000KM

        def main():
            outcome = yield sim.process(evaluator.evaluate(board, request()))
            return outcome, sim.now

        outcome, elapsed = sim.run_process(main())
        assert len(outcome.approvals) == 3
        one_member = (calibration.RTT_7000_KM * 3  # rtt + tls handshake
                      + calibration.TLS_HANDSHAKE_CRYPTO_SECONDS
                      + services["ep-a"].service_seconds)
        # Parallel: total ~= one member's cost, certainly < 2x.
        assert elapsed < one_member * 2

    def test_offline_member_in_timed_round(self):
        sim = Simulator()
        board, evaluator, services = make_board(
            sim, [("a", approve_everything, False),
                  ("b", approve_everything, False)], threshold=1)
        services["ep-b"].online = False

        def main():
            outcome = yield sim.process(evaluator.evaluate(board, request()))
            return outcome

        outcome = sim.run_process(main())
        assert len(outcome.approvals) == 1
        assert outcome.unreachable == ["b"]


class TestServiceTimes:
    def test_tee_slower_than_native(self):
        sim = Simulator()
        keys = KeyPair.generate(DeterministicRandom(b"k"), bits=512)
        tee = ApprovalService(sim, "m", keys, in_tee=True)
        native = ApprovalService(sim, "m", keys, in_tee=False)
        assert tee.service_seconds > native.service_seconds

    def test_tls_adds_cost(self):
        sim = Simulator()
        keys = KeyPair.generate(DeterministicRandom(b"k"), bits=512)
        with_tls = ApprovalService(sim, "m", keys, use_tls=True)
        without = ApprovalService(sim, "m", keys, use_tls=False)
        assert with_tls.service_seconds > without.service_seconds
