"""A network front-end for the PALAEMON service (its REST/TLS API, Fig 4).

The core :class:`~repro.core.service.PalaemonService` is an in-process
object; this module puts it behind a :class:`~repro.tls.channel.TLSServer`
so clients reach it over the simulated network, the way real clients reach
PALAEMON: every request rides an attested TLS session, policy CRUD carries
the client certificate, and tag traffic flows over the runtime's original
attestation connection.

Request shape (a dict, playing the role of a JSON body):

    {"route": "policy.create", ...route-specific fields...}

Routes: ``policy.create`` / ``policy.read`` / ``policy.update`` /
``policy.delete`` / ``policy.list``, ``app.attest``, ``tag.get`` /
``tag.update``, ``instance.describe``.

Failures never raise through the TLS session: every handler error becomes
a structured reply ``{"error": message, "kind": ExceptionClass, "code":
snake_case_code}`` — including programming errors inside a handler, which
map to ``code="internal"`` — and is counted in the instance's
``palaemon_rest_errors_total`` metric by route and code.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Generator

from repro.core.client import PalaemonClient
from repro.core.service import PalaemonService
from repro.crypto.primitives import DeterministicRandom
from repro.errors import ReproError
from repro.sim.core import Event, ProcessInterrupt
from repro.sim.network import Endpoint, Network, Site
from repro.sim.retry import DEFAULT_RETRYABLE, RetryPolicy
from repro.tls.channel import TLSConnection, TLSServer
from repro.tls.handshake import TLSSession


class PalaemonRestServer:
    """Exposes a PALAEMON instance over TLS on the simulated network."""

    def __init__(self, service: PalaemonService, network: Network,
                 site: Site = Site.SAME_RACK) -> None:
        self.service = service
        self.network = network
        self.endpoint: Endpoint = network.endpoint(
            f"{service.name}-rest", site)
        self._server = TLSServer(network, self.endpoint, self._handle)
        self._server.start()

    def register_session(self, session: TLSSession) -> None:
        self._server.register_session(session)

    def stop(self) -> None:
        self._server.stop()

    # -- dispatch ----------------------------------------------------------

    def _handle(self, request: Dict[str, Any], session: TLSSession) -> Any:
        telemetry = self.service.telemetry
        route = request.get("route", "")
        handler = getattr(self, "_route_" + route.replace(".", "_"), None)
        if handler is None:
            telemetry.inc("palaemon_rest_requests_total", route="unknown")
            telemetry.inc("palaemon_rest_errors_total", route="unknown",
                          code="unknown_route")
            return {"error": f"unknown route {route!r}",
                    "kind": "ReproError", "code": "unknown_route"}
        telemetry.inc("palaemon_rest_requests_total", route=route)
        started = self.service.simulator.now
        with telemetry.span("rest." + route):
            try:
                reply = {"ok": handler(request, session)}
            except ReproError as exc:
                code = error_code(exc)
                telemetry.inc("palaemon_rest_errors_total", route=route,
                              code=code)
                reply = {"error": str(exc), "kind": type(exc).__name__,
                         "code": code}
            except Exception as exc:  # noqa: BLE001 - never raise through TLS
                telemetry.inc("palaemon_rest_errors_total", route=route,
                              code="internal")
                reply = {"error": f"{type(exc).__name__}: {exc}",
                         "kind": "InternalError", "code": "internal"}
        telemetry.observe("palaemon_rest_route_seconds",
                          self.service.simulator.now - started, route=route)
        return reply

    @staticmethod
    def _client_certificate(request: Dict[str, Any], session: TLSSession):
        certificate = (request.get("client_certificate")
                       or session.client_certificate)
        if certificate is None:
            raise ReproError("request carries no client certificate")
        return certificate

    def _route_policy_create(self, request, session):
        self.service.create_policy(
            request["policy"], self._client_certificate(request, session))
        return {"created": request["policy"].name}

    def _route_policy_read(self, request, session):
        return self.service.read_policy(
            request["name"], self._client_certificate(request, session))

    def _route_policy_update(self, request, session):
        self.service.update_policy(
            request["policy"], self._client_certificate(request, session))
        return {"updated": request["policy"].name}

    def _route_policy_delete(self, request, session):
        self.service.delete_policy(
            request["name"], self._client_certificate(request, session))
        return {"deleted": request["name"]}

    def _route_policy_list(self, _request, _session):
        return self.service.list_policies()

    def _route_app_attest(self, request, _session):
        return self.service.attest_application(request["evidence"])

    def _route_tag_get(self, request, _session):
        return self.service.get_tag_instant(request["policy"],
                                            request["service"])

    def _route_tag_update(self, request, _session):
        self.service.update_tag_instant(
            request["policy"], request["service"], request["tag"],
            clean_exit=request.get("clean_exit", False))
        return {"stored": True}

    def _route_volume_tag_get(self, request, _session):
        return self.service.get_volume_tag(request["policy"],
                                           request["volume"])

    def _route_volume_tag_update(self, request, _session):
        self.service.update_volume_tag(request["policy"], request["volume"],
                                       request["tag"])
        return {"stored": True}

    def _route_instance_describe(self, _request, _session):
        return {
            "name": self.service.name,
            "mrenclave": self.service.mrenclave,
            "public_key": self.service.public_key,
            "certificate": self.service.certificate,
        }


class PalaemonRestClient:
    """Client-side: TLS connection + typed request helpers."""

    def __init__(self, connection: TLSConnection, telemetry=None) -> None:
        self.connection = connection
        #: Optional telemetry for client-observed latencies; defaults to
        #: the no-op sink so benchmarks pay nothing.
        from repro.obs.telemetry import NULL_TELEMETRY

        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    @classmethod
    def connect(cls, network: Network, client: PalaemonClient,
                server: PalaemonRestServer, client_site: Site,
                rng: DeterministicRandom, trusted_root=None,
                ) -> Generator[Event, Any, "PalaemonRestClient"]:
        """Handshake (optionally verifying the instance's CA certificate)."""
        connection = yield network.simulator.process(TLSConnection.connect(
            network, f"{client.name}-conn", client_site, server.endpoint,
            rng, server_certificate=server.service.certificate,
            trusted_root=trusted_root,
            client_certificate=client.certificate,
            telemetry=server.service.telemetry))
        server.register_session(connection.session)
        return cls(connection)

    def call(self, route: str, **fields) -> Generator[Event, Any, Any]:
        """One request/response; raises on error replies.

        Interruption (a :meth:`Simulator.with_timeout` deadline on this
        call) cascades into the underlying TLS request so the abandoned
        attempt releases its mailbox getter instead of stealing the next
        reply.
        """
        payload = {"route": route}
        payload.update(fields)
        simulator = self.connection.network.simulator
        started = simulator.now
        inner = simulator.process(self.connection.request(payload),
                                  name=f"rest-request-{route}")
        try:
            reply = yield inner
        except ProcessInterrupt:
            if not inner.triggered:
                inner.interrupt("caller abandoned the request")
            raise
        self.telemetry.observe("palaemon_rest_client_seconds",
                               simulator.now - started, route=route)
        if "error" in reply:
            raise RemoteError(reply.get("kind", "ReproError"),
                              reply["error"], code=reply.get("code"))
        return reply["ok"]

    def call_with_retry(self, route: str, policy: RetryPolicy,
                        rng: DeterministicRandom, *,
                        retry_on=DEFAULT_RETRYABLE,
                        **fields) -> Generator[Event, Any, Any]:
        """Like :meth:`call`, but with bounded retries under ``policy``.

        Only transport-level faults (deadline expiry, network errors) are
        retried by default; an error *reply* from the server is a verdict
        and propagates immediately as :class:`RemoteError`.
        """
        simulator = self.connection.network.simulator
        result = yield simulator.process(policy.call(
            simulator, lambda: self.call(route, **fields), rng,
            operation=f"rest.{route}", retry_on=retry_on,
            telemetry=self.telemetry), name=f"rest-retry-{route}")
        return result


def error_code(exc: BaseException) -> str:
    """Map an exception class to a stable snake_case error code.

    ``PolicyNotFoundError`` -> ``policy_not_found``; anything that is not a
    :class:`ReproError` is ``internal``.
    """
    if not isinstance(exc, ReproError):
        return "internal"
    name = type(exc).__name__
    if name.endswith("Error"):
        name = name[:-len("Error")]
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()


class RemoteError(ReproError):
    """An error reply from the REST front-end."""

    def __init__(self, kind: str, message: str, code: str = None) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message
        self.code = code or "error"
