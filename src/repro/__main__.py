"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``list``
    Print the experiment index: every paper table/figure and the benchmark
    that regenerates it.
``bench <id> [id ...]``
    Run the named experiments (e.g. ``fig10``, ``table2``, ``all``) through
    pytest-benchmark, printing the paper-style tables.
``examples``
    List the runnable example scripts.
``observe``
    Run a small instrumented workload and print the telemetry: the metrics
    snapshot (Prometheus-style), the trace summary, and the audit-chain
    verification result. ``--seed`` varies the run; the same seed prints
    identical output.
``lint``
    Static analysis (palint): AST-lint the source tree and optionally
    policy documents (``--policy FILE``). ``--format=json`` for machine
    output, ``--list-rules`` for the catalogue; exit 1 on unsuppressed
    findings. See ``docs/ANALYSIS.md``.
``chaos``
    Run the seeded fault-injection scenario and print the recovery
    summary. ``--seed`` picks the fault schedule's RNG seed,
    ``--no-retry`` reproduces the pre-retry deadlock, and ``--check``
    asserts the two driver-level invariants (same seed twice is
    byte-identical; retries disabled deadlocks). See ``docs/CHAOS.md``.
``bench-tags``
    Run the tag-update write-path benchmark (sequential segmented vs
    legacy monolithic flush, plus concurrent group-commit batching) and
    export the deterministic results to ``results/tag_throughput.json``.
    ``--smoke`` runs a reduced configuration, asserts the batching and
    10x-bytes invariants, and checks the export is byte-identical across
    reruns. See ``docs/PERFORMANCE.md``.
``bench-dispatch``
    Drive an N-client burst through the operation-dispatch pipeline's
    admission control and export the deterministic results
    (p50/p99 latency of admitted requests, shed counts by reason) to
    ``results/dispatch_load.json``. ``--smoke`` runs a reduced burst,
    asserts the shedding invariants (typed ``overloaded`` code, admitted
    requests succeed), and checks the export is byte-identical across
    reruns. See ``docs/API.md`` and ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

#: Experiment id -> (benchmark file, description).
EXPERIMENTS = {
    "table1": ("test_table1_secret_channels.py",
               "How popular services obtain secrets"),
    "table2": ("test_table2_page_throughput.py",
               "Enclave page-operation throughput"),
    "fig7": ("test_fig7_startup_times.py",
             "Startup time vs enclave size"),
    "fig8": ("test_fig8_attestation_latency.py",
             "Attestation/configuration latencies"),
    "fig9": ("test_fig9_startup_scaling.py",
             "Startup throughput by attestation variant"),
    "fig10": ("test_fig10_monotonic_counters.py",
              "Monotonic counter throughput"),
    "fig11": ("test_fig11_tag_and_injection.py",
              "Tag latency + secret-injection overhead"),
    "fig12": ("test_fig12_secret_access.py",
              "Remote secret retrieval latency"),
    "fig13": ("test_fig13_approval_service.py",
              "Approval service throughput + geography"),
    "fig14": ("test_fig14_barbican.py", "Barbican under two microcodes"),
    "fig15": ("test_fig15_vault.py", "Vault (EPC paging)"),
    "fig16": ("test_fig16_memcached.py", "memcached"),
    "fig17a": ("test_fig17a_nginx.py", "NGINX five variants"),
    "fig17bc": ("test_fig17bc_zookeeper.py", "ZooKeeper reads/writes"),
    "fig17d": ("test_fig17d_mariadb.py", "MariaDB buffer-pool sweep"),
    "sec6": ("test_sec6_production_ml.py", "Production ML use case"),
    "ablations": ("test_ablations.py", "Design-choice ablations"),
    "ext-attestation": ("test_ext_attestation_paths.py",
                        "IAS vs local vs DCAP verification"),
    "ext-objectstore": ("test_ext_objectstore.py",
                        "Replicated storage backend durability"),
    "tags": ("test_tag_throughput.py",
             "Tag-update write-path throughput (segments + group commit)"),
    "dispatch": ("test_dispatch_load.py",
                 "Dispatch-pipeline admission control under burst load"),
}


def _repo_root() -> Path:
    return Path(__file__).resolve().parent.parent.parent


def cmd_list() -> int:
    width = max(len(key) for key in EXPERIMENTS)
    print("experiment  ->  benchmark (description)")
    for key, (filename, description) in EXPERIMENTS.items():
        print(f"  {key.ljust(width)}  benchmarks/{filename}  ({description})")
    return 0


def cmd_bench(ids: list) -> int:
    if "all" in ids:
        targets = ["benchmarks/"]
    else:
        unknown = [i for i in ids if i not in EXPERIMENTS]
        if unknown:
            print(f"unknown experiment ids: {', '.join(unknown)}",
                  file=sys.stderr)
            print("run `python -m repro list` for the index",
                  file=sys.stderr)
            return 2
        targets = [f"benchmarks/{EXPERIMENTS[i][0]}" for i in ids]
    command = [sys.executable, "-m", "pytest", *targets,
               "--benchmark-only", "-q", "-s"]
    return subprocess.call(command, cwd=_repo_root())


def cmd_observe(seed: str = "observe") -> int:
    """Run the telemetry demo workload and print the report."""
    from repro.obs.demo import print_observe_report, run_observe_workload

    if not seed:
        print("observe: --seed must be non-empty", file=sys.stderr)
        return 2
    service = run_observe_workload(seed.encode())
    return 0 if print_observe_report(service) else 1


def cmd_chaos(seed: int, check: bool, no_retry: bool) -> int:
    """Run (or verify) the seeded chaos scenario."""
    from repro.chaos import render_summary, run_chaos
    from repro.errors import SimulationError

    if no_retry:
        try:
            run_chaos(seed, retries=False)
        except SimulationError as exc:
            print(f"chaos (retries disabled): {exc}")
            print("the scenario hangs without the retry layer, as expected")
            return 0
        print("chaos (retries disabled): unexpectedly completed",
              file=sys.stderr)
        return 1
    if check:
        first = render_summary(run_chaos(seed))
        second = render_summary(run_chaos(seed))
        if first != second:
            print("chaos --check: two same-seed runs differ", file=sys.stderr)
            return 1
        try:
            run_chaos(seed, retries=False)
        except SimulationError:
            pass
        else:
            print("chaos --check: the no-retry run should deadlock "
                  "but completed", file=sys.stderr)
            return 1
        print(first)
        print(f"chaos --check: seed {seed} deterministic; "
              f"no-retry run deadlocks as expected")
        return 0
    print(render_summary(run_chaos(seed)))
    return 0


def cmd_bench_tags(smoke: bool, out: str) -> int:
    """Run the tag-update throughput benchmark; export deterministic JSON."""
    import json
    import tempfile

    from repro.benchlib import tagbench

    if smoke:
        config = dict(policies=150, sequential_updates=6, legacy_updates=3,
                      workers=6)
    else:
        config = dict(policies=tagbench.DEFAULT_POLICIES,
                      sequential_updates=12, legacy_updates=6, workers=8)
    document, wall_clock = tagbench.run_benchmark(**config)
    try:
        tagbench.check_invariants(document)
    except AssertionError as exc:
        print(f"bench-tags: invariant violated: {exc}", file=sys.stderr)
        return 1
    if smoke:
        # Determinism: a rerun of the same configuration must export
        # byte-identical JSON (wall-clock numbers are never exported).
        rerun, _ = tagbench.run_benchmark(**config)
        with tempfile.TemporaryDirectory() as scratch:
            first = Path(scratch) / "first.json"
            second = Path(scratch) / "second.json"
            tagbench.export_results(str(first), document)
            tagbench.export_results(str(second), rerun)
            if first.read_bytes() != second.read_bytes():
                print("bench-tags --smoke: rerun export differs",
                      file=sys.stderr)
                return 1
    else:
        path = Path(out)
        if not path.is_absolute():
            path = _repo_root() / path
        tagbench.export_results(str(path), document)
        print(f"wrote {path}")
    sequential = document["sequential"]
    concurrent = document["concurrent"]
    print(json.dumps(document, indent=2, sort_keys=True))
    print(f"bytes/update: legacy "
          f"{sequential['legacy']['bytes_written_per_update']} vs segmented "
          f"{sequential['segmented']['bytes_written_per_update']} "
          f"({sequential['bytes_written_ratio_legacy_over_segmented']}x)")
    print(f"group commit: {concurrent['workers']} workers -> "
          f"{concurrent['disk_commits']} disk commit(s), "
          f"{concurrent['coalesced_commits']} coalesced")
    print(f"wall clock (host-dependent, not exported): "
          f"segmented {wall_clock['segmented_updates_per_second']:.0f} "
          f"updates/s, legacy "
          f"{wall_clock['legacy_updates_per_second']:.0f} updates/s")
    return 0


def cmd_bench_dispatch(smoke: bool, out: str) -> int:
    """Run the dispatch admission-control burst; export deterministic JSON."""
    import json
    import tempfile

    from repro.benchlib import dispatchbench

    if smoke:
        config = dict(clients=16, requests_per_client=2, policies=60,
                      max_concurrency=3, max_queue=4, queue_deadline=0.5)
    else:
        config = dict(dispatchbench.DEFAULT_CONFIG)
    document = dispatchbench.run_benchmark(**config)
    try:
        dispatchbench.check_invariants(document)
    except AssertionError as exc:
        print(f"bench-dispatch: invariant violated: {exc}", file=sys.stderr)
        return 1
    if smoke:
        # Determinism: a rerun of the same configuration must export
        # byte-identical JSON (only simulated time is measured).
        rerun = dispatchbench.run_benchmark(**config)
        with tempfile.TemporaryDirectory() as scratch:
            first = Path(scratch) / "first.json"
            second = Path(scratch) / "second.json"
            dispatchbench.export_results(str(first), document)
            dispatchbench.export_results(str(second), rerun)
            if first.read_bytes() != second.read_bytes():
                print("bench-dispatch --smoke: rerun export differs",
                      file=sys.stderr)
                return 1
    else:
        path = Path(out)
        if not path.is_absolute():
            path = _repo_root() / path
        dispatchbench.export_results(str(path), document)
        print(f"wrote {path}")
    print(json.dumps(document, indent=2, sort_keys=True))
    admitted = document["admitted"]
    shed = document["shed"]
    print(f"burst: {document['requests_total']} requests -> "
          f"{admitted['count']} admitted (p50 "
          f"{admitted['latency']['p50'] * 1e3:.1f}ms, p99 "
          f"{admitted['latency']['p99'] * 1e3:.1f}ms), "
          f"{shed['count']} shed with code "
          f"{'/'.join(shed['codes'])}")
    return 0


def cmd_examples() -> int:
    examples_dir = _repo_root() / "examples"
    for script in sorted(examples_dir.glob("*.py")):
        first_doc_line = ""
        for line in script.read_text().splitlines():
            if line.startswith('"""'):
                first_doc_line = line.strip('"').strip()
                break
        print(f"  python examples/{script.name}  # {first_doc_line}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PALAEMON reproduction: experiment runner")
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="print the experiment index")
    bench = subparsers.add_parser("bench", help="run experiments")
    bench.add_argument("ids", nargs="+",
                       help="experiment ids (see `list`) or `all`")
    subparsers.add_parser("examples", help="list runnable examples")
    observe = subparsers.add_parser(
        "observe", help="run a workload, print telemetry + audit verdict")
    observe.add_argument("--seed", default="observe",
                         help="workload seed (same seed, same output)")
    subparsers.add_parser(
        "lint", add_help=False,
        help="static analysis: policy + source lint (palint)")
    chaos = subparsers.add_parser(
        "chaos", help="seeded fault injection + recovery summary")
    chaos.add_argument("--seed", type=int, default=7,
                       help="fault-schedule seed (same seed, same output)")
    chaos.add_argument("--check", action="store_true",
                       help="assert determinism and the no-retry deadlock")
    chaos.add_argument("--no-retry", action="store_true",
                       help="run without the retry layer (demonstrates "
                            "the deadlock the retry layer fixes)")
    bench_tags = subparsers.add_parser(
        "bench-tags", help="tag-update write-path throughput benchmark")
    bench_tags.add_argument("--smoke", action="store_true",
                            help="reduced run: assert batching + 10x-bytes "
                                 "invariants and export determinism")
    bench_tags.add_argument("--out", default="results/tag_throughput.json",
                            help="export path (full runs only)")
    bench_dispatch = subparsers.add_parser(
        "bench-dispatch",
        help="dispatch-pipeline admission-control burst benchmark")
    bench_dispatch.add_argument(
        "--smoke", action="store_true",
        help="reduced burst: assert shedding invariants and export "
             "determinism")
    bench_dispatch.add_argument(
        "--out", default="results/dispatch_load.json",
        help="export path (full runs only)")
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # The lint CLI owns its own argument surface (src/repro/analysis).
        from repro.analysis.cli import run_lint

        return run_lint(argv[1:])
    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "bench":
        return cmd_bench(args.ids)
    if args.command == "observe":
        return cmd_observe(args.seed)
    if args.command == "chaos":
        return cmd_chaos(args.seed, args.check, args.no_retry)
    if args.command == "bench-tags":
        return cmd_bench_tags(args.smoke, args.out)
    if args.command == "bench-dispatch":
        return cmd_bench_dispatch(args.smoke, args.out)
    return cmd_examples()


if __name__ == "__main__":
    raise SystemExit(main())
