"""The untrusted block store.

This is the adversary's playground: a plain path -> bytes mapping standing
in for the host file system / container volume. The attacker controls it
completely, so it supports ``snapshot()`` / ``restore()`` — the rollback
attack is literally restoring an old snapshot — plus arbitrary tampering.
Nothing in here is trusted; all protection comes from the shield layered on
top.
"""

from __future__ import annotations

from typing import Dict, List


class BlockStore:
    """An untrusted persistent byte store with attack affordances."""

    def __init__(self, name: str = "volume") -> None:
        self.name = name
        self._files: Dict[str, bytes] = {}
        self.write_count = 0
        self.read_count = 0
        self.bytes_written = 0
        # Per-path write generations: every mutation — shielded write,
        # out-of-band tamper, snapshot restore — bumps the path's
        # generation, so readers can cheaply detect "blocks changed since
        # I last validated this path" without re-reading the content.
        self._generations: Dict[str, int] = {}
        self._write_epoch = 0
        #: Fault-injection hook ``hook(operation, path)`` installed by
        #: :meth:`repro.sim.faults.FaultPlan.attach_blockstore`; raises
        #: :class:`repro.errors.StorageFaultError` during fault windows.
        self.fault_hook = None

    # -- normal operation --------------------------------------------------

    def write(self, path: str, data: bytes) -> None:
        if self.fault_hook is not None:
            self.fault_hook("write", path)
        self._files[path] = data
        self.write_count += 1
        self.bytes_written += len(data)
        self._bump(path)

    def read(self, path: str) -> bytes:
        if self.fault_hook is not None:
            self.fault_hook("read", path)
        self.read_count += 1
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def delete(self, path: str) -> None:
        try:
            del self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None
        self._bump(path)

    def exists(self, path: str) -> bool:
        return path in self._files

    def generation(self, path: str) -> int:
        """Monotonic per-path write generation (0 = never written).

        Changes on every mutation of ``path``, including attacker-side
        ``tamper``/``restore``, so a cached validation made at generation
        ``g`` is still sound while ``generation(path) == g``.
        """
        return self._generations.get(path, 0)

    def _bump(self, path: str) -> None:
        self._write_epoch += 1
        self._generations[path] = self._write_epoch

    def list(self) -> List[str]:
        return sorted(self._files)

    def total_bytes(self) -> int:
        return sum(len(data) for data in self._files.values())

    # -- attack surface -----------------------------------------------------

    def snapshot(self) -> Dict[str, bytes]:
        """Capture the full store state (attacker checkpoint)."""
        return dict(self._files)

    def restore(self, snapshot: Dict[str, bytes]) -> None:
        """Roll the store back to an earlier snapshot (rollback attack)."""
        self._files = dict(snapshot)
        for path in self._files:
            self._bump(path)

    def tamper(self, path: str, data: bytes) -> None:
        """Overwrite a file without going through the shield."""
        self._files[path] = data
        self._bump(path)

    def scan_for(self, needle: bytes) -> List[str]:
        """Paths whose raw content contains ``needle``.

        Confidentiality tests use this: plaintext secrets must never be
        findable in the untrusted store.
        """
        return [path for path, data in self._files.items() if needle in data]
