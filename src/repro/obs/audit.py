"""A tamper-evident, hash-chained audit log.

PALAEMON's whole point is that no single Byzantine stakeholder can
*silently* do anything: change a policy, roll state back, push an update.
That property is only observable if the security-relevant event stream
itself resists tampering. Each :class:`AuditRecord` therefore carries

    record_hash = SHA-256(previous_hash || canonical(record))

where ``canonical`` is a sorted-key JSON encoding of the record's
sequence number, timestamp, kind, and details. Editing any field breaks
that record's hash; dropping or reordering records breaks the chain link
of the first surviving successor; truncating the tail is detected by
comparing :meth:`AuditLog.head` against an externally anchored head hash
(the same trick the rollback guard plays with the monotonic counter).

The log is in-enclave state: an operator can read it out, but can only
produce a *consistent* forgery by breaking SHA-256 or compromising the
enclave itself — both outside the paper's threat model.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.crypto.primitives import sha256
from repro.errors import IntegrityError

#: The chain anchor for the first record.
GENESIS_HASH = b"\x00" * 32


def sanitize_details(details: Dict[str, object]) -> Dict[str, object]:
    """Coerce detail values into stable JSON-serializable scalars."""
    clean: Dict[str, object] = {}
    for key, value in details.items():
        if isinstance(value, bytes):
            clean[str(key)] = value.hex()
        elif isinstance(value, (str, int, float, bool)) or value is None:
            clean[str(key)] = value
        else:
            clean[str(key)] = str(value)
    return clean


def record_digest(sequence: int, timestamp: float, kind: str,
                  details: Dict[str, object],
                  previous_hash: bytes) -> bytes:
    """The chained hash of one record's canonical encoding."""
    canonical = json.dumps(
        {"sequence": sequence, "timestamp": timestamp, "kind": kind,
         "details": details},
        sort_keys=True, separators=(",", ":")).encode()
    return sha256(previous_hash, canonical)


@dataclass
class AuditRecord:
    """One security-relevant event, chained to its predecessor."""

    sequence: int
    timestamp: float
    kind: str
    details: Dict[str, object] = field(default_factory=dict)
    previous_hash: bytes = GENESIS_HASH
    record_hash: bytes = b""

    def to_dict(self) -> dict:
        return {
            "sequence": self.sequence,
            "timestamp": self.timestamp,
            "kind": self.kind,
            "details": dict(self.details),
            "previous_hash": self.previous_hash.hex(),
            "record_hash": self.record_hash.hex(),
        }


class AuditLog:
    """An append-only record chain on an injected (simulator) clock."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self.records: List[AuditRecord] = []

    def append(self, kind: str, **details: object) -> AuditRecord:
        """Append one event; returns the chained record."""
        clean = sanitize_details(details)
        sequence = len(self.records)
        timestamp = self._clock()
        previous = self.head()
        record = AuditRecord(
            sequence=sequence, timestamp=timestamp, kind=kind,
            details=clean, previous_hash=previous,
            record_hash=record_digest(sequence, timestamp, kind, clean,
                                      previous))
        self.records.append(record)
        return record

    def head(self) -> bytes:
        """The hash of the newest record (the value to anchor externally)."""
        return self.records[-1].record_hash if self.records else GENESIS_HASH

    def __len__(self) -> int:
        return len(self.records)

    def verify_chain(self, expected_head: Optional[bytes] = None) -> int:
        """Re-derive the chain; raises :class:`IntegrityError` on tampering.

        Returns the number of verified records. Passing ``expected_head``
        (an externally anchored copy of :meth:`head`) additionally detects
        truncation of the log tail, which a pure chain walk cannot.
        """
        previous = GENESIS_HASH
        for index, record in enumerate(self.records):
            if record.sequence != index:
                raise IntegrityError(
                    f"audit record at position {index} carries sequence "
                    f"{record.sequence}: records dropped or reordered")
            if record.previous_hash != previous:
                raise IntegrityError(
                    f"audit record {index} does not chain to its "
                    f"predecessor: records edited, dropped, or reordered")
            expected = record_digest(record.sequence, record.timestamp,
                                     record.kind, record.details,
                                     record.previous_hash)
            if record.record_hash != expected:
                raise IntegrityError(
                    f"audit record {index} ({record.kind!r}) hash mismatch: "
                    f"record contents were edited")
            previous = record.record_hash
        if expected_head is not None and previous != expected_head:
            raise IntegrityError(
                "audit log head does not match the anchored head: "
                "the log tail was truncated or replaced")
        return len(self.records)

    def is_valid(self, expected_head: Optional[bytes] = None) -> bool:
        """Boolean form of :meth:`verify_chain`."""
        try:
            self.verify_chain(expected_head)
        except IntegrityError:
            return False
        return True

    def by_kind(self, kind: str) -> List[AuditRecord]:
        return [record for record in self.records if record.kind == kind]
