"""Enclave loader: startup cost model (Table II, Fig 7).

Setting up an enclave involves four cost components, each with a calibrated
throughput: *adding* pages (EADD), *measuring* them (EEXTEND — an order of
magnitude slower than everything else), *evicting* EPC pages when the
enclave exceeds the cache, and *bookkeeping* (allocation, copying).

The PALAEMON/SCONE loader measures **only code and initialized data** and
adds zeroed heap pages unmeasured; a naive loader measures every page. The
difference is exactly Fig 7: naive startup grows linearly with enclave size
at ~148 MB/s while PALAEMON startup stays near-flat.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Generator

from repro import calibration
from repro.sim.core import Event, Simulator
from repro.tee.epc import EnclavePageCache
from repro.tee.image import EnclaveImage


class MeasurementScope(enum.Enum):
    """What the loader measures into MRENCLAVE."""

    #: PALAEMON/SCONE: measure code + initialized data only.
    CODE_ONLY = "code-only"
    #: Naive loader: measure every page including heap.
    ALL_PAGES = "all-pages"


@dataclass(frozen=True)
class LoadReport:
    """Breakdown of one enclave load (the stacked bars of Fig 7)."""

    image_name: str
    scope: MeasurementScope
    addition_seconds: float
    measurement_seconds: float
    eviction_seconds: float
    bookkeeping_seconds: float

    @property
    def total_seconds(self) -> float:
        return (self.addition_seconds + self.measurement_seconds
                + self.eviction_seconds + self.bookkeeping_seconds)


class EnclaveLoader:
    """Loads images into the EPC, charging calibrated per-byte costs."""

    def __init__(self, simulator: Simulator, epc: EnclavePageCache) -> None:
        self.simulator = simulator
        self.epc = epc

    def load(self, image: EnclaveImage,
             scope: MeasurementScope = MeasurementScope.CODE_ONLY,
             ) -> Generator[Event, Any, LoadReport]:
        """Load ``image``; a process returning the cost breakdown.

        The addition + bookkeeping work holds the driver's global EPC lock —
        the serialization that caps parallel startups (Fig 9).
        """
        total = image.total_bytes
        measured = (total if scope is MeasurementScope.ALL_PAGES
                    else image.measured_bytes)

        addition_seconds = total / calibration.PAGE_ADDITION_BPS
        bookkeeping_seconds = total / calibration.PAGE_BOOKKEEPING_BPS
        measurement_seconds = measured / calibration.PAGE_MEASUREMENT_BPS

        # Page allocation is serialized by the driver lock; per-start we also
        # charge the fixed driver critical section observed in Fig 9.
        evicted = yield self.simulator.process(self.epc.allocate(
            total,
            hold_driver_lock_seconds=(
                calibration.SGX_DRIVER_LOCK_SECONDS_PER_START)))
        eviction_seconds = evicted / calibration.PAGE_EVICTION_BPS

        # Measurement and the remaining copy work run outside the lock.
        yield self.simulator.timeout(addition_seconds + bookkeeping_seconds
                                     + measurement_seconds + eviction_seconds)
        return LoadReport(
            image_name=image.name,
            scope=scope,
            addition_seconds=addition_seconds,
            measurement_seconds=measurement_seconds,
            eviction_seconds=eviction_seconds,
            bookkeeping_seconds=bookkeeping_seconds,
        )

    def unload(self, image: EnclaveImage) -> None:
        """Free the image's EPC pages."""
        self.epc.free(image.total_bytes)

    @staticmethod
    def estimate(image: EnclaveImage, scope: MeasurementScope,
                 evicted_bytes: int = 0) -> LoadReport:
        """Closed-form cost estimate without running the simulator.

        Used by the Fig 7 benchmark to tabulate component times for a sweep
        of enclave sizes.
        """
        total = image.total_bytes
        measured = (total if scope is MeasurementScope.ALL_PAGES
                    else image.measured_bytes)
        return LoadReport(
            image_name=image.name,
            scope=scope,
            addition_seconds=total / calibration.PAGE_ADDITION_BPS,
            measurement_seconds=measured / calibration.PAGE_MEASUREMENT_BPS,
            eviction_seconds=evicted_bytes / calibration.PAGE_EVICTION_BPS,
            bookkeeping_seconds=total / calibration.PAGE_BOOKKEEPING_BPS,
        )
