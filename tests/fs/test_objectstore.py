"""Tests for the PESOS-style replicated object store."""

import pytest

from repro.crypto.primitives import DeterministicRandom
from repro.errors import NetworkError
from repro.fs.objectstore import ReplicatedObjectStore
from repro.fs.shield import ProtectedFileSystem


class TestBasicOperations:
    def test_write_read_delete(self):
        store = ReplicatedObjectStore()
        store.write("/a", b"data")
        assert store.read("/a") == b"data"
        assert store.exists("/a")
        store.delete("/a")
        assert not store.exists("/a")
        with pytest.raises(FileNotFoundError):
            store.read("/a")

    def test_overwrite_takes_latest(self):
        store = ReplicatedObjectStore()
        store.write("/a", b"v1")
        store.write("/a", b"v2")
        assert store.read("/a") == b"v2"

    def test_list(self):
        store = ReplicatedObjectStore()
        store.write("/b", b"2")
        store.write("/a", b"1")
        assert store.list() == ["/a", "/b"]
        store.delete("/a")
        assert store.list() == ["/b"]

    def test_invalid_node_counts(self):
        with pytest.raises(ValueError):
            ReplicatedObjectStore(nodes=2)
        with pytest.raises(ValueError):
            ReplicatedObjectStore(nodes=4)

    def test_snapshot_restore(self):
        store = ReplicatedObjectStore()
        store.write("/a", b"v1")
        snapshot = store.snapshot()
        store.write("/a", b"v2")
        store.write("/b", b"new")
        store.restore(snapshot)
        assert store.read("/a") == b"v1"
        assert not store.exists("/b")


class TestFaultTolerance:
    def test_survives_minority_failures(self):
        store = ReplicatedObjectStore(nodes=5)
        store.write("/a", b"durable")
        store.fail_node(0)
        store.fail_node(1)
        assert store.read("/a") == b"durable"
        store.write("/b", b"still-writable")
        assert store.read("/b") == b"still-writable"

    def test_majority_failure_blocks_writes(self):
        store = ReplicatedObjectStore(nodes=3)
        store.fail_node(0)
        store.fail_node(1)
        with pytest.raises(NetworkError, match="quorum"):
            store.write("/a", b"data")

    def test_recovered_node_repaired_on_read(self):
        store = ReplicatedObjectStore(nodes=3)
        store.write("/a", b"v1")
        store.fail_node(2)
        store.write("/a", b"v2")  # node 2 misses this
        store.recover_node(2)
        assert store.read("/a") == b"v2"  # read repair ran
        assert store.nodes[2].objects["/a"] == (2, b"v2")

    def test_stale_replica_never_wins(self):
        """After recovery, the highest version wins even if stale copies
        outnumber fresh ones among responders."""
        store = ReplicatedObjectStore(nodes=3)
        store.write("/a", b"v1")
        store.fail_node(1)
        store.fail_node(2)
        store.recover_node(1)
        store.recover_node(2)
        store.write("/a", b"v2")
        assert store.read("/a") == b"v2"

    def test_byzantine_replica_detected_by_shield(self):
        """A tampered replica copy is caught by the integrity layer above."""
        from repro.errors import IntegrityError

        store = ReplicatedObjectStore(nodes=3)
        rng = DeterministicRandom(b"object-shield")
        key = rng.fork(b"key").bytes(32)
        fs = ProtectedFileSystem(store, key, rng.fork(b"fs"))
        fs.write("/secret", b"protected-content")
        fs.sync()
        # Corrupt the copy on every replica (worst case).
        for node in store.nodes:
            version = node.objects["/secret"][0]
            node.objects["/secret"] = (version, b"\x00" * 64)
        remounted = ProtectedFileSystem(store, key, rng.fork(b"again"))
        with pytest.raises(IntegrityError):
            remounted.read("/secret")


class TestShieldOnObjectStore:
    def test_palaemon_volume_on_replicated_backend(self):
        """The full stack: shielded FS on the replicated store, with a
        node failure mid-workload."""
        store = ReplicatedObjectStore(nodes=3, name="palaemon-backend")
        rng = DeterministicRandom(b"stack")
        key = rng.fork(b"key").bytes(32)
        fs = ProtectedFileSystem(store, key, rng.fork(b"fs"))
        fs.write("/db", b"policies-and-tags")
        tag = fs.sync()
        store.fail_node(0)  # one replica dies; nothing is lost
        remounted = ProtectedFileSystem(store, key, rng.fork(b"r"))
        remounted.verify_tag(tag)
        assert remounted.read("/db") == b"policies-and-tags"

    def test_ciphertext_only_on_all_replicas(self):
        store = ReplicatedObjectStore(nodes=3)
        rng = DeterministicRandom(b"conf")
        fs = ProtectedFileSystem(store, rng.fork(b"key").bytes(32),
                                 rng.fork(b"fs"))
        fs.write("/secret", b"replicated-plaintext-canary")
        fs.sync()
        assert store.scan_for(b"replicated-plaintext-canary") == []
