"""Tests for the benchmark harness library."""

import pytest

from repro.benchlib.harness import (
    ExperimentResult,
    concurrency_sweep,
    geometric_rates,
    rate_sweep,
)
from repro.benchlib.tables import (
    PaperComparison,
    format_table,
    paper_vs_measured,
)
from repro.sim.resources import Resource


def fixed_server_setup(service_time):
    """SetupFn for a one-thread server with fixed service time."""

    def setup(simulator):
        resource = Resource(simulator, capacity=1)

        def factory(_request_id):
            yield resource.acquire()
            try:
                yield simulator.timeout(service_time)
            finally:
                resource.release()

        return factory

    return setup


class TestRateSweep:
    def test_latency_spikes_past_capacity(self):
        result = rate_sweep("s", fixed_server_setup(0.01),
                            rates=[20, 50, 90, 200], duration=2.0)
        latencies = [point.latency.mean for point in result.points]
        assert latencies[-1] > 10 * latencies[0]

    def test_knee_near_capacity(self):
        result = rate_sweep("s", fixed_server_setup(0.01),
                            rates=[20, 50, 80, 95, 150, 300], duration=3.0)
        knee = result.knee(latency_limit=0.05)
        assert 70 <= knee <= 110  # capacity is 100/s

    def test_fresh_server_per_point(self):
        """Queues must not leak between sweep points."""
        result = rate_sweep("s", fixed_server_setup(0.01),
                            rates=[300, 20], duration=1.0)
        # The second (light) point must not inherit the first point's queue.
        assert result.points[1].latency.mean < 0.02

    def test_rows(self):
        result = rate_sweep("s", fixed_server_setup(0.001),
                            rates=[10], duration=1.0)
        rows = result.rows()
        assert len(rows) == 1
        offered, achieved, latency_ms = rows[0]
        assert offered == 10


class TestConcurrencySweep:
    def test_throughput_saturates(self):
        result = concurrency_sweep("s", fixed_server_setup(0.01),
                                   concurrencies=[1, 4, 16], duration=2.0)
        rates = [point.achieved_rate for point in result.points]
        assert rates[0] == pytest.approx(100, rel=0.05)
        assert rates[2] == pytest.approx(100, rel=0.05)

    def test_peak_rate(self):
        result = concurrency_sweep("s", fixed_server_setup(0.01),
                                   concurrencies=[1, 2], duration=1.0)
        assert result.peak_rate() == pytest.approx(100, rel=0.1)


class TestGeometricRates:
    def test_endpoints(self):
        rates = geometric_rates(10, 1000, 5)
        assert rates[0] == pytest.approx(10)
        assert rates[-1] == pytest.approx(1000)
        assert len(rates) == 5

    def test_monotone(self):
        rates = geometric_rates(1, 100, 7)
        assert rates == sorted(rates)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            geometric_rates(1, 10, 1)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1.0], ["long-name", 123456.0]],
                            title="Demo")
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "123,456" in text

    def test_float_rendering(self):
        text = format_table(["v"], [[0.00123], [12.3456], [0.0]])
        assert "0.00123" in text
        assert "12.35" in text

    def test_comparison_within_tolerance(self):
        comparison = PaperComparison("rate", paper_value=100,
                                     measured_value=110)
        assert comparison.within_tolerance
        assert comparison.ratio == pytest.approx(1.1)

    def test_comparison_divergent(self):
        comparison = PaperComparison("rate", paper_value=100,
                                     measured_value=300)
        assert not comparison.within_tolerance
        assert "DIVERGES" in comparison.row()

    def test_zero_paper_value(self):
        assert PaperComparison("x", 0, 0).ratio == 1.0
        assert PaperComparison("x", 0, 5).ratio == float("inf")

    def test_paper_vs_measured_rendering(self):
        text = paper_vs_measured(
            [PaperComparison("throughput", 100, 95, unit="req/s")],
            title="Fig X")
        assert "Fig X" in text
        assert "req/s" in text
        assert "ok" in text
