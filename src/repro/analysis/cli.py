"""The ``python -m repro lint`` command.

Source-lints ``src/repro`` (or the given paths) and policy-lints any
yamlish documents passed via ``--policy``.  Exit status: 0 clean, 1
findings remain after the baseline, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.engine import Analyzer, repo_root
from repro.analysis.report import render_json, render_text
from repro.analysis.suppress import (
    BASELINE_FILENAME,
    apply_baseline,
    load_baseline,
)
from repro.core import yamlish
from repro.core.policy import SecurityPolicy
from repro.errors import PolicyValidationError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="palint: policy + source static analysis")
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to source-lint "
             "(default: the repo's src/repro tree)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--policy", action="append", default=[], type=Path,
        metavar="FILE",
        help="also lint a yamlish policy document (repeatable)")
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help=f"baseline file of tolerated findings "
             f"(default: <repo>/{BASELINE_FILENAME} when present)")
    parser.add_argument(
        "--rules", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    return parser


def run_lint(argv: Optional[List[str]] = None) -> int:
    try:
        return _run_lint(argv)
    except BrokenPipeError:
        # Downstream closed early (lint | head); not a lint failure, but
        # the pipe truncated the report, so don't claim a clean exit.
        sys.stderr.close()
        return 1


def _run_lint(argv: Optional[List[str]]) -> int:
    args = build_parser().parse_args(argv)
    analyzer = Analyzer()

    if args.list_rules:
        for code in analyzer.registry.codes():
            rule = analyzer.registry.get(code)
            print(f"{code}  {rule.severity.name.ljust(8)} "
                  f"[{rule.scope}] {rule.title}")
        return 0

    codes = None
    if args.rules:
        codes = {part.strip().upper() for part in args.rules.split(",")
                 if part.strip()}
        try:
            analyzer.registry.rules(codes=codes)
        except KeyError as exc:
            print(f"lint: {exc.args[0]}", file=sys.stderr)
            return 2

    root = repo_root()
    findings = []
    for path in (args.paths or [root / "src" / "repro"]):
        if not path.exists():
            print(f"lint: no such path: {path}", file=sys.stderr)
            return 2
        findings.extend(
            analyzer.analyze_sources(path, codes=codes, base=root))

    for policy_path in args.policy:
        findings.extend(
            _lint_policy_file(analyzer, policy_path, codes))

    baseline_path = args.baseline or (root / BASELINE_FILENAME)
    try:
        suppress_ids = load_baseline(baseline_path)
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    kept, suppressed = apply_baseline(sorted(set(findings),
                                             key=lambda f: f.sort_key()),
                                      suppress_ids)

    renderer = render_json if args.format == "json" else render_text
    sys.stdout.write(renderer(kept, suppressed=suppressed))
    return 1 if kept else 0


def _lint_policy_file(analyzer: Analyzer, path: Path, codes) -> list:
    from repro.analysis.findings import Finding, Severity

    display = path.name
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [Finding(code="PAL000", severity=Severity.CRITICAL,
                        subject=display,
                        message=f"cannot read policy file: {exc}",
                        hint="check the path")]
    try:
        document = yamlish.loads(text)
    except PolicyValidationError as exc:
        return [Finding(code="PAL000", severity=Severity.CRITICAL,
                        subject=display,
                        message=f"policy document does not parse: {exc}",
                        hint="fix the document before linting deeper")]
    name = (document.get("name") or display) if isinstance(document, dict) \
        else display
    findings = analyzer.analyze_document(
        name, document if isinstance(document, dict) else {}, codes=codes)
    try:
        policy = SecurityPolicy.from_dict(document)
    except PolicyValidationError as exc:
        findings.append(Finding(
            code="PAL000", severity=Severity.CRITICAL, subject=name,
            message=f"policy does not validate: {exc}",
            hint="from_dict/validate rejected the document"))
        return findings
    findings.extend(analyzer.analyze_policy_set(
        {policy.name: policy}, codes=codes))
    return findings
