"""The ``python -m repro observe`` workload.

Stands up one complete deployment — platform, board, CA, PALAEMON
instance, REST front-end over the simulated network — and drives a small
but representative workload across every instrumented path: policy CRUD
under quorum approval, application attestation (accepted and denied),
tag reads and updates (instant and disk-committed), volume tags, a
couple of failing REST calls, and a clean shutdown through the rollback
guard. It then renders the metrics snapshot, verifies the audit chain,
and summarizes the trace — the operator's-eye view the paper's Byzantine
-stakeholder argument needs to be observable at all.

Everything is seeded, so two runs with the same seed print identical
output (including every span timestamp).
"""

from __future__ import annotations

from typing import Callable

from repro.core.board import ApprovalService, BoardEvaluator
from repro.core.ca import PalaemonCA
from repro.core.client import PalaemonClient
from repro.core.policy import (
    BoardSpec,
    PolicyBoardMember,
    SecurityPolicy,
    ServiceSpec,
    VolumeSpec,
)
from repro.core.rest import PalaemonRestClient, PalaemonRestServer, RemoteError
from repro.core.secrets import SecretKind, SecretSpec
from repro.core.service import PalaemonService
from repro.crypto.certificates import self_signed_certificate
from repro.crypto.primitives import DeterministicRandom, sha256
from repro.crypto.signatures import KeyPair
from repro.errors import IntegrityError
from repro.fs.blockstore import BlockStore
from repro.sim.core import Simulator
from repro.sim.network import Network, Site
from repro.tee.ias import IntelAttestationService
from repro.tee.image import build_image
from repro.tee.platform import SGXPlatform


def run_observe_workload(seed: bytes = b"observe") -> PalaemonService:
    """Run the demo workload; returns the (stopped) instrumented service."""
    rng = DeterministicRandom(seed)
    simulator = Simulator()
    platform = SGXPlatform(simulator, "observe-node", rng.fork(b"platform"))
    ias = IntelAttestationService(simulator, Site.IAS_US, rng.fork(b"ias"))
    ias.register_platform(platform.quoting_enclave.attestation_public_key,
                          platform.microcode.revision)

    # A three-member board, threshold two.
    approval_services = {}
    members = []
    for index in range(3):
        name = f"member-{index}"
        keys = KeyPair.generate(rng.fork(name.encode()), bits=512)
        endpoint = f"approval-{name}"
        approval_services[endpoint] = ApprovalService(simulator, name, keys)
        members.append(PolicyBoardMember(
            name=name, certificate=self_signed_certificate(name, keys),
            approval_endpoint=endpoint))
    board = BoardSpec(members=tuple(members), threshold=2)
    evaluator = BoardEvaluator(simulator, approval_services)

    service = PalaemonService(platform, BlockStore("observe-volume"),
                              rng.fork(b"palaemon"),
                              board_evaluator=evaluator,
                              name="palaemon-observe")
    service.platform_registry.enroll(
        platform.platform_id,
        platform.quoting_enclave.attestation_public_key)
    ca = PalaemonCA(platform, ias, frozenset({service.mrenclave}),
                    rng.fork(b"ca"))
    simulator.run_process(service.start(), name="observe-start")
    service.obtain_certificate(ca)

    client = PalaemonClient("observe-client", rng.fork(b"client"))
    client.attest_instance_via_ca(service, ca.root_public_key,
                                  now=simulator.now)

    # The REST front-end, reached over the simulated network.
    network = Network(simulator, rng.fork(b"network"))
    server = PalaemonRestServer(service, network)
    rest = simulator.run_process(
        PalaemonRestClient.connect(network, client, server, Site.SAME_DC,
                                   rng.fork(b"rest"),
                                   trusted_root=ca.root_public_key),
        name="observe-connect")
    rest.telemetry = service.telemetry

    app_image = build_image("observe-app", seed=b"v1")
    policy = SecurityPolicy(
        name="observe_policy",
        services=[ServiceSpec(
            name="app",
            image_name=app_image.name,
            command=["python", "/app.py"],
            environment={"MODE": "observe"},
            mrenclaves=[app_image.mrenclave()],
        )],
        secrets=[SecretSpec(name="API_KEY", kind=SecretKind.RANDOM,
                            size=32)],
        volumes=[VolumeSpec(name="data", path="/data")],
        board=board,
    )

    def evidence():
        enclave = platform.launch_instant(app_image)
        tls_keys = KeyPair.generate(rng.fork(b"app-tls"), bits=512)
        quote = platform.quoting_enclave.quote(
            enclave, sha256(tls_keys.public.to_bytes()))
        from repro.core.attestation import AttestationEvidence

        return AttestationEvidence(quote=quote, policy_name="observe_policy",
                                   service_name="app",
                                   tls_public_key=tls_keys.public)

    def workload():
        # Policy CRUD under board approval.
        yield simulator.process(rest.call("policy.create", policy=policy))
        yield simulator.process(rest.call("policy.read",
                                          name="observe_policy"))
        yield simulator.process(rest.call("policy.list"))
        yield simulator.process(rest.call("policy.update", policy=policy))
        # Attestation: one accepted, one denied (unknown policy).
        yield simulator.process(rest.call("app.attest", evidence=evidence()))
        try:
            bogus = evidence()
            bogus = type(bogus)(quote=bogus.quote, policy_name="ghost",
                                service_name="app",
                                tls_public_key=bogus.tls_public_key)
            yield simulator.process(rest.call("app.attest", evidence=bogus))
        except RemoteError:
            pass
        # Tag traffic: instant over REST, then the disk-committed path.
        for round_number in range(3):
            tag = sha256(b"fs-state", bytes([round_number]))
            yield simulator.process(rest.call(
                "tag.update", policy="observe_policy", service="app",
                tag=tag))
            yield simulator.process(rest.call(
                "tag.get", policy="observe_policy", service="app"))
        yield simulator.process(service.update_tag(
            "observe_policy", "app", sha256(b"fs-state-final"),
            clean_exit=True))
        # Volume tags.
        yield simulator.process(rest.call(
            "volume_tag.update", policy="observe_policy", volume="data",
            tag=sha256(b"volume-state")))
        yield simulator.process(rest.call(
            "volume_tag.get", policy="observe_policy", volume="data"))
        # Failing requests: a policy that does not exist, a bogus route.
        try:
            yield simulator.process(rest.call("tag.get", policy="ghost",
                                              service="app"))
        except RemoteError:
            pass
        try:
            yield simulator.process(rest.call("no.such.route"))
        except RemoteError:
            pass

    simulator.run_process(workload(), name="observe-workload")
    simulator.run_process(service.shutdown(), name="observe-stop")
    server.stop()
    simulator.run()
    return service


def print_observe_report(service: PalaemonService,
                         write: Callable[[str], None] = print) -> bool:
    """Render the snapshot + audit verdict; returns chain validity."""
    telemetry = service.telemetry
    write(f"# instance {service.name}: metrics snapshot "
          f"(virtual time {telemetry.now:.6f}s)")
    write(telemetry.snapshot_text().rstrip("\n"))
    write("")
    spans = telemetry.tracer.finished
    write(f"# trace: {len(spans)} finished spans, "
          f"{len(set(s.name for s in spans))} distinct operations")
    write(f"# audit log: {len(telemetry.audit_log)} records, "
          f"head {telemetry.audit_log.head().hex()[:16]}...")
    try:
        verified = telemetry.verify_audit_chain()
    except IntegrityError as exc:
        write(f"# audit chain: INVALID ({exc})")
        return False
    write(f"# audit chain: valid ({verified} records verified)")
    return True
