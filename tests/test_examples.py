"""Run every example script end to end.

Examples are part of the public API surface: each must run to completion
and print its expected milestones. Running them as subprocesses keeps them
honest — no test-only imports or fixtures can leak in.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

_EXPECTED_MILESTONES = {
    "quickstart.py": [
        "PALAEMON instance up",
        "Application attested and configured",
        "Restart verified the volume tag",
    ],
    "ml_pipeline.py": [
        "produced model #3",
        "run 4 refused",
        "DETECTED: file system tag mismatch",
        "encrypted at rest",
    ],
    "secure_update.py": [
        "v2 rollout: board approved",
        "blocked at the board",
        "vetoed update",
        "disabled downstream automatically",
        "board approved the CA update",
    ],
    "managed_cloud.py": [
        "CA refuses to certify",
        "Clone attempt",
        "Database rollback on restart",
        "0 plaintext hits",
    ],
    "federation_failover.py": [
        "Federation meshed",
        "fetched MODEL_KEY",
        "backup promoted",
        "permanently fenced: True",
    ],
    "faas_coldstart.py": [
        "FaaS burst",
        "palaemon",
        "close to the unattested floor",
    ],
}


def test_every_example_has_milestones():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(_EXPECTED_MILESTONES)


@pytest.mark.parametrize("script,milestones",
                         sorted(_EXPECTED_MILESTONES.items()))
def test_example_runs(script, milestones):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300,
        cwd=EXAMPLES_DIR.parent)
    assert result.returncode == 0, result.stderr
    for milestone in milestones:
        assert milestone in result.stdout, (
            f"{script} did not print {milestone!r}; output:\n"
            f"{result.stdout}")
