"""Paper-style table rendering and paper-vs-measured comparison rows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render an aligned plain-text table (what the benches print)."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[index])
                           for index, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[index])
                               for index, cell in enumerate(row)))
    return "\n".join(lines)


def _render(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4g}"
    return str(cell)


@dataclass
class PaperComparison:
    """One paper-vs-measured row with a tolerance check."""

    metric: str
    paper_value: float
    measured_value: float
    unit: str = ""
    rel_tolerance: float = 0.25

    @property
    def ratio(self) -> float:
        if self.paper_value == 0:
            return float("inf") if self.measured_value else 1.0
        return self.measured_value / self.paper_value

    @property
    def within_tolerance(self) -> bool:
        return abs(self.ratio - 1.0) <= self.rel_tolerance

    def row(self) -> list:
        return [self.metric, self.paper_value, self.measured_value,
                self.unit, f"{self.ratio:.2f}x",
                "ok" if self.within_tolerance else "DIVERGES"]


def paper_vs_measured(comparisons: Sequence[PaperComparison],
                      title: str) -> str:
    """Render a paper-vs-measured table (the EXPERIMENTS.md row format)."""
    return format_table(
        ["metric", "paper", "measured", "unit", "ratio", "status"],
        [comparison.row() for comparison in comparisons],
        title=title)
