"""Engine determinism: identical inputs, byte-identical output."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.engine import Analyzer, max_severity
from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.report import render_json, render_text
from repro.core.policy import ImportSpec, SecurityPolicy
from repro.core.secrets import SecretKind, SecretSpec

from tests.analysis import fixtures

policy_names = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "epsilon"])
secret_names = st.sampled_from(
    ["API_KEY", "DB_PASSWORD", "TLS_CERT", "MODEL_KEY"])


@st.composite
def policy_sets(draw):
    """Small random policy sets: secrets, exports, imports, maybe argv."""
    names = draw(st.lists(policy_names, min_size=1, max_size=3,
                          unique=True))
    policies = {}
    for name in names:
        secrets = [
            SecretSpec(name=secret, kind=SecretKind.RANDOM,
                       export_to=tuple(draw(st.lists(
                           policy_names, max_size=2, unique=True))))
            for secret in draw(st.lists(secret_names, max_size=2,
                                        unique=True))]
        imports = [
            ImportSpec(from_policy=draw(policy_names),
                       secret_name=draw(secret_names))
            for _ in range(draw(st.integers(min_value=0, max_value=2)))]
        services = []
        if draw(st.booleans()):
            command = ["python", "/app.py"]
            if draw(st.booleans()):
                command.append("--key=$$PALAEMON$API_KEY$$")
            services.append(fixtures.service(command=command))
        policies[name] = SecurityPolicy(
            name=name, services=services, secrets=secrets, imports=imports)
    return policies


class TestDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(policy_sets())
    def test_policy_lint_output_byte_identical(self, policies):
        first = render_json(Analyzer().analyze_policy_set(policies))
        second = render_json(Analyzer().analyze_policy_set(policies))
        assert first == second

    def test_repo_lint_output_byte_identical(self):
        first = render_json(Analyzer().analyze_repo())
        second = render_json(Analyzer().analyze_repo())
        assert first == second

    def test_findings_order_is_independent_of_input_order(self):
        policies = fixtures.cycle_set()
        reversed_policies = dict(reversed(list(policies.items())))
        assert (Analyzer().analyze_policy_set(policies)
                == Analyzer().analyze_policy_set(reversed_policies))

    def test_sort_findings_dedupes(self):
        finding = Finding(code="PAL001", severity=Severity.ERROR,
                          subject="p", message="dup", line=None)
        assert sort_findings([finding, finding]) == [finding]


class TestReporters:
    def test_clean_text_report(self):
        assert render_text([]) == "palint: clean (0 findings)\n"

    def test_text_report_includes_hint_and_summary(self):
        finding = Finding(code="PAL001", severity=Severity.CRITICAL,
                          subject="weak", message="too weak",
                          hint="raise it")
        text = render_text([finding])
        assert "weak: CRITICAL [PAL001] too weak" in text
        assert "hint: raise it" in text
        assert "palint: 1 critical" in text

    def test_json_report_shape(self):
        import json
        finding = Finding(code="SRC102", severity=Severity.WARNING,
                          subject="src/x.py", message="bare", line=3)
        document = json.loads(render_json([finding], suppressed=2))
        assert document["summary"] == {
            "total": 1, "suppressed": 2, "by_severity": {"WARNING": 1}}
        assert document["findings"][0]["code"] == "SRC102"
        assert document["findings"][0]["line"] == 3

    def test_suppressed_count_in_text_summary(self):
        assert "(2 suppressed by baseline)" in render_text([], suppressed=2)


class TestSeverity:
    def test_parse_accepts_names(self):
        assert Severity.parse("critical") is Severity.CRITICAL
        assert Severity.parse("WARNING") is Severity.WARNING

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            Severity.parse("fatal")

    def test_max_severity(self):
        low = Finding(code="A", severity=Severity.INFO, subject="s",
                      message="m")
        high = Finding(code="B", severity=Severity.ERROR, subject="s",
                       message="m")
        assert max_severity([low, high]) is Severity.ERROR
        assert max_severity([]) is None
