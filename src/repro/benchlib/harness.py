"""Experiment drivers: offered-rate and concurrency sweeps.

Every throughput/latency figure in the paper is one of two shapes:
an *open-loop rate sweep* (wrk2/memtier style: fix the offered rate, measure
latency until it spikes) or a *closed-loop concurrency sweep* (parallel
starts in Fig 9). These helpers run either shape against a fresh server per
point so queues do not leak between points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Sequence, Tuple

from repro.crypto.primitives import DeterministicRandom
from repro.sim.core import Event, Simulator
from repro.sim.metrics import ThroughputLatencyPoint, find_knee
from repro.sim.workload import run_closed_loop, run_open_loop

#: Builds a fresh (simulator, request-factory) pair for one sweep point.
SetupFn = Callable[[Simulator], Callable[[int], Generator[Event, Any, Any]]]


@dataclass
class ExperimentResult:
    """A named throughput/latency curve."""

    name: str
    points: List[ThroughputLatencyPoint] = field(default_factory=list)

    def knee(self, latency_limit: float) -> float:
        """Highest throughput with mean latency under ``latency_limit``."""
        return find_knee(self.points, latency_limit)

    def peak_rate(self) -> float:
        return max(point.achieved_rate for point in self.points)

    def latency_at_lowest_load(self) -> float:
        return self.points[0].latency.mean

    def rows(self) -> List[Tuple[float, float, float]]:
        """(offered, achieved, mean-latency-ms) rows for table rendering."""
        return [(point.offered_rate, point.achieved_rate,
                 point.latency.mean * 1e3) for point in self.points]


def rate_sweep(name: str, setup: SetupFn, rates: Sequence[float],
               duration: float = 2.0,
               seed: bytes = b"rate-sweep") -> ExperimentResult:
    """Open-loop sweep: one fresh simulator + server per offered rate."""
    result = ExperimentResult(name=name)
    for index, rate in enumerate(rates):
        simulator = Simulator()
        factory = setup(simulator)
        rng = DeterministicRandom(seed + str(index).encode())
        point = run_open_loop(simulator, rate, factory, rng, duration)
        result.points.append(point)
    return result


def concurrency_sweep(name: str, setup: SetupFn,
                      concurrencies: Sequence[int],
                      duration: float = 2.0) -> ExperimentResult:
    """Closed-loop sweep: one fresh simulator + server per concurrency."""
    result = ExperimentResult(name=name)
    for concurrency in concurrencies:
        simulator = Simulator()
        factory = setup(simulator)
        point = run_closed_loop(simulator, concurrency, factory, duration)
        result.points.append(point)
    return result


def geometric_rates(low: float, high: float, points: int) -> List[float]:
    """A geometric ladder of offered rates from ``low`` to ``high``."""
    if points < 2:
        raise ValueError("need at least two points")
    ratio = (high / low) ** (1.0 / (points - 1))
    return [low * ratio ** i for i in range(points)]
