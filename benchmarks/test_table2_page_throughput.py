"""Table II — enclave page-operation throughput.

Regenerates the four components (bookkeeping, eviction, measurement,
addition) by timing the simulated loader over a fixed byte volume, and
checks the headline relation: measurement is ~an order of magnitude slower
than everything else.
"""

from repro import calibration
from repro.benchlib.tables import PaperComparison, format_table, paper_vs_measured
from repro.sim.core import Simulator
from repro.tee.epc import EnclavePageCache
from repro.tee.image import build_image
from repro.tee.loader import EnclaveLoader, MeasurementScope

from benchmarks.conftest import run_once

_VOLUME_MB = 64


def _measure_component_throughputs():
    """Time each component over a 64 MB enclave; return MB/s per component."""
    image = build_image("table2", code_size=calibration.MB,
                        data_size=0,
                        heap_bytes=(_VOLUME_MB - 1) * calibration.MB)
    sim = Simulator()
    epc = EnclavePageCache(sim, size_bytes=256 * calibration.MB,
                           usable_fraction=1.0)
    loader = EnclaveLoader(sim, epc)

    def main():
        report = yield sim.process(
            loader.load(image, scope=MeasurementScope.ALL_PAGES))
        return report

    report = sim.run_process(main())
    total_mb = image.total_bytes / calibration.MB
    # Eviction needs an over-committed EPC: estimate from a forced eviction.
    forced = EnclaveLoader.estimate(image, MeasurementScope.ALL_PAGES,
                                    evicted_bytes=image.total_bytes)
    return {
        "Bookkeeping": total_mb / report.bookkeeping_seconds,
        "Eviction": total_mb / forced.eviction_seconds,
        "Measurement": total_mb / report.measurement_seconds,
        "Addition": total_mb / report.addition_seconds,
    }


def test_table2_page_throughput(benchmark):
    measured = run_once(benchmark, _measure_component_throughputs)
    paper = {
        "Bookkeeping": 1_292.0,
        "Eviction": 1_219.0,
        "Measurement": 148.0,
        "Addition": 2_853.0,
    }
    comparisons = [PaperComparison(name, paper[name], measured[name],
                                   unit="MB/s", rel_tolerance=0.10)
                   for name in paper]
    print()
    print(paper_vs_measured(comparisons,
                            title="Table II: page-operation throughput"))
    for comparison in comparisons:
        assert comparison.within_tolerance, comparison.metric

    # The paper's headline: measuring is about an order of magnitude slower
    # than evicting or adding pages.
    assert measured["Eviction"] / measured["Measurement"] > 5
    assert measured["Addition"] / measured["Measurement"] > 10
    assert measured["Bookkeeping"] / measured["Measurement"] > 5
