"""Local reports and the quoting enclave.

Attestation data flow, as in §IV-A of the paper: an application enclave asks
the platform's *quoting enclave* for a report binding its MRENCLAVE and some
caller-chosen report data (PALAEMON puts the hash of a freshly generated TLS
public key there). The quoting enclave signs the report with the platform's
attestation key, producing a *quote* that a remote verifier — PALAEMON or
IAS — checks against the known attestation public key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.primitives import sha256
from repro.crypto.signatures import KeyPair, PublicKey
from repro.errors import QuoteError
from repro.tee.enclave import Enclave, ExecutionMode


@dataclass(frozen=True)
class Report:
    """A local attestation report (unsigned; platform-local trust)."""

    mrenclave: bytes
    platform_id: bytes
    report_data: bytes
    debug: bool = False

    def to_bytes(self) -> bytes:
        return (b"report-v1" + self.mrenclave + self.platform_id
                + len(self.report_data).to_bytes(4, "big") + self.report_data
                + (b"\x01" if self.debug else b"\x00"))


@dataclass(frozen=True)
class Quote:
    """A signed report, verifiable with the platform attestation key."""

    report: Report
    signature: bytes
    attestation_key: PublicKey

    def verify(self) -> None:
        """Check the quote's signature; raises :class:`QuoteError`.

        Note this only proves the quote came from *a* platform holding the
        attestation key — binding that key to a genuine platform is the job
        of IAS (``repro.tee.ias``) or of a verifier with a platform registry.
        """
        from repro.crypto.signatures import verify_signature

        if not verify_signature(self.attestation_key,
                                self.report.to_bytes(), self.signature):
            raise QuoteError("quote signature invalid")


class QuotingEnclave:
    """The platform's quoting enclave: issues signed quotes.

    Refuses to quote enclaves that are not running in hardware mode —
    emulation mode has no hardware root of trust, exactly like SCONE's
    simulation mode cannot be remotely attested.
    """

    def __init__(self, platform_id: bytes,
                 attestation_keys: KeyPair) -> None:
        self.platform_id = platform_id
        self._keys = attestation_keys
        self.quotes_issued = 0

    @property
    def attestation_public_key(self) -> PublicKey:
        return self._keys.public

    def create_report(self, enclave: Enclave, report_data: bytes) -> Report:
        """Create a local report for ``enclave``."""
        if len(report_data) > 64:
            # Real SGX limits REPORTDATA to 64 bytes; callers hash into it.
            report_data = sha256(report_data)
        return Report(mrenclave=enclave.mrenclave,
                      platform_id=self.platform_id,
                      report_data=report_data)

    def quote(self, enclave: Enclave, report_data: bytes) -> Quote:
        """Produce a signed quote for ``enclave``."""
        if enclave.mode is not ExecutionMode.HARDWARE:
            raise QuoteError(
                f"cannot quote enclave {enclave.image.name!r}: "
                f"mode {enclave.mode.value} has no hardware root of trust")
        if enclave.destroyed:
            raise QuoteError("cannot quote a destroyed enclave")
        report = self.create_report(enclave, report_data)
        signature = self._keys.sign(report.to_bytes())
        self.quotes_issued += 1
        return Quote(report=report, signature=signature,
                     attestation_key=self._keys.public)
