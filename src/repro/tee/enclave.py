"""Running enclaves: execution modes and transition costs.

An :class:`Enclave` is an image loaded on a platform. Code "inside" the
enclave charges enclave-transition costs per OCALL (syscall), EPC paging
penalties when its footprint exceeds the cache, and — depending on the
platform's microcode — the L1-flush penalty on every exit that explains the
post-Foreshadow throughput drop in Fig 14.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Generator, Optional

from repro import calibration
from repro.errors import EnclaveError
from repro.sim.core import Event, Simulator
from repro.tee.image import EnclaveImage


class ExecutionMode(enum.Enum):
    """How an application runs (the paper's evaluation variants)."""

    #: No SGX, no shields: plain process.
    NATIVE = "native"
    #: SCONE emulation mode: shields active, no SGX hardware costs.
    EMULATED = "emu"
    #: Real SGX hardware: transitions, paging, microcode penalties.
    HARDWARE = "hw"


_enclave_ids = itertools.count(1)


class Enclave:
    """A loaded enclave instance on a platform."""

    def __init__(self, platform: "Any", image: EnclaveImage,
                 mode: ExecutionMode = ExecutionMode.HARDWARE) -> None:
        self.platform = platform
        self.image = image
        self.mode = mode
        self.enclave_id = next(_enclave_ids)
        self.mrenclave = image.mrenclave()
        self.destroyed = False
        self.ocall_count = 0
        #: Enclave-private memory (never visible to the untrusted side).
        self.private_memory: dict = {}

    @property
    def simulator(self) -> Simulator:
        return self.platform.simulator

    def _check_alive(self) -> None:
        if self.destroyed:
            raise EnclaveError(
                f"enclave {self.image.name!r} has been destroyed")

    def transition_cost(self) -> float:
        """Cost of one enclave exit+re-entry in the current mode."""
        if self.mode is ExecutionMode.NATIVE:
            return 0.0
        if self.mode is ExecutionMode.EMULATED:
            return calibration.EMU_TRANSITION_SECONDS
        return self.platform.microcode.enclave_exit_seconds

    def ocall(self, syscall_seconds: float = 0.0,
              copied_bytes: int = 0) -> Generator[Event, Any, None]:
        """Perform one shielded syscall (OCALL).

        Charges the enclave transition, the syscall-shield argument
        copy/check, and the host syscall time itself.
        """
        self._check_alive()
        self.ocall_count += 1
        cost = syscall_seconds
        if self.mode is not ExecutionMode.NATIVE:
            cost += calibration.SYSCALL_SHIELD_SECONDS
            cost += self.transition_cost()
            # Copying arguments out and results back in costs per byte.
            cost += copied_bytes * 0.2e-9
        yield self.simulator.timeout(cost)

    def compute(self, cpu_seconds: float,
                touched_bytes: Optional[int] = None,
                ) -> Generator[Event, Any, None]:
        """Run a CPU burst inside the enclave.

        In hardware mode, a footprint exceeding the EPC adds paging cost
        proportional to the touched bytes (Vault / MariaDB behaviour).
        """
        self._check_alive()
        cost = cpu_seconds
        if self.mode is ExecutionMode.HARDWARE:
            touched = (touched_bytes if touched_bytes is not None
                       else min(self.image.total_bytes, calibration.MB))
            cost += self.platform.epc.fault_penalty_seconds(
                self.image.total_bytes, touched)
        yield self.simulator.timeout(cost)

    def destroy(self) -> None:
        """Tear down the enclave and release its EPC pages."""
        if self.destroyed:
            return
        self.destroyed = True
        if self.mode is ExecutionMode.HARDWARE:
            self.platform.epc.free(self.image.total_bytes)
