"""PALAEMON's encrypted policy database.

The paper embeds an encrypted SQLite inside the PALAEMON enclave (§IV); here
the database is an encrypted, integrity-protected key/value store persisted
to an untrusted block store. Everything PALAEMON must remember lives in it:
policies, materialized secrets, expected file-system tags, per-service
clean-exit flags — and the **version number** ``v`` that pairs with the
hardware monotonic counter ``c`` in the rollback protocol (Fig 6).

Reads are served from enclave memory; *updates* commit to disk, which is why
tag updates cost ~6x tag reads (Fig 11 left). To keep that commit cheap the
database is persisted as **dirty-table segments**: each table seals to its
own blob under the DB key, and a sealed manifest binds every segment hash to
the database version. A tag update therefore re-encrypts only the tags
table, not the whole document. Stores written by older builds as a single
monolithic blob are loaded transparently and migrated to segments on the
next flush.

``commit()`` adds **group-commit batching**: concurrent committers inside
one disk-commit window coalesce into a single :meth:`DiskModel.commit`,
with one leader flushing the dirty segments and waiters sharing its
completion event (the classic write-ahead-log group commit).
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro import calibration
from repro.crypto.primitives import DeterministicRandom, sha256
from repro.crypto.symmetric import SecretBox
from repro.errors import IntegrityError, PolicyValidationError
from repro.fs.blockstore import BlockStore
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.core import Event, Simulator
from repro.sim.resources import DiskModel

#: Pre-segmentation builds persisted the whole document at this path.
_DB_LEGACY_PATH = "/palaemon.db"
_MANIFEST_PATH = "/palaemon.db.manifest"
_SEGMENT_PREFIX = "/palaemon.db.seg/"

_MISSING = object()

#: Disk commit latency calibrated against Fig 11: a tag update (commit
#: included) takes ~27 ms vs ~4.5 ms for a read.
_COMMIT_LATENCY_SECONDS = (calibration.TAG_UPDATE_LATENCY_SECONDS
                           - calibration.TAG_READ_LATENCY_SECONDS)


def _segment_path(table: str) -> str:
    return _SEGMENT_PREFIX + table


def _segment_ad(table: str) -> bytes:
    # Bind each segment to its table name so blobs cannot be swapped
    # between tables by the untrusted store.
    return b"palaemon-db-segment:" + table.encode()


class PolicyStore:
    """An encrypted, segment-persisted database with an explicit version."""

    def __init__(self, simulator: Simulator, store: BlockStore,
                 db_key: bytes, rng: DeterministicRandom,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.simulator = simulator
        self.store = store
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._box = SecretBox(db_key, rng.fork(b"db-nonces"))
        self.disk = DiskModel(simulator, _COMMIT_LATENCY_SECONDS,
                              name="palaemon-db-disk")
        self._data: Dict[str, Any] = {"version": 0, "tables": {}}
        # Dirty tracking: which tables (and whether the version) changed
        # since the last flush; only those are re-sealed and rewritten.
        self._dirty_tables: Set[str] = set()
        self._meta_dirty = False
        self._segment_hashes: Dict[str, bytes] = {}
        self._keys_cache: Dict[str, List[str]] = {}
        # Group commit: a monotonically increasing mutation ticket, the
        # active-leader flag, and the queue of (ticket, event) waiters.
        self._mutations = 0
        self._committer_active = False
        self._commit_waiters: List[Tuple[int, Event]] = []
        self._segmented = True
        if store.exists(_MANIFEST_PATH):
            self._load_segmented()
        elif store.exists(_DB_LEGACY_PATH):
            self._load_legacy_monolithic()

    # -- persistence -----------------------------------------------------

    def _load_segmented(self) -> None:
        sealed = self.store.read(_MANIFEST_PATH)
        try:
            payload = self._box.open(sealed,
                                     associated_data=b"palaemon-db-manifest")
        except IntegrityError:
            raise IntegrityError(
                "policy database manifest failed integrity "
                "verification") from None
        manifest = pickle.loads(payload)
        tables: Dict[str, Any] = {}
        hashes: Dict[str, bytes] = {}
        for table, expected_hash in sorted(manifest["segments"].items()):
            blob = self.store.read(_segment_path(table))
            if sha256(blob) != expected_hash:
                # A swapped or stale segment: its hash no longer matches
                # what the sealed manifest committed to.
                raise IntegrityError(
                    f"policy database segment {table!r} does not match "
                    f"the sealed manifest")
            try:
                segment = self._box.open(
                    blob, associated_data=_segment_ad(table))
            except IntegrityError:
                raise IntegrityError(
                    f"policy database segment {table!r} failed integrity "
                    f"verification") from None
            tables[table] = pickle.loads(segment)
            hashes[table] = expected_hash
        self._data = {"version": manifest["version"], "tables": tables}
        self._segment_hashes = hashes

    def _load_legacy_monolithic(self) -> None:
        """Load a pre-segmentation whole-document blob (migration path).

        Every table is marked dirty so the next flush rewrites the store
        in segmented form and retires the monolithic blob.
        """
        sealed = self.store.read(_DB_LEGACY_PATH)
        try:
            payload = self._box.open(sealed, associated_data=b"palaemon-db")
        except IntegrityError:
            raise IntegrityError(
                "policy database failed integrity verification") from None
        self._data = pickle.loads(payload)
        self._dirty_tables = set(self._data["tables"])
        self._meta_dirty = True

    def _flush(self) -> None:
        """Reseal and rewrite only the dirty segments plus the manifest."""
        if not self._segmented:
            self._flush_legacy_monolithic()
            return
        if not self._dirty_tables and not self._meta_dirty:
            return
        bytes_written = 0
        for table in sorted(self._dirty_tables):
            payload = pickle.dumps(self._data["tables"][table])
            blob = self._box.seal(payload,
                                  associated_data=_segment_ad(table))
            self.store.write(_segment_path(table), blob)
            self._segment_hashes[table] = sha256(blob)
            bytes_written += len(blob)
        manifest_payload = pickle.dumps({
            "version": self._data["version"],
            "segments": dict(sorted(self._segment_hashes.items())),
        })
        manifest_blob = self._box.seal(
            manifest_payload, associated_data=b"palaemon-db-manifest")
        self.store.write(_MANIFEST_PATH, manifest_blob)
        bytes_written += len(manifest_blob)
        if self.store.exists(_DB_LEGACY_PATH):
            # Migration complete: the segmented form is now authoritative.
            self.store.delete(_DB_LEGACY_PATH)
        self._dirty_tables.clear()
        self._meta_dirty = False
        self.telemetry.inc("palaemon_db_segment_bytes_written",
                           amount=bytes_written)

    def _flush_legacy_monolithic(self) -> None:
        """Whole-document flush, kept only for migration/benchmark use."""
        payload = pickle.dumps(self._data)
        self.store.write(_DB_LEGACY_PATH,
                         self._box.seal(payload,
                                        associated_data=b"palaemon-db"))
        self._dirty_tables.clear()
        self._meta_dirty = False

    def use_legacy_monolithic_format(self) -> None:
        """Persist as one whole-document blob (pre-segmentation format).

        Exists so benchmarks and migration tests can produce stores in the
        old format; the segmented path is the default everywhere else.
        """
        self._segmented = False

    def commit(self) -> Generator[Event, Any, None]:
        """Durably persist the database (simulated disk latency).

        Group commit: the first caller becomes the *leader* — it flushes
        the dirty segments and pays one :meth:`DiskModel.commit`. Callers
        arriving while a commit is in flight enqueue as *waiters*; any
        waiter whose mutations were captured by the leader's flush shares
        the leader's completion, so N concurrent tag updates coalesce into
        a single disk commit. A waiter whose mutations arrived after the
        flush is promoted to lead the next batch. If the disk commit
        fails, every queued waiter fails with the same error — none of
        their mutations became durable.
        """
        while True:
            if self._committer_active:
                ticket = self._mutations
                gate = self.simulator.event()
                self._commit_waiters.append((ticket, gate))
                role = yield gate
                if role == "durable":
                    return
                continue  # promoted: lead the next batch
            self._committer_active = True
            try:
                self._flush()
                flushed_at = self._mutations
                yield self.simulator.process(self.disk.commit())
            except BaseException as exc:
                self._committer_active = False
                waiters, self._commit_waiters = self._commit_waiters, []
                for _ticket, gate in waiters:
                    gate.fail(exc)
                raise
            self._committer_active = False
            self.telemetry.inc("palaemon_db_commits_total")
            durable = [gate for ticket, gate in self._commit_waiters
                       if ticket <= flushed_at]
            pending = [(ticket, gate) for ticket, gate in self._commit_waiters
                       if ticket > flushed_at]
            self._commit_waiters = pending
            if durable:
                self.telemetry.inc("palaemon_db_commits_coalesced_total",
                                   amount=len(durable))
                self.telemetry.audit("db.commit",
                                     batch=1 + len(durable),
                                     coalesced=len(durable))
            for gate in durable:
                gate.succeed("durable")
            if pending:
                _ticket, gate = pending.pop(0)
                gate.succeed("lead")
            return

    def commit_instant(self) -> None:
        """Persist without simulating latency (functional paths)."""
        self._flush()

    # -- version (rollback protocol) -----------------------------------------

    @property
    def version(self) -> int:
        return self._data["version"]

    def set_version(self, version: int) -> None:
        if version < self._data["version"]:
            # A typed error, not a bare ValueError: callers routing errors
            # over the REST layer map exception classes to stable codes,
            # and a decreasing version is a policy-integrity refusal.
            raise PolicyValidationError(
                f"database version must not decrease "
                f"({version} < {self._data['version']})")
        self._data["version"] = version
        self._meta_dirty = True
        self._mutations += 1

    # -- tables ------------------------------------------------------------

    def table(self, name: str) -> Dict[str, Any]:
        """A named table (a dict); created on first use."""
        return self._data["tables"].setdefault(name, {})

    def put(self, table: str, key: str, value: Any) -> None:
        self.table(table)[key] = value
        self._mark_dirty(table)

    def get(self, table: str, key: str, default: Any = None) -> Any:
        return self.table(table).get(key, default)

    def delete(self, table: str, key: str) -> bool:
        """Remove ``key``; returns whether it existed.

        Only an actual removal dirties the table — deleting a missing key
        must not force a segment rewrite on the next flush.
        """
        removed = self.table(table).pop(key, _MISSING) is not _MISSING
        if removed:
            self._mark_dirty(table)
        return removed

    def touch(self, table: str) -> None:
        """Mark ``table`` dirty after an in-place mutation of a value.

        ``put``/``delete`` track dirtiness themselves, but callers that
        mutate a stored object directly (e.g. flipping a state flag) must
        call this so the segment is rewritten on the next flush.
        """
        self.table(table)
        self._mark_dirty(table)

    def keys(self, table: str) -> list:
        cached = self._keys_cache.get(table)
        if cached is None:
            cached = sorted(self.table(table))
            self._keys_cache[table] = cached
        return list(cached)

    def __contains__(self, table_key: tuple) -> bool:
        table, key = table_key
        return key in self.table(table)

    def _mark_dirty(self, table: str) -> None:
        self._dirty_tables.add(table)
        self._keys_cache.pop(table, None)
        self._mutations += 1
