"""A ZooKeeper-like coordination service on a 3-node cluster (Fig 17b/c).

Functional semantics are real: a replicated hierarchical key/value store
where reads are served by any follower from local state and writes go
through the leader, which replicates to a quorum of followers over the
simulated network (a ZAB-flavoured single round). Shielded variants run
each node in an enclave; the paper's finding reproduced here:

- **reads** — the shielded version is consistently *better* than native
  (SCONE's memory-mapped shielded I/O beats the native stunnel sidecar's
  userspace copies);
- **writes** — native wins, because consensus multiplies the syscall and
  TLS work that shields make more expensive.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro import calibration
from repro.apps.base import SimulatedServer
from repro.errors import NetworkError
from repro.sim.core import Event, Simulator
from repro.sim.network import Site, rtt_between
from repro.tee.enclave import ExecutionMode


class _Node:
    """One cluster member holding a full replica of the tree."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.data: Dict[str, bytes] = {}
        self.zxid = 0  # last applied transaction id
        self.alive = True

    def apply(self, zxid: int, path: str, value: Optional[bytes]) -> None:
        if value is None:
            self.data.pop(path, None)
        else:
            self.data[path] = value
        self.zxid = zxid


class ZooKeeperCluster:
    """A 3-node (by default) replicated coordination service."""

    def __init__(self, simulator: Simulator,
                 mode: ExecutionMode = ExecutionMode.NATIVE,
                 nodes: int = 3, site: Site = Site.SAME_DC,
                 microcode: calibration.MicrocodeLevel = (
                     calibration.MICROCODE_POST_FORESHADOW)) -> None:
        if nodes < 3 or nodes % 2 == 0:
            raise ValueError("cluster size must be an odd number >= 3")
        self.simulator = simulator
        self.mode = mode
        self.site = site
        self.microcode = microcode
        self.nodes: List[_Node] = [_Node(i) for i in range(nodes)]
        self.leader_id = 0
        self._next_zxid = 1
        # Per-node request workers: reads scale across the cluster.
        self._read_server = SimulatedServer(
            simulator, "zk-read",
            native_peak_rps=calibration.ZOOKEEPER_NATIVE_READ_PEAK_RPS,
            mode_fractions={
                ExecutionMode.NATIVE: 1.0,
                ExecutionMode.EMULATED: (
                    calibration.ZOOKEEPER_SHIELD_READ_ADVANTAGE),
                ExecutionMode.HARDWARE: (
                    calibration.ZOOKEEPER_SHIELD_READ_ADVANTAGE),
            },
            threads=calibration.CPU_HYPERTHREADS * nodes)
        self._write_server = SimulatedServer(
            simulator, "zk-write",
            native_peak_rps=calibration.ZOOKEEPER_NATIVE_WRITE_PEAK_RPS,
            mode_fractions={
                ExecutionMode.NATIVE: 1.0,
                ExecutionMode.EMULATED: (
                    calibration.ZOOKEEPER_SHIELD_WRITE_FRACTION * 1.1),
                ExecutionMode.HARDWARE: (
                    calibration.ZOOKEEPER_SHIELD_WRITE_FRACTION),
            },
            threads=calibration.CPU_HYPERTHREADS)

    @property
    def leader(self) -> _Node:
        return self.nodes[self.leader_id]

    @property
    def quorum(self) -> int:
        return len(self.nodes) // 2 + 1

    def fail_node(self, node_id: int) -> None:
        self.nodes[node_id].alive = False
        if node_id == self.leader_id:
            survivors = [n.node_id for n in self.nodes if n.alive]
            if survivors:
                self.leader_id = survivors[0]

    # -- functional + timed operations ---------------------------------------

    def handle_read(self, path: str,
                    node_id: Optional[int] = None,
                    ) -> Generator[Event, Any, Optional[bytes]]:
        """Read from any replica's local state (no quorum round)."""
        node = self.nodes[node_id if node_id is not None else 0]
        if not node.alive:
            raise NetworkError(f"node {node.node_id} is down")
        yield self.simulator.process(self._read_server.serve(self.mode))
        return node.data.get(path)

    def handle_write(self, path: str, value: Optional[bytes],
                     ) -> Generator[Event, Any, int]:
        """A write: leader proposal, quorum ack, then commit everywhere."""
        alive = [node for node in self.nodes if node.alive]
        if len(alive) < self.quorum:
            raise NetworkError("cluster has lost its quorum")
        # Leader-side processing (the contended resource under load).
        yield self.simulator.process(self._write_server.serve(self.mode))
        # One proposal round trip to the followers (parallel; one RTT).
        yield self.simulator.timeout(rtt_between(self.site, self.site)
                                     + rtt_between(Site.SAME_RACK, self.site))
        zxid = self._next_zxid
        self._next_zxid += 1
        for node in alive:
            node.apply(zxid, path, value)
        return zxid

    def read_local(self, path: str, node_id: int = 0) -> Optional[bytes]:
        """Functional read without simulated time (tests)."""
        return self.nodes[node_id].data.get(path)

    def consistent(self) -> bool:
        """All live replicas agree on data and zxid."""
        live = [node for node in self.nodes if node.alive]
        return all(node.data == live[0].data and node.zxid == live[0].zxid
                   for node in live)
