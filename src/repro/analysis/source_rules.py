"""Repo-lint rules (``SRC1xx``): deterministic AST checks on our sources.

Built on stdlib ``ast`` — unlike a substring scan, a comment or string
literal mentioning ``time.time`` does not trip these rules.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Set

from repro.analysis.context import SourceFile
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

#: Packages whose behaviour must be a pure function of the seed: the
#: simulator, the telemetry that records simulated time, and this
#: analyzer itself (lint output is asserted byte-identical across runs).
DETERMINISTIC_PACKAGES = ("repro.sim", "repro.obs", "repro.analysis")

#: ``time`` module attributes that read the host clock.
_WALL_CLOCK_ATTRS = frozenset((
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "localtime",
    "gmtime"))
#: ``datetime``/``date`` constructors that read the host clock.
_NOW_ATTRS = frozenset(("now", "utcnow", "today"))

_SNAKE_CASE = re.compile(r"^[a-z][a-z0-9_]*$")


def _in_deterministic_package(module: str) -> bool:
    return any(module == package or module.startswith(package + ".")
               for package in DETERMINISTIC_PACKAGES)


@rule("SRC101", "wall clock in deterministic package", scope="source",
      severity=Severity.ERROR,
      hint="derive every timestamp from the simulator clock")
def check_wall_clock(source: SourceFile) -> Iterator[Finding]:
    if not _in_deterministic_package(source.module):
        return
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "time":
                    yield _wall_clock_finding(
                        source, node.lineno,
                        f"imports the 'time' module (as "
                        f"{alias.asname or alias.name!r})")
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "time":
                names = ", ".join(alias.name for alias in node.names)
                yield _wall_clock_finding(
                    source, node.lineno,
                    f"imports {names} from the 'time' module")
        elif isinstance(node, ast.Call):
            target = node.func
            if not isinstance(target, ast.Attribute):
                continue
            value = target.value
            if (target.attr in _WALL_CLOCK_ATTRS
                    and isinstance(value, ast.Name)
                    and value.id == "time"):
                yield _wall_clock_finding(
                    source, node.lineno, f"calls time.{target.attr}()")
            elif target.attr in _NOW_ATTRS and _names_datetime(value):
                yield _wall_clock_finding(
                    source, node.lineno,
                    f"calls {ast.unparse(target)}()")


def _names_datetime(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in ("datetime", "date")
    if isinstance(node, ast.Attribute):
        return node.attr in ("datetime", "date")
    return False


def _wall_clock_finding(source: SourceFile, line: int,
                        what: str) -> Finding:
    return Finding(
        code="SRC101", severity=Severity.ERROR, subject=source.display,
        line=line,
        message=(f"{source.module} {what}; {_package_of(source.module)} "
                 f"must stay deterministic (same seed, same bytes)"),
        hint="use the simulator clock (simulator.now / a clock callable)")


def _package_of(module: str) -> str:
    for package in DETERMINISTIC_PACKAGES:
        if module == package or module.startswith(package + "."):
            return package
    return module


@rule("SRC102", "bare except", scope="source",
      severity=Severity.WARNING,
      hint="catch a concrete exception type (ReproError subclasses)")
def check_bare_except(source: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield Finding(
                code="SRC102", severity=Severity.WARNING,
                subject=source.display, line=node.lineno,
                message="bare 'except:' swallows SystemExit and "
                        "KeyboardInterrupt along with real errors",
                hint="name the exception class; the error taxonomy in "
                     "repro.errors is there to be caught precisely")


#: The one module allowed to catch ``Exception``: the dispatch boundary
#: turns arbitrary handler failures into error replies instead of killing
#: a serve loop (it is where every transport's requests converge).
#: Everywhere else a broad catch hides the difference between a transient
#: fault (retryable) and a security verdict (never retryable) — the exact
#: conflation that let ``RollbackGuard`` mint a fresh counter during a
#: counter outage.
_BROAD_CATCH_BOUNDARY = "repro.core.dispatch"


@rule("SRC105", "broad 'except Exception' outside the dispatch boundary",
      scope="source", severity=Severity.ERROR,
      hint="catch the concrete repro.errors type the caller can act on")
def check_broad_except(source: SourceFile) -> Iterator[Finding]:
    if source.module == _BROAD_CATCH_BOUNDARY:
        return
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if _catches_exception(node.type):
            yield Finding(
                code="SRC105", severity=Severity.ERROR,
                subject=source.display, line=node.lineno,
                message=("'except Exception' outside the dispatch boundary "
                         "conflates transient faults with security "
                         "verdicts (rollback, attestation, access "
                         "denials) and masks real failures"),
                hint="name the repro.errors class; only repro.core.dispatch "
                     "may catch Exception (to map failures to replies)")


def _catches_exception(handler_type) -> bool:
    if isinstance(handler_type, ast.Name):
        return handler_type.id == "Exception"
    if isinstance(handler_type, ast.Tuple):
        return any(_catches_exception(element)
                   for element in handler_type.elts)
    return False


#: Modules whose literal ``code`` values are wire-visible API surface:
#: the dispatch pipeline (which builds every error reply) and the REST
#: codec that carries them.
_ERROR_CODE_MODULES = frozenset(("repro.core.rest", "repro.core.dispatch"))


@rule("SRC103", "non-snake_case REST error code", scope="source",
      severity=Severity.ERROR,
      hint="REST error codes are API surface: ^[a-z][a-z0-9_]*$")
def check_rest_error_codes(source: SourceFile) -> Iterator[Finding]:
    if source.module not in _ERROR_CODE_MODULES:
        return
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg == "code":
                    yield from _check_code_value(source, keyword.value)
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (isinstance(key, ast.Constant)
                        and key.value == "code"):
                    yield from _check_code_value(source, value)


def _check_code_value(source: SourceFile,
                      value: ast.expr) -> Iterator[Finding]:
    if not isinstance(value, ast.Constant):
        return  # dynamic codes are produced by error_code(), which lints
    if not isinstance(value.value, str):
        return
    if _SNAKE_CASE.match(value.value):
        return
    yield Finding(
        code="SRC103", severity=Severity.ERROR, subject=source.display,
        line=value.lineno,
        message=(f"REST error code {value.value!r} violates the "
                 f"snake_case convention clients match on"),
        hint="use lowercase letters, digits, underscores")


@rule("SRC104", "unaudited state change", scope="source",
      severity=Severity.ERROR,
      hint="every state-changing service method must telemetry.audit()")
def check_unaudited_state_change(source: SourceFile) -> Iterator[Finding]:
    if source.module != "repro.core.service":
        return
    for node in source.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "PalaemonService":
            yield from _check_service_class(source, node)


def _check_service_class(source: SourceFile,
                         cls: ast.ClassDef) -> Iterator[Finding]:
    methods: Dict[str, ast.AST] = {}
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[item.name] = item

    facts = {name: _method_facts(body, set(methods))
             for name, body in methods.items()}

    def closure(name: str, key: str, seen: Set[str]) -> bool:
        if name in seen:
            return False
        seen.add(name)
        direct, helpers = facts[name]
        if key in direct:
            return True
        return any(closure(helper, key, seen) for helper in helpers)

    for name in sorted(methods):
        if name.startswith("_"):
            continue  # helpers are covered through their public callers
        if not closure(name, "mutates", set()):
            continue
        if closure(name, "audits", set()):
            continue
        yield Finding(
            code="SRC104", severity=Severity.ERROR, subject=source.display,
            line=methods[name].lineno,
            message=(f"PalaemonService.{name} changes persistent state "
                     f"(store put/delete/commit) but never emits an audit "
                     f"record, breaking the hash-chained audit trail"),
            hint="call self.telemetry.audit(...) on every outcome")


#: Function names allowed to serialize the whole document: the migration
#: path off the pre-segmentation format, and nothing else.
_WHOLE_DOCUMENT_ALLOWED = re.compile(r"legacy|migrat")


@rule("SRC106", "whole-database serialization on the flush path",
      scope="source", severity=Severity.ERROR,
      hint="serialize dirty per-table segments; only legacy/migration "
           "helpers may pickle the whole document")
def check_whole_document_flush(source: SourceFile) -> Iterator[Finding]:
    yield from _scan_whole_document(source, source.tree, allowed=False)


def _scan_whole_document(source: SourceFile, node: ast.AST,
                         allowed: bool) -> Iterator[Finding]:
    for child in ast.iter_child_nodes(node):
        child_allowed = allowed
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            child_allowed = (allowed
                             or bool(_WHOLE_DOCUMENT_ALLOWED.search(
                                 child.name)))
        if (not child_allowed and isinstance(child, ast.Call)
                and _is_whole_document_dump(child)):
            yield Finding(
                code="SRC106", severity=Severity.ERROR,
                subject=source.display, line=child.lineno,
                message=("pickle.dumps(self._data) serializes the whole "
                         "document per flush — the O(database) write path "
                         "the segmented store exists to avoid"),
                hint="reseal only dirty tables; whole-document "
                     "serialization belongs in *legacy*/*migration* "
                     "helpers only")
        yield from _scan_whole_document(source, child, child_allowed)


def _is_whole_document_dump(call: ast.Call) -> bool:
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "dumps"
            and isinstance(func.value, ast.Name)
            and func.value.id == "pickle"):
        return False
    return any(isinstance(arg, ast.Attribute) and arg.attr == "_data"
               and isinstance(arg.value, ast.Name) and arg.value.id == "self"
               for arg in call.args)


#: The transport codecs: every request they carry must go through the
#: dispatch pipeline, never straight into ``PalaemonService`` methods —
#: a direct call skips admission control, auth, and the uniform error
#: mapping the CIF guarantees depend on.
_TRANSPORT_MODULES = frozenset((
    "repro.core.rest", "repro.core.federation", "repro.core.failover",
    "repro.core.client"))

#: ``PalaemonService`` operation methods (the registry's handlers own
#: these calls; transports do not).
_SERVICE_OPERATION_METHODS = frozenset((
    "create_policy", "read_policy", "update_policy", "delete_policy",
    "list_policies", "attest_application", "get_tag_instant",
    "update_tag_instant", "get_tag", "update_tag", "get_volume_tag",
    "update_volume_tag"))


@rule("SRC107", "direct service call from a transport module",
      scope="source", severity=Severity.ERROR,
      hint="route the request through the dispatcher "
           "(service.dispatcher.handle/dispatch/invoke)")
def check_transport_bypasses_dispatcher(source: SourceFile,
                                        ) -> Iterator[Finding]:
    if source.module not in _TRANSPORT_MODULES:
        return
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in _SERVICE_OPERATION_METHODS):
            yield Finding(
                code="SRC107", severity=Severity.ERROR,
                subject=source.display, line=node.lineno,
                message=(f"{source.module} calls PalaemonService."
                         f"{func.attr}() directly, bypassing the dispatch "
                         f"pipeline (admission control, auth, uniform "
                         f"error mapping)"),
                hint="transports are codecs: build a request dict and "
                     "hand it to the service's Dispatcher")


def _method_facts(method: ast.AST, method_names: Set[str]):
    """(facts, helpers): which primitives a method touches directly."""
    direct: Set[str] = set()
    helpers: Set[str] = set()
    for node in ast.walk(method):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        owner = func.value
        if (isinstance(owner, ast.Attribute)
                and isinstance(owner.value, ast.Name)
                and owner.value.id == "self"):
            if (owner.attr == "store"
                    and func.attr in ("put", "delete", "touch", "commit",
                                      "commit_instant")):
                direct.add("mutates")
            elif owner.attr == "telemetry" and func.attr == "audit":
                direct.add("audits")
        elif isinstance(owner, ast.Name) and owner.id == "self":
            if func.attr in method_names:
                helpers.add(func.attr)
    return direct, helpers
