"""Measurement helpers: latency recorders, throughput meters, percentiles."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of ``samples`` (fraction in [0, 1])."""
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1 - weight) + ordered[upper] * weight


@dataclass
class LatencySummary:
    """Summary statistics for a batch of latencies (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean * 1e3:.3f}ms "
                f"p50={self.p50 * 1e3:.3f}ms p95={self.p95 * 1e3:.3f}ms "
                f"p99={self.p99 * 1e3:.3f}ms max={self.maximum * 1e3:.3f}ms")


def summarize(samples: Sequence[float],
              name: str = "samples") -> LatencySummary:
    """The canonical sample -> :class:`LatencySummary` reduction.

    Every consumer of percentile statistics (`LatencyRecorder`, the
    ``repro.obs`` histograms, benchmark exports) goes through this one
    function so the percentile math is defined exactly once.
    """
    if not samples:
        raise ValueError(f"{name!r} has no samples")
    return LatencySummary(
        count=len(samples),
        mean=sum(samples) / len(samples),
        p50=percentile(samples, 0.50),
        p95=percentile(samples, 0.95),
        p99=percentile(samples, 0.99),
        minimum=min(samples),
        maximum=max(samples),
    )


def summary_to_dict(summary: LatencySummary) -> Dict[str, float]:
    """Flatten a :class:`LatencySummary` into JSON-serializable primitives."""
    return {
        "count": summary.count,
        "mean": summary.mean,
        "p50": summary.p50,
        "p95": summary.p95,
        "p99": summary.p99,
        "min": summary.minimum,
        "max": summary.maximum,
    }


class LatencyRecorder:
    """Collects request latencies and summarizes them."""

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self.samples: List[float] = []

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        self.samples.append(seconds)

    def __len__(self) -> int:
        return len(self.samples)

    def summary(self) -> LatencySummary:
        return summarize(self.samples, name=self.name)

    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)


class ThroughputMeter:
    """Counts completed operations over a virtual-time window."""

    def __init__(self, name: str = "throughput") -> None:
        self.name = name
        self.completed = 0
        self._start: Optional[float] = None
        self._end: Optional[float] = None

    def start(self, now: float) -> None:
        self._start = now

    def record(self, now: float) -> None:
        if self._start is None:
            self._start = now
        self.completed += 1
        self._end = now

    def rate(self) -> float:
        """Completed operations per second of virtual time."""
        if self._start is None or self._end is None:
            return 0.0
        elapsed = self._end - self._start
        if elapsed <= 0:
            return float("inf") if self.completed else 0.0
        return self.completed / elapsed


@dataclass
class ThroughputLatencyPoint:
    """One point of a throughput/latency curve (Figs 9, 13-17)."""

    offered_rate: float
    achieved_rate: float
    latency: LatencySummary

    def __str__(self) -> str:
        return (f"offered={self.offered_rate:.1f}/s "
                f"achieved={self.achieved_rate:.1f}/s "
                f"mean={self.latency.mean * 1e3:.2f}ms "
                f"p95={self.latency.p95 * 1e3:.2f}ms")


def find_knee(points: Sequence[ThroughputLatencyPoint],
              latency_limit: float) -> float:
    """The highest achieved rate whose mean latency is under the limit.

    This is how the paper reads "X achieves N req/s before latencies spike".
    """
    best = 0.0
    for point in points:
        if point.latency.mean <= latency_limit:
            best = max(best, point.achieved_rate)
    return best


class CurveCollector:
    """Accumulates named throughput/latency curves for table rendering."""

    def __init__(self) -> None:
        self.curves: Dict[str, List[ThroughputLatencyPoint]] = {}

    def add(self, name: str, point: ThroughputLatencyPoint) -> None:
        self.curves.setdefault(name, []).append(point)

    def knee(self, name: str, latency_limit: float) -> float:
        return find_knee(self.curves[name], latency_limit)
