"""The rollback-protection protocol of Fig 6, plus single-instance
enforcement (§IV-C/D).

The protocol in full:

1. **Startup** — read the database version ``v`` and the hardware monotonic
   counter ``c``. If ``v != c`` the database is stale (a rollback) or a
   previous instance is still running: **exit**.
2. Increment ``c`` *before accepting any request*, and check the increment
   yields ``c == v + 1``. A larger value means another instance incremented
   concurrently — a cloning attack: **exit**. From here the database trails
   the counter (``v < c``), so a crash leaves the pair mismatched and any
   restart is refused until an operator intervenes (crash-as-attack).
3. **Shutdown** — drain requests, set ``v := c``, commit, exit. Counter and
   version agree again; a clean restart is possible.

The hardware counter is touched exactly twice per instance lifetime, never
per tag update — the design decision that buys 5 orders of magnitude of
tag-update throughput (Fig 10).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.store import PolicyStore
from repro.errors import ConcurrentInstanceError, StaleDatabaseError
from repro.sim.core import Event
from repro.tee.counters import PlatformCounterService


class RollbackGuard:
    """Binds a :class:`PolicyStore` to a platform monotonic counter."""

    def __init__(self, store: PolicyStore,
                 counters: PlatformCounterService, counter_id: str) -> None:
        self.store = store
        self.counters = counters
        self.counter_id = counter_id
        self.active = False

    def ensure_counter(self) -> None:
        """Create the hardware counter on first installation."""
        try:
            self.counters.read(self.counter_id)
        except Exception:
            self.counters.create(self.counter_id)

    def startup(self) -> Generator[Event, Any, None]:
        """Steps 1-2 of the protocol; raises on rollback or cloning."""
        counter_value = self.counters.read(self.counter_id)
        version = self.store.version
        if version != counter_value:
            raise StaleDatabaseError(
                f"database version {version} != monotonic counter "
                f"{counter_value}: rollback or unclean shutdown detected")
        new_value = yield self.store.simulator.process(
            self.counters.increment(self.counter_id))
        if new_value != version + 1:
            raise ConcurrentInstanceError(
                f"counter jumped to {new_value}, expected {version + 1}: "
                f"another instance is running")
        self.active = True

    def shutdown(self) -> Generator[Event, Any, None]:
        """Step 3: reconcile the version with the counter and commit."""
        if not self.active:
            return
        counter_value = self.counters.read(self.counter_id)
        self.store.set_version(counter_value)
        yield self.store.simulator.process(self.store.commit())
        self.active = False

    def crash(self) -> None:
        """Model a crash: the version update never happens.

        After a crash, ``v < c`` permanently, so :meth:`startup` refuses to
        run — consistency and freshness are preserved at the price of
        availability (the paper's crash-as-attack stance, §IV-D).
        """
        self.active = False
