"""Tests for the AEAD cipher and SecretBox."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.primitives import DeterministicRandom
from repro.crypto.symmetric import (
    AEADCipher,
    Ciphertext,
    KEY_SIZE,
    NONCE_SIZE,
    SecretBox,
    generate_key,
)
from repro.errors import IntegrityError


def make_cipher(seed=b"key-seed"):
    rng = DeterministicRandom(seed)
    return AEADCipher(rng.bytes(KEY_SIZE)), rng


class TestAEADCipher:
    def test_round_trip(self):
        cipher, rng = make_cipher()
        nonce = rng.bytes(NONCE_SIZE)
        ct = cipher.encrypt(b"hello world", nonce)
        assert cipher.decrypt(ct) == b"hello world"

    def test_ciphertext_hides_plaintext(self):
        cipher, rng = make_cipher()
        plaintext = b"very secret bytes"
        ct = cipher.encrypt(plaintext, rng.bytes(NONCE_SIZE))
        assert plaintext not in ct.body
        assert plaintext not in ct.to_bytes()

    def test_tampered_body_rejected(self):
        cipher, rng = make_cipher()
        ct = cipher.encrypt(b"data", rng.bytes(NONCE_SIZE))
        bad = Ciphertext(nonce=ct.nonce,
                         body=bytes([ct.body[0] ^ 1]) + ct.body[1:],
                         tag=ct.tag)
        with pytest.raises(IntegrityError):
            cipher.decrypt(bad)

    def test_tampered_tag_rejected(self):
        cipher, rng = make_cipher()
        ct = cipher.encrypt(b"data", rng.bytes(NONCE_SIZE))
        bad = Ciphertext(nonce=ct.nonce, body=ct.body,
                         tag=bytes([ct.tag[0] ^ 1]) + ct.tag[1:])
        with pytest.raises(IntegrityError):
            cipher.decrypt(bad)

    def test_tampered_nonce_rejected(self):
        cipher, rng = make_cipher()
        ct = cipher.encrypt(b"data", rng.bytes(NONCE_SIZE))
        bad = Ciphertext(nonce=bytes([ct.nonce[0] ^ 1]) + ct.nonce[1:],
                         body=ct.body, tag=ct.tag)
        with pytest.raises(IntegrityError):
            cipher.decrypt(bad)

    def test_wrong_key_rejected(self):
        cipher_a, rng = make_cipher(b"a")
        cipher_b, _ = make_cipher(b"b")
        ct = cipher_a.encrypt(b"data", rng.bytes(NONCE_SIZE))
        with pytest.raises(IntegrityError):
            cipher_b.decrypt(ct)

    def test_associated_data_binds(self):
        cipher, rng = make_cipher()
        ct = cipher.encrypt(b"data", rng.bytes(NONCE_SIZE),
                            associated_data=b"context-a")
        with pytest.raises(IntegrityError):
            cipher.decrypt(ct, associated_data=b"context-b")
        assert cipher.decrypt(ct, associated_data=b"context-a") == b"data"

    def test_empty_plaintext(self):
        cipher, rng = make_cipher()
        ct = cipher.encrypt(b"", rng.bytes(NONCE_SIZE))
        assert cipher.decrypt(ct) == b""

    def test_bad_key_size_rejected(self):
        with pytest.raises(ValueError):
            AEADCipher(b"short")

    def test_bad_nonce_size_rejected(self):
        cipher, _ = make_cipher()
        with pytest.raises(ValueError):
            cipher.encrypt(b"data", b"short-nonce")

    @given(st.binary(max_size=2048))
    def test_round_trip_property(self, plaintext):
        cipher, rng = make_cipher(b"hyp")
        nonce = rng.bytes(NONCE_SIZE)
        assert cipher.decrypt(cipher.encrypt(plaintext, nonce)) == plaintext

    @given(st.binary(min_size=1, max_size=512), st.integers(0, 10_000))
    def test_bit_flip_always_detected(self, plaintext, flip_seed):
        cipher, rng = make_cipher(b"flip")
        ct = cipher.encrypt(plaintext, rng.bytes(NONCE_SIZE))
        raw = bytearray(ct.to_bytes())
        position = flip_seed % (len(raw) * 8)
        raw[position // 8] ^= 1 << (position % 8)
        with pytest.raises(IntegrityError):
            cipher.decrypt(Ciphertext.from_bytes(bytes(raw)))


class TestCiphertextSerialization:
    def test_round_trip(self):
        cipher, rng = make_cipher()
        ct = cipher.encrypt(b"payload", rng.bytes(NONCE_SIZE))
        parsed = Ciphertext.from_bytes(ct.to_bytes())
        assert parsed == ct

    def test_truncated_rejected(self):
        with pytest.raises(IntegrityError):
            Ciphertext.from_bytes(b"too short")

    def test_length(self):
        cipher, rng = make_cipher()
        ct = cipher.encrypt(b"12345", rng.bytes(NONCE_SIZE))
        assert len(ct) == len(ct.to_bytes())


class TestSecretBox:
    def test_round_trip(self):
        rng = DeterministicRandom(b"box")
        box = SecretBox(generate_key(rng), rng.fork(b"nonces"))
        sealed = box.seal(b"secret")
        assert box.open(sealed) == b"secret"

    def test_distinct_nonces_per_seal(self):
        rng = DeterministicRandom(b"box")
        box = SecretBox(generate_key(rng), rng.fork(b"nonces"))
        assert box.seal(b"same") != box.seal(b"same")

    def test_associated_data(self):
        rng = DeterministicRandom(b"box")
        box = SecretBox(generate_key(rng), rng.fork(b"nonces"))
        sealed = box.seal(b"secret", associated_data=b"ad")
        with pytest.raises(IntegrityError):
            box.open(sealed)
        assert box.open(sealed, associated_data=b"ad") == b"secret"
