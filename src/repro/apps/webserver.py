"""An NGINX-like static file server (Fig 17a).

Five variants from the paper: native; PALAEMON in EMU/HW (certificates and
private key injected, served files in the clear); and "+shield" EMU/HW
where *all served files* are additionally encrypted on disk — the paper's
observation is that whole-corpus file encryption costs far more than SGX
itself on this workload.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional

from repro import calibration
from repro.apps.base import SimulatedServer
from repro.crypto.primitives import DeterministicRandom
from repro.fs.blockstore import BlockStore
from repro.fs.shield import ProtectedFileSystem
from repro.sim.core import Event, Simulator
from repro.tee.enclave import ExecutionMode


class NginxVariant(enum.Enum):
    """The five configurations of Fig 17a."""

    NATIVE = "native"
    PALAEMON_EMU = "palaemon-emu"
    PALAEMON_HW = "palaemon-hw"
    SHIELD_EMU = "emu+shield"
    SHIELD_HW = "hw+shield"

    @property
    def mode(self) -> ExecutionMode:
        if self is NginxVariant.NATIVE:
            return ExecutionMode.NATIVE
        if self in (NginxVariant.PALAEMON_EMU, NginxVariant.SHIELD_EMU):
            return ExecutionMode.EMULATED
        return ExecutionMode.HARDWARE

    @property
    def encrypts_files(self) -> bool:
        return self in (NginxVariant.SHIELD_EMU, NginxVariant.SHIELD_HW)


_VARIANT_FRACTIONS = {
    NginxVariant.NATIVE: 1.0,
    NginxVariant.PALAEMON_EMU: calibration.NGINX_PALAEMON_EMU_FRACTION,
    NginxVariant.PALAEMON_HW: calibration.NGINX_PALAEMON_HW_FRACTION,
    NginxVariant.SHIELD_EMU: calibration.NGINX_SHIELD_EMU_FRACTION,
    NginxVariant.SHIELD_HW: calibration.NGINX_SHIELD_HW_FRACTION,
}


class NginxServer(SimulatedServer):
    """Serves GET requests for files from a (possibly shielded) docroot."""

    def __init__(self, simulator: Simulator, variant: NginxVariant,
                 tls_certificate: Optional[bytes] = None,
                 tls_private_key: Optional[bytes] = None,
                 rng: Optional[DeterministicRandom] = None) -> None:
        mode_fractions = {mode: 1.0 for mode in ExecutionMode}
        super().__init__(simulator, "nginx",
                         native_peak_rps=calibration.NGINX_NATIVE_PEAK_RPS,
                         mode_fractions=mode_fractions)
        self.variant = variant
        self.tls_certificate = tls_certificate
        self.tls_private_key = tls_private_key
        self._rng = rng or DeterministicRandom(b"nginx")
        self.store = BlockStore("nginx-docroot")
        self.fs: Optional[ProtectedFileSystem] = None
        if variant.encrypts_files:
            self.fs = ProtectedFileSystem(
                self.store, self._rng.fork(b"docroot-key").bytes(32),
                self._rng.fork(b"docroot"))
        self.requests_404 = 0

    def service_seconds(self, mode: ExecutionMode) -> float:  # noqa: D401
        """Per-request time is a property of the *variant*, not just mode."""
        return (self.native_service_seconds
                / _VARIANT_FRACTIONS[self.variant])

    def publish(self, path: str, content: bytes) -> None:
        """Install a file in the docroot (encrypted in shield variants)."""
        if self.fs is not None:
            self.fs.write(path, content)
            self.fs.sync()
        else:
            self.store.write(path, content)

    def read_document(self, path: str) -> Optional[bytes]:
        try:
            if self.fs is not None:
                return self.fs.read(path)
            return self.store.read(path)
        except FileNotFoundError:
            return None

    def handle_get(self, path: str) -> Generator[Event, Any, Optional[bytes]]:
        """One GET: worker time + the (real) file lookup."""
        yield self.simulator.process(self.serve(self.variant.mode))
        content = self.read_document(path)
        if content is None:
            self.requests_404 += 1
        return content
