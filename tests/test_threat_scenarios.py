"""Systematic walkthrough of the paper's threat model (§II-A).

One test class per adversary class the paper names; each test is a concrete
attack executed against the real stack, asserted to fail at the right
layer with the right error. Where an attack is *out of scope* in the
paper (side channels, DoS, counter-rollback-capable adversaries), a test
documents the boundary instead.
"""

import pytest

from repro.core.attestation import AttestationEvidence
from repro.core.board import AccessRequest, BoardEvaluator, Verdict
from repro.core.secrets import SecretKind, SecretSpec
from repro.core.service import PalaemonService
from repro.crypto.primitives import DeterministicRandom, sha256
from repro.crypto.signatures import KeyPair
from repro.errors import (
    AccessDeniedError,
    ApprovalDeniedError,
    AttestationError,
    IntegrityError,
    MrenclaveNotPermittedError,
    SealingError,
    SignatureError,
    StaleDatabaseError,
    TagMismatchError,
)
from repro.fs.blockstore import BlockStore
from repro.runtime.scone import SconeRuntime
from repro.tee.image import build_image
from repro.tee.platform import SGXPlatform

from tests.core.conftest import Deployment


@pytest.fixture()
def deployment():
    return Deployment(seed=b"threats")


@pytest.fixture()
def runtime(deployment):
    return SconeRuntime(deployment.platform, deployment.palaemon,
                        DeterministicRandom(b"threat-runtime"))


class TestRootLevelAttacker:
    """'Services executing in untrusted environments such as clouds are
    vulnerable to attackers with root privileges.'"""

    def test_root_reads_only_ciphertext(self, deployment, runtime):
        """Root can read every byte of every volume — and learns nothing."""
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        volume = BlockStore("app-volume")
        app = runtime.launch(deployment.app_image, "ml_policy", "ml_app",
                             volume=volume)
        app.write_file("/data/pii.csv", b"alice,555-0100")
        app.exit_cleanly()
        # Root dumps both the app volume and PALAEMON's volume:
        assert volume.scan_for(b"alice") == []
        assert deployment.volume.scan_for(b"alice") == []
        key = app.config.secrets["API_KEY"]
        assert deployment.volume.scan_for(key) == []

    def test_root_cannot_modify_files_undetected(self, deployment, runtime):
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        volume = BlockStore("app-volume")
        app = runtime.launch(deployment.app_image, "ml_policy", "ml_app",
                             volume=volume)
        app.write_file("/data/config", b"threshold=10")
        app.exit_cleanly()
        raw = volume.read("/data/config")
        volume.tamper("/data/config", raw[:-1] + bytes([raw[-1] ^ 1]))
        restarted = runtime.launch(deployment.app_image, "ml_policy",
                                   "ml_app", volume=volume)
        with pytest.raises(IntegrityError):
            restarted.read_file("/data/config")

    def test_root_cannot_swap_sealed_identity_across_machines(self,
                                                              deployment):
        """Stealing the sealed identity file to another host fails."""
        stolen = BlockStore("stolen")
        stolen.restore(deployment.volume.snapshot())
        other = SGXPlatform(deployment.simulator, "attacker-host",
                            DeterministicRandom(b"attacker-host"))
        with pytest.raises(SealingError):
            PalaemonService(other, stolen, DeterministicRandom(b"x"))


class TestMaliciousSoftwareDeveloper:
    """'we cannot trust that ... software developers will neither leak nor
    modify application code' — updates need the board."""

    def test_unilateral_code_swap_fails_attestation(self, deployment,
                                                    runtime):
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        trojan = build_image("ml-engine", seed=b"with-exfiltration")
        with pytest.raises(MrenclaveNotPermittedError):
            runtime.launch(trojan, "ml_policy", "ml_app")

    def test_developer_approval_alone_insufficient(self):
        """f+1 means one Byzantine developer cannot self-approve."""
        deployment = Deployment(seed=b"dev-alone")
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        # member-0 is the compromised developer; the others reject updates.
        for name, service in deployment.approval_services.items():
            if name != "approval-member-0":
                service.decision_rule = (
                    lambda request: request.operation != "update")
        policy = deployment.make_policy()
        policy.services[0].mrenclaves.append(
            build_image("ml-engine", seed=b"trojan").mrenclave())
        with pytest.raises(ApprovalDeniedError):
            deployment.client.update_policy(deployment.palaemon, policy)


class TestMaliciousOperatorOfPalaemon:
    """'the cloud provider has full control over what code it executes and
    might try to run variants of PALAEMON that are wrongly configured or
    have modified code.'"""

    def test_no_configuration_surface(self, deployment):
        """Behaviour depends solely on the MRE: the service class exposes
        no security-relevant knobs. (We assert the invariant the design
        encodes: two instances of the same version share one MRENCLAVE
        regardless of who operates them.)"""
        other = PalaemonService(deployment.platform,
                                BlockStore("other-operator"),
                                DeterministicRandom(b"other-operator"))
        assert other.mrenclave == deployment.palaemon.mrenclave

    def test_modified_variant_has_different_identity(self, deployment):
        variant = PalaemonService(deployment.platform,
                                  BlockStore("variant"),
                                  DeterministicRandom(b"variant"),
                                  version="1.0-with-backdoor")
        assert variant.mrenclave != deployment.palaemon.mrenclave
        with pytest.raises(AttestationError):
            variant.obtain_certificate(deployment.ca)

    def test_operator_rollback_of_service_database(self, deployment):
        checkpoint = deployment.volume.snapshot()
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        deployment.stop_palaemon()
        deployment.volume.restore(checkpoint)
        reborn = PalaemonService(deployment.platform, deployment.volume,
                                 DeterministicRandom(b"reborn"),
                                 board_evaluator=deployment.evaluator)
        with pytest.raises(StaleDatabaseError):
            deployment.simulator.run_process(reborn.start())


class TestNetworkAdversary:
    """Man-in-the-middle and replay attacks on the protocols."""

    def test_mitm_cannot_hijack_attestation_session(self, deployment):
        """Swapping the TLS key in transit breaks the quote binding."""
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        honest = deployment.evidence_for("ml_policy")
        mitm_keys = KeyPair.generate(DeterministicRandom(b"mitm"), bits=512)
        hijacked = AttestationEvidence(
            quote=honest.quote, policy_name=honest.policy_name,
            service_name=honest.service_name,
            tls_public_key=mitm_keys.public)
        with pytest.raises(AttestationError, match="TLS public key"):
            deployment.palaemon.attest_application(hijacked)

    def test_approval_verdict_replay_rejected(self, deployment):
        """A verdict captured for one request cannot authorize another:
        the per-request nonce changes the signed digest."""
        service = deployment.approval_services["approval-member-0"]
        member = deployment.board.member("member-0")
        rng = DeterministicRandom(b"nonces")
        first = AccessRequest(policy_name="p", operation="update",
                              requester_fingerprint=b"\x01" * 16,
                              nonce=rng.bytes(16))
        replayed_at = AccessRequest(policy_name="p", operation="update",
                                    requester_fingerprint=b"\x01" * 16,
                                    nonce=rng.bytes(16))
        verdict = service.decide_local(first)
        verdict.verify(member.certificate)  # valid for its own request
        # Replaying against the second request: digest no longer matches.
        assert verdict.request_digest != sha256(replayed_at.to_bytes())

    def test_forged_verdict_signature_rejected(self, deployment):
        member = deployment.board.member("member-1")
        request = AccessRequest(policy_name="p", operation="update",
                                requester_fingerprint=b"\x02" * 16)
        forged = Verdict(member_name=member.name,
                         request_digest=sha256(request.to_bytes()),
                         approve=True, signature=b"\x99" * 64)
        with pytest.raises(SignatureError):
            forged.verify(member.certificate)


class TestByzantineClient:
    """'Any policy access must additionally be authorized by its policy
    board to protect against authorized but Byzantine client accesses.'"""

    def test_owner_with_hostile_board_cannot_mutate(self):
        deployment = Deployment(seed=b"byz-client")
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        for service in deployment.approval_services.values():
            service.decision_rule = (
                lambda request: request.operation == "read")
        # The legitimate owner turned hostile: reads fine, writes blocked.
        deployment.client.read_policy(deployment.palaemon, "ml_policy")
        with pytest.raises(ApprovalDeniedError):
            deployment.client.delete_policy(deployment.palaemon, "ml_policy")

    def test_certificate_required_on_top_of_board(self, deployment):
        """Board approval alone is insufficient without the owner cert."""
        from repro.core.client import PalaemonClient

        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        interloper = PalaemonClient("interloper",
                                    DeterministicRandom(b"interloper"))
        interloper.attest_instance_via_ca(deployment.palaemon,
                                          deployment.ca.root_public_key,
                                          now=deployment.simulator.now)
        # The board approves everything, yet the cert check still bites.
        with pytest.raises(AccessDeniedError):
            interloper.read_policy(deployment.palaemon, "ml_policy")


class TestScopeBoundaries:
    """Attacks the paper explicitly places out of scope — pinned down so
    the reproduction does not overclaim."""

    def test_counter_rollback_capability_defeats_protection(self,
                                                            deployment):
        """§IV-D: protection is exactly as strong as the platform counter."""
        checkpoint = deployment.volume.snapshot()
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        deployment.stop_palaemon()
        deployment.volume.restore(checkpoint)
        # The out-of-scope capability: rolling back the hardware counter.
        counter_id = deployment.palaemon.rollback_guard.counter_id
        deployment.platform.counters.rollback_for_test(counter_id, 0)
        reborn = PalaemonService(deployment.platform, deployment.volume,
                                 DeterministicRandom(b"reborn2"),
                                 board_evaluator=deployment.evaluator)
        deployment.simulator.run_process(reborn.start())  # attack succeeds
        assert reborn.list_policies() == []  # stale state now serves

    def test_emulation_mode_offers_no_attestation(self, deployment):
        """EMU mode (used for overhead comparisons) is explicitly not a
        root of trust."""
        from repro.errors import QuoteError
        from repro.tee.enclave import ExecutionMode

        enclave = deployment.platform.launch_instant(
            deployment.app_image, mode=ExecutionMode.EMULATED)
        with pytest.raises(QuoteError):
            deployment.platform.quoting_enclave.quote(enclave, b"d")
