"""Tests for hashing, HKDF, and the deterministic DRBG."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.crypto.primitives import (
    DeterministicRandom,
    constant_time_equal,
    hkdf,
    hmac_sha256,
    sha256,
)


class TestSha256:
    def test_concatenation_equivalence(self):
        assert sha256(b"ab", b"cd") == sha256(b"abcd")

    def test_known_empty_digest(self):
        assert sha256().hex() == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")

    def test_distinct_inputs_distinct_digests(self):
        assert sha256(b"a") != sha256(b"b")


class TestHmac:
    def test_key_separates(self):
        assert hmac_sha256(b"k1", b"msg") != hmac_sha256(b"k2", b"msg")

    def test_message_separates(self):
        assert hmac_sha256(b"k", b"m1") != hmac_sha256(b"k", b"m2")

    def test_multi_part_concatenation(self):
        assert hmac_sha256(b"k", b"a", b"b") == hmac_sha256(b"k", b"ab")


class TestConstantTimeEqual:
    def test_equal(self):
        assert constant_time_equal(b"same", b"same")

    def test_unequal(self):
        assert not constant_time_equal(b"same", b"diff")

    def test_length_mismatch(self):
        assert not constant_time_equal(b"short", b"longer")


class TestHkdf:
    def test_length_control(self):
        for length in (1, 16, 32, 33, 64, 100):
            assert len(hkdf(b"ikm", b"info", length)) == length

    def test_info_separates_keys(self):
        assert hkdf(b"ikm", b"a") != hkdf(b"ikm", b"b")

    def test_salt_separates_keys(self):
        assert hkdf(b"ikm", b"i", salt=b"s1") != hkdf(b"ikm", b"i", salt=b"s2")

    def test_deterministic(self):
        assert hkdf(b"ikm", b"info") == hkdf(b"ikm", b"info")

    def test_prefix_property(self):
        assert hkdf(b"ikm", b"info", 64)[:32] == hkdf(b"ikm", b"info", 32)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            hkdf(b"ikm", b"info", 0)
        with pytest.raises(ValueError):
            hkdf(b"ikm", b"info", 255 * 32 + 1)


class TestDeterministicRandom:
    def test_reproducible_from_seed(self):
        a = DeterministicRandom(b"seed")
        b = DeterministicRandom(b"seed")
        assert a.bytes(100) == b.bytes(100)

    def test_different_seeds_diverge(self):
        assert (DeterministicRandom(b"s1").bytes(32)
                != DeterministicRandom(b"s2").bytes(32))

    def test_stream_advances(self):
        rng = DeterministicRandom(b"seed")
        assert rng.bytes(32) != rng.bytes(32)

    def test_empty_seed_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRandom(b"")

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRandom(b"s").bytes(-1)

    def test_fork_independence(self):
        rng = DeterministicRandom(b"seed")
        child_a = rng.fork(b"a")
        child_b = rng.fork(b"b")
        assert child_a.bytes(32) != child_b.bytes(32)

    def test_fork_does_not_consume_parent_stream(self):
        plain = DeterministicRandom(b"seed")
        forked = DeterministicRandom(b"seed")
        forked.fork(b"child")
        assert plain.bytes(32) == forked.bytes(32)

    @given(st.integers(-1000, 1000), st.integers(0, 500))
    def test_randint_in_range(self, low, span):
        rng = DeterministicRandom(b"hyp")
        value = rng.randint(low, low + span)
        assert low <= value <= low + span

    def test_randint_invalid_range(self):
        with pytest.raises(ValueError):
            DeterministicRandom(b"s").randint(5, 4)

    def test_randint_covers_range(self):
        rng = DeterministicRandom(b"cover")
        seen = {rng.randint(0, 3) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_random_unit_interval(self):
        rng = DeterministicRandom(b"float")
        for _ in range(100):
            assert 0.0 <= rng.random() < 1.0

    def test_expovariate_mean(self):
        rng = DeterministicRandom(b"exp")
        samples = [rng.expovariate(10.0) for _ in range(5000)]
        mean = sum(samples) / len(samples)
        assert math.isclose(mean, 0.1, rel_tol=0.1)

    def test_expovariate_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            DeterministicRandom(b"s").expovariate(0.0)

    def test_choice(self):
        rng = DeterministicRandom(b"choice")
        items = ["a", "b", "c"]
        assert rng.choice(items) in items

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRandom(b"s").choice([])

    def test_shuffle_is_permutation(self):
        rng = DeterministicRandom(b"shuffle")
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity
