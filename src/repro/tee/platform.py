"""The SGX platform: ties EPC, loader, quoting, sealing, and counters together.

One :class:`SGXPlatform` corresponds to one physical machine of the paper's
cluster (Dell R330, Xeon E3-1270 v6, 128 MB EPC). Its microcode level
determines enclave-exit cost (pre-Spectre vs post-Foreshadow, Fig 14).
"""

from __future__ import annotations

from typing import Any, Generator

from repro import calibration
from repro.crypto.primitives import DeterministicRandom
from repro.crypto.signatures import KeyPair
from repro.sim.core import Event, Simulator
from repro.sim.resources import CpuPool
from repro.tee.counters import PlatformCounterService
from repro.tee.enclave import Enclave, ExecutionMode
from repro.tee.epc import EnclavePageCache
from repro.tee.image import EnclaveImage
from repro.tee.loader import EnclaveLoader, MeasurementScope
from repro.tee.quoting import QuotingEnclave
from repro.tee.sealing import SealingService


class SGXPlatform:
    """A simulated SGX-capable machine."""

    def __init__(self, simulator: Simulator, name: str,
                 rng: DeterministicRandom,
                 microcode: calibration.MicrocodeLevel = (
                     calibration.MICROCODE_POST_FORESHADOW),
                 epc_bytes: int = calibration.EPC_SIZE_DEFAULT,
                 cpu_threads: int = calibration.CPU_HYPERTHREADS) -> None:
        self.simulator = simulator
        self.name = name
        self.microcode = microcode
        self.platform_id = rng.fork(b"platform-id").bytes(16)
        self.epc = EnclavePageCache(simulator, size_bytes=epc_bytes)
        self.loader = EnclaveLoader(simulator, self.epc)
        self.cpu = CpuPool(simulator, threads=cpu_threads,
                           name=f"{name}-cpu")
        self.quoting_enclave = QuotingEnclave(
            self.platform_id, KeyPair.generate(rng.fork(b"attest-key")))
        self.sealing = SealingService(self.platform_id,
                                      rng.fork(b"fuse-key").bytes(32),
                                      rng.fork(b"seal-nonces"))
        self.counters = PlatformCounterService(simulator)
        self._rng = rng

    def launch(self, image: EnclaveImage,
               mode: ExecutionMode = ExecutionMode.HARDWARE,
               scope: MeasurementScope = MeasurementScope.CODE_ONLY,
               ) -> Generator[Event, Any, Enclave]:
        """Load and start an enclave; a process returning the instance.

        Non-hardware modes skip the EPC entirely (nothing to add or
        measure against the cache) but still pay the native process start.
        """
        if mode is ExecutionMode.HARDWARE:
            yield self.simulator.process(self.loader.load(image, scope=scope))
        yield self.simulator.process(
            self.cpu.execute(calibration.NATIVE_START_CPU_SECONDS))
        return Enclave(self, image, mode=mode)

    def launch_instant(self, image: EnclaveImage,
                       mode: ExecutionMode = ExecutionMode.HARDWARE,
                       ) -> Enclave:
        """Create an enclave without charging startup costs.

        Functional tests that exercise protocols (not performance) use this
        to avoid driving the simulator for every fixture.
        """
        if mode is ExecutionMode.HARDWARE:
            self.epc.allocated_bytes += image.total_bytes
        return Enclave(self, image, mode=mode)

    def set_microcode(self, microcode: calibration.MicrocodeLevel) -> None:
        """Apply a microcode update (changes enclave-exit costs)."""
        self.microcode = microcode
