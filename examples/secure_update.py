#!/usr/bin/env python3
"""Secure updates under a Byzantine policy board (SS III-C / SS III-E).

Scenario: a three-member board (developer, auditor, data provider with
veto rights) governs an application policy. The example walks through:

1. a legitimate update: new image version, f+1 approvals, rollout;
2. a malicious insider pushing a backdoored build: one Byzantine approval
   is not enough, the update dies at the board;
3. the data provider exercising its veto;
4. an image provider revoking a vulnerable release, which automatically
   disables it in the application policy (the intersection rule);
5. a board-approved update of the PALAEMON CA itself.

Run:  python examples/secure_update.py
"""

from repro.core.board import AccessRequest, ApprovalService, BoardEvaluator
from repro.core.ca import PalaemonCA
from repro.core.client import PalaemonClient
from repro.core.policy import (
    BoardSpec,
    PolicyBoardMember,
    SecurityPolicy,
    ServiceSpec,
)
from repro.core.service import PalaemonService, build_palaemon_image
from repro.core.update import (
    CAUpdateCoordinator,
    ImagePolicyExport,
    ImageRelease,
    apply_image_export,
    prepare_application_update,
)
from repro.crypto.certificates import self_signed_certificate
from repro.crypto.primitives import DeterministicRandom
from repro.crypto.signatures import KeyPair
from repro.errors import (
    ApprovalDeniedError,
    AttestationError,
    MrenclaveNotPermittedError,
    VetoError,
)
from repro.fs.blockstore import BlockStore
from repro.runtime.scone import SconeRuntime
from repro.sim.core import Simulator
from repro.sim.network import Site
from repro.tee.ias import IntelAttestationService
from repro.tee.image import build_image
from repro.tee.platform import SGXPlatform


def main() -> None:
    rng = DeterministicRandom(b"secure-update")
    simulator = Simulator()
    platform = SGXPlatform(simulator, "node", rng.fork(b"platform"))
    ias = IntelAttestationService(simulator, Site.IAS_US, rng.fork(b"ias"))
    ias.register_platform(platform.quoting_enclave.attestation_public_key,
                          platform.microcode.revision)

    # --- the board: developer, auditor, data provider (veto) --------------
    approval_services = {}
    members = []
    decision_rules = {}
    for name, veto in (("developer", False), ("auditor", False),
                       ("data-provider", True)):
        keys = KeyPair.generate(rng.fork(name.encode()), bits=512)
        endpoint = f"approval-{name}"
        service = ApprovalService(simulator, name, keys)
        approval_services[endpoint] = service
        decision_rules[name] = service
        members.append(PolicyBoardMember(
            name=name, certificate=self_signed_certificate(name, keys),
            approval_endpoint=endpoint, veto=veto))
    board = BoardSpec(members=tuple(members), threshold=2)  # f+1 with f=1
    evaluator = BoardEvaluator(simulator, approval_services)

    palaemon = PalaemonService(platform, BlockStore("palaemon-volume"),
                               rng.fork(b"palaemon"),
                               board_evaluator=evaluator)
    palaemon.platform_registry.enroll(
        platform.platform_id,
        platform.quoting_enclave.attestation_public_key)
    simulator.run_process(palaemon.start())
    ca = PalaemonCA(platform, ias, frozenset({palaemon.mrenclave}),
                    rng.fork(b"ca"))
    palaemon.obtain_certificate(ca)

    operator = PalaemonClient("operator", rng.fork(b"operator"))
    operator.attest_instance_via_ca(palaemon, ca.root_public_key,
                                    now=simulator.now)

    v1 = build_image("service-image", seed=b"v1", version="1.0")
    policy = SecurityPolicy(
        name="governed_service",
        services=[ServiceSpec(name="service", image_name="service-image",
                              mrenclaves=[v1.mrenclave()])],
        board=board)
    operator.create_policy(palaemon, policy)
    print("Policy created under a 3-member board (threshold 2, "
          "data provider holds veto).")
    runtime = SconeRuntime(platform, palaemon, rng.fork(b"runtime"))
    runtime.launch(v1, "governed_service", "service")
    print("v1 attested and running.")

    # --- 1. legitimate update ---------------------------------------------
    v2 = build_image("service-image", seed=b"v2", version="2.0")
    updated = operator.read_policy(palaemon, "governed_service")
    prepare_application_update(updated, "service", v2.mrenclave())
    operator.update_policy(palaemon, updated)
    runtime.launch(v2, "governed_service", "service")
    print("1. v2 rollout: board approved, new MRENCLAVE admitted, "
          "v2 attested.")

    # --- 2. malicious insider ---------------------------------------------
    # Only the (compromised) developer approves; auditor and data provider
    # reject anything whose digest they have not reviewed.
    reviewed = set()

    def reviewers_rule(request: AccessRequest) -> bool:
        return (request.operation != "update"
                or request.change_digest in reviewed)

    decision_rules["auditor"].decision_rule = reviewers_rule
    decision_rules["data-provider"].decision_rule = reviewers_rule
    backdoored = build_image("service-image", seed=b"backdoor",
                             version="2.1")
    malicious = operator.read_policy(palaemon, "governed_service")
    prepare_application_update(malicious, "service", backdoored.mrenclave())
    try:
        operator.update_policy(palaemon, malicious)
        raise AssertionError("malicious update went through!")
    except ApprovalDeniedError as exc:
        print(f"2. backdoored v2.1 blocked at the board: {exc}")
    try:
        runtime.launch(backdoored, "governed_service", "service")
    except MrenclaveNotPermittedError:
        print("   ...and the backdoored binary cannot attest.")

    # --- 3. the veto --------------------------------------------------------
    decision_rules["auditor"].decision_rule = lambda _request: True
    decision_rules["developer"].decision_rule = lambda _request: True
    decision_rules["data-provider"].decision_rule = (
        lambda request: request.operation != "update")
    leaky = operator.read_policy(palaemon, "governed_service")
    prepare_application_update(
        leaky, "service",
        build_image("service-image", seed=b"leaky", version="2.2")
        .mrenclave())
    try:
        operator.update_policy(palaemon, leaky)
        raise AssertionError("veto did not fire!")
    except VetoError as exc:
        print(f"3. {exc}")
    decision_rules["data-provider"].decision_rule = lambda _request: True

    # --- 4. image-policy revocation (the intersection rule) ---------------
    # The image provider vouches for v1 and v2 (tag wildcard: the provider
    # curates binaries; per-deployment volume tags stay with the app).
    export = ImagePolicyExport("service-image")
    export.add_release(ImageRelease(v1.mrenclave(), b"", "1.0"))
    export.add_release(ImageRelease(v2.mrenclave(), b"", "2.0"))
    with_import = operator.read_policy(palaemon, "governed_service")
    apply_image_export(with_import, export)
    operator.update_policy(palaemon, with_import)
    runtime.launch(v1, "governed_service", "service")
    print("4. image policy imported: curated v1 runs.")

    export.revoke("1.0")  # vulnerability discovered upstream
    revoked = operator.read_policy(palaemon, "governed_service")
    apply_image_export(revoked, export)
    operator.update_policy(palaemon, revoked)
    try:
        runtime.launch(v1, "governed_service", "service")
        raise AssertionError("revoked combination still runs!")
    except AttestationError:
        print("   upstream revoked v1.0 -> the combination is disabled "
              "downstream automatically.")

    # --- 5. updating PALAEMON itself (via its CA) ---------------------------
    new_palaemon_mre = build_palaemon_image(version="2.0").mrenclave()
    coordinator = CAUpdateCoordinator(board, evaluator, operator.certificate)
    new_ca = coordinator.approve_and_build(
        ca, frozenset({palaemon.mrenclave, new_palaemon_mre}),
        rng.fork(b"ca-v2"), version="2.0")
    palaemon.obtain_certificate(new_ca)
    print("5. board approved the CA update; the new CA certifies both the "
          "current and the next PALAEMON version. Done.")


if __name__ == "__main__":
    main()
