"""Transparent secret injection into configuration files.

Legacy applications read secrets from config files (Table I); PALAEMON
replaces ``$$PALAEMON$SECRET_NAME$$`` variables inside such files with the
secret values *inside the TEE* at startup, keeping the injected copy in
enclave memory (§IV-A). The file on disk never contains the secret; the
application never knows the replacement happened.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.errors import PolicyError

#: Variable syntax: $$PALAEMON$NAME$$ where NAME is [A-Z0-9_]+.
_VARIABLE_PATTERN = re.compile(rb"\$\$PALAEMON\$([A-Z0-9_]+)\$\$")


def find_variables(content: bytes) -> List[str]:
    """Names of all PALAEMON variables referenced in ``content``."""
    return [match.decode() for match in _VARIABLE_PATTERN.findall(content)]


def inject_secrets(content: bytes, secrets: Dict[str, bytes]) -> bytes:
    """Replace every PALAEMON variable in ``content`` with its secret value.

    Raises :class:`PolicyError` if the file references a secret that is not
    defined — silently leaving the placeholder would hand the application a
    non-secret string where it expects a key.
    """
    missing = [name for name in find_variables(content) if name not in secrets]
    if missing:
        raise PolicyError(
            f"file references undefined secrets: {', '.join(sorted(set(missing)))}")

    def replace(match: "re.Match[bytes]") -> bytes:
        return secrets[match.group(1).decode()]

    return _VARIABLE_PATTERN.sub(replace, content)


#: Injected files larger than this spill to the shielded file system
#: instead of staying resident in enclave memory (§IV-A: "configuration
#: files are typically small, so we keep them in TEE memory as long as
#: they fit").
DEFAULT_MEMORY_LIMIT = 1 * 1024 * 1024


class InjectedFileView:
    """An in-enclave-memory view of a config file with secrets injected.

    Reads are served from memory (no decryption, no syscall), which is why
    injected files read *faster* than even plain files in Fig 11 (right).
    Files exceeding ``memory_limit`` spill to a shielded file system when
    one is provided — still CIF-protected, just no longer memory-resident.
    """

    def __init__(self, path: str, template: bytes,
                 secrets: Dict[str, bytes],
                 memory_limit: int = DEFAULT_MEMORY_LIMIT,
                 spill_fs=None) -> None:
        self.path = path
        self.template = template
        self.memory_limit = memory_limit
        self.reads = 0
        content = inject_secrets(template, secrets)
        self.spilled = (len(content) > memory_limit
                        and spill_fs is not None)
        self._spill_fs = spill_fs
        if self.spilled:
            spill_fs.write(path, content)
            self.content = b""
        else:
            self.content = content

    def read(self) -> bytes:
        self.reads += 1
        if self.spilled:
            return self._spill_fs.read(self.path)
        return self.content

    @property
    def variable_count(self) -> int:
        return len(find_variables(self.template))
