"""Enclave images and MRENCLAVE measurement.

An enclave image is the unit of identity in the whole system: PALAEMON
policies whitelist MRENCLAVEs, the PALAEMON CA embeds the MRENCLAVEs of
correct PALAEMON versions, and a software update is precisely "a new image,
hence a new MRENCLAVE". The measurement covers the code and initialized-data
pages in page order (EEXTEND semantics); heap pages added at runtime are
zeroed and *not* measured, which is what makes PALAEMON's measure-only-code
startup (Fig 7) sound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import calibration
from repro.crypto.primitives import sha256
from repro.errors import EnclaveError


@dataclass(frozen=True)
class EnclaveImage:
    """An immutable enclave binary plus its memory layout.

    Attributes
    ----------
    name:
        Human-readable image name (e.g. ``"python-3.7-scone"``).
    code:
        Code bytes; measured.
    initialized_data:
        Initialized data segment; measured.
    heap_bytes:
        Requested heap size. Heap pages are zeroed on allocation and are not
        part of the measurement.
    version:
        Image version string; part of the measurement (a new version of the
        same code is a different MRENCLAVE, as in real SGX where any byte
        change alters MRE).
    """

    name: str
    code: bytes
    initialized_data: bytes
    heap_bytes: int
    version: str = "1.0"

    def __post_init__(self) -> None:
        if not self.code:
            raise EnclaveError(f"image {self.name!r} has no code")
        if self.heap_bytes < 0:
            raise EnclaveError("heap size cannot be negative")

    @property
    def measured_bytes(self) -> int:
        """Bytes covered by the measurement (code + initialized data)."""
        return _page_aligned(len(self.code)) + _page_aligned(
            len(self.initialized_data))

    @property
    def total_bytes(self) -> int:
        """Full enclave size including heap."""
        return self.measured_bytes + _page_aligned(self.heap_bytes)

    @property
    def measured_pages(self) -> int:
        return self.measured_bytes // calibration.PAGE_SIZE

    @property
    def total_pages(self) -> int:
        return self.total_bytes // calibration.PAGE_SIZE

    def mrenclave(self) -> bytes:
        """The enclave measurement: SHA-256 over measured pages in order.

        Mirrors EINIT's final MRENCLAVE: every measured page extends the
        digest together with its offset, so both content and layout are
        bound.
        """
        digest_parts = [b"mrenclave-v1", self.version.encode()]
        offset = 0
        for segment in (self.code, self.initialized_data):
            padded = _pad_to_page(segment)
            for start in range(0, len(padded), calibration.PAGE_SIZE):
                page = padded[start:start + calibration.PAGE_SIZE]
                digest_parts.append(offset.to_bytes(8, "big"))
                digest_parts.append(sha256(page))
                offset += calibration.PAGE_SIZE
        return sha256(*digest_parts)

    def with_patch(self, new_code: bytes, new_version: str) -> "EnclaveImage":
        """A new image version — a software update, with a new MRENCLAVE."""
        return EnclaveImage(name=self.name, code=new_code,
                            initialized_data=self.initialized_data,
                            heap_bytes=self.heap_bytes, version=new_version)


def _page_aligned(size: int) -> int:
    pages = (size + calibration.PAGE_SIZE - 1) // calibration.PAGE_SIZE
    return pages * calibration.PAGE_SIZE


def _pad_to_page(data: bytes) -> bytes:
    return data + b"\x00" * (_page_aligned(len(data)) - len(data))


def build_image(name: str, code_size: int = 80 * calibration.KB,
                data_size: int = 16 * calibration.KB,
                heap_bytes: int = 4 * calibration.MB,
                version: str = "1.0",
                seed: bytes = b"") -> EnclaveImage:
    """Build a synthetic image of the given segment sizes.

    The default 80 kB code size matches the minimal binary used in the
    paper's startup benchmarks (Fig 7). Content is derived from the name,
    version, and seed so different "builds" have different MRENCLAVEs.
    """
    material = sha256(name.encode(), version.encode(), seed)
    code = (material * (code_size // 32 + 1))[:code_size]
    data = (sha256(material) * (data_size // 32 + 1))[:data_size]
    return EnclaveImage(name=name, code=code, initialized_data=data,
                        heap_bytes=heap_bytes, version=version)
