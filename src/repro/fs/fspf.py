"""The file-system protection file (FSPF).

SCONE stores the shield's metadata — which files exist, their nonces, and
their content hashes — in a protection file kept on the untrusted volume.
The FSPF is itself encrypted and authenticated under the file-system key,
and the Merkle root over the metadata is the file-system *tag* referenced by
PALAEMON policies (``fspf_key`` / ``fspf_tag`` in List 1).

The FSPF keeps one live :class:`~repro.crypto.merkle.MerkleTree` in sync
with its entries: ``set_entry``/``remove_entry`` update the corresponding
leaf in place, so ``tag()`` is an O(1) cached-root read on the hot path
instead of rebuilding the tree from every entry per call.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Dict

from repro.crypto.merkle import MerkleTree
from repro.crypto.symmetric import SecretBox
from repro.errors import IntegrityError


@dataclass
class FileEntry:
    """Shield metadata for one file."""

    ciphertext_hash: bytes
    size: int


class FileSystemProtectionFile:
    """Serializable shield metadata, sealed under the FS key."""

    VERSION = 1

    def __init__(self) -> None:
        self.entries: Dict[str, FileEntry] = {}
        self._tree = MerkleTree()

    def set_entry(self, path: str, ciphertext_hash: bytes, size: int) -> None:
        self.entries[path] = FileEntry(ciphertext_hash=ciphertext_hash,
                                       size=size)
        self._tree.set_leaf_hash(path, ciphertext_hash)

    def remove_entry(self, path: str) -> None:
        del self.entries[path]
        self._tree.remove_leaf(path)

    def merkle_tree(self) -> MerkleTree:
        """The live tree over all entries (do not mutate it directly)."""
        return self._tree

    def tag(self) -> bytes:
        """The file-system tag: Merkle root over all file ciphertexts."""
        return self._tree.root()

    def seal(self, box: SecretBox) -> bytes:
        """Encrypt + authenticate the FSPF for storage on the volume."""
        payload = pickle.dumps({
            "version": self.VERSION,
            "entries": {path: (entry.ciphertext_hash, entry.size)
                        for path, entry in self.entries.items()},
        })
        return box.seal(payload, associated_data=b"fspf")

    @classmethod
    def unseal(cls, box: SecretBox, sealed: bytes) -> "FileSystemProtectionFile":
        """Decrypt and validate an FSPF blob; integrity failures raise."""
        payload = pickle.loads(box.open(sealed, associated_data=b"fspf"))
        if payload.get("version") != cls.VERSION:
            raise IntegrityError("unsupported FSPF version")
        fspf = cls()
        for path, (ciphertext_hash, size) in payload["entries"].items():
            fspf.set_entry(path, ciphertext_hash, size)
        return fspf
