"""Consistency guards: documentation must reference things that exist.

Docs rot silently; these tests fail the suite when a documented module,
test file, example, or benchmark disappears or is renamed.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


def referenced_paths(text):
    """Extract repo-relative path-looking references from markdown."""
    patterns = [
        r"`(tests/[\w/]+\.py)",
        r"`(benchmarks/[\w/]+\.py)",
        r"`(examples/[\w/]+\.py)",
        r"`(src/repro/[\w/]+\.py)",
        r"`(docs/[\w.]+\.md)`",
    ]
    found = set()
    for pattern in patterns:
        found.update(re.findall(pattern, text))
    return found


@pytest.mark.parametrize("doc", [
    "README.md", "DESIGN.md", "EXPERIMENTS.md",
    "docs/PROTOCOLS.md", "docs/THREAT_MODEL.md", "docs/SIMULATION.md",
    "docs/API.md", "docs/OBSERVABILITY.md", "docs/ANALYSIS.md",
    "docs/CHAOS.md", "docs/PERFORMANCE.md",
])
def test_documented_paths_exist(doc):
    text = (ROOT / doc).read_text()
    for path in sorted(referenced_paths(text)):
        assert (ROOT / path).exists(), f"{doc} references missing {path}"


def test_documented_modules_import():
    """Dotted module references in docs must import."""
    import importlib

    dotted = set()
    for doc in ("docs/PROTOCOLS.md", "docs/THREAT_MODEL.md", "docs/API.md",
                "docs/OBSERVABILITY.md", "docs/ANALYSIS.md",
                "docs/CHAOS.md", "docs/PERFORMANCE.md", "README.md"):
        text = (ROOT / doc).read_text()
        dotted.update(re.findall(r"`(repro\.[a-z_.]+)`", text))
    for module_name in sorted(dotted):
        parts = module_name.split(".")
        # Try importing progressively: the reference may be module.attr.
        for cut in range(len(parts), 1, -1):
            candidate = ".".join(parts[:cut])
            try:
                module = importlib.import_module(candidate)
                break
            except ImportError:
                continue
        else:
            pytest.fail(f"documented module {module_name} does not import")
        remainder = parts[cut:]
        target = module
        for attribute in remainder:
            target = getattr(target, attribute, None)
            assert target is not None, (
                f"documented attribute {module_name} missing")


def test_experiments_md_covers_every_benchmark():
    """EXPERIMENTS.md must name every benchmark file."""
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for bench in sorted((ROOT / "benchmarks").glob("test_*.py")):
        assert bench.name in text, f"EXPERIMENTS.md misses {bench.name}"


def test_design_md_experiment_index_matches_benchmarks():
    """Every bench named in DESIGN.md's experiment index exists."""
    text = (ROOT / "DESIGN.md").read_text()
    for name in re.findall(r"benchmarks/(test_\w+\.py)", text):
        assert (ROOT / "benchmarks" / name).exists(), name


def test_readme_example_table_matches_directory():
    text = (ROOT / "README.md").read_text()
    for example in sorted((ROOT / "examples").glob("*.py")):
        assert example.name in text, f"README misses {example.name}"


def test_api_md_operation_table_matches_registry():
    """The docs/API.md route table is generated from the registry; any
    drift (a new operation, a changed field list, a reworded summary)
    must fail here until the table is regenerated."""
    from repro.core.dispatch import (
        TABLE_BEGIN,
        TABLE_END,
        render_operation_table,
    )

    text = (ROOT / "docs/API.md").read_text()
    assert TABLE_BEGIN in text and TABLE_END in text, (
        "docs/API.md lost its generated operation-table markers")
    begin = text.index(TABLE_BEGIN) + len(TABLE_BEGIN)
    documented = text[begin:text.index(TABLE_END)].strip()
    assert documented == render_operation_table(), (
        "docs/API.md operation table is out of date — regenerate it with "
        "repro.core.dispatch.render_operation_table()")
