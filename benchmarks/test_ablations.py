"""Ablation benches for the design choices DESIGN.md calls out.

These are not figures from the paper; they isolate *why* the paper's
design decisions win, by benchmarking the alternative each decision
rejected.
"""

from repro import calibration
from repro.benchlib.tables import format_table
from repro.core.board import AccessRequest, ApprovalService, BoardEvaluator
from repro.core.policy import BoardSpec, PolicyBoardMember
from repro.crypto.certificates import self_signed_certificate
from repro.crypto.primitives import DeterministicRandom
from repro.crypto.signatures import KeyPair
from repro.sim.core import Simulator
from repro.sim.network import Site
from repro.tee.counters import PlatformCounterService
from repro.tee.image import build_image
from repro.tee.loader import EnclaveLoader, MeasurementScope

from benchmarks.conftest import run_once


def _tag_updates_startup_only(updates):
    """PALAEMON's design: counter at startup/shutdown, tags to the DB."""
    sim = Simulator()
    counters = PlatformCounterService(sim)
    counters.create("c")

    def main():
        start = sim.now
        yield sim.process(counters.increment("c"))   # startup
        # Tag update = in-enclave DB write; modelled at the strict-mode
        # file-counter rate (the dominant cost is the AEAD + memcpy).
        # Charged as one batch: per-update costs are independent.
        yield sim.timeout(updates / calibration.FILE_COUNTER_PALAEMON_RATE)
        yield sim.process(counters.increment("c"))   # shutdown
        return updates / (sim.now - start)

    return sim.run_process(main()), counters.writes("c")


def _tag_updates_per_update_counter(updates):
    """The rejected design: one hardware increment per tag update."""
    sim = Simulator()
    counters = PlatformCounterService(sim)
    counters.create("c")

    def main():
        start = sim.now
        for _ in range(updates):
            yield sim.process(counters.increment("c"))
        return updates / (sim.now - start)

    return sim.run_process(main()), counters.writes("c")


def test_ablation_counter_protocol(benchmark):
    """Fig 6's startup-only protocol vs per-update hardware increments."""

    def experiment():
        # One instance lifetime serving a million tag updates (minutes of
        # service time) vs the same workload on per-update increments.
        fast_rate, fast_wear = _tag_updates_startup_only(updates=1_000_000)
        slow_rate, slow_wear = _tag_updates_per_update_counter(updates=50)
        return fast_rate, fast_wear, slow_rate, slow_wear

    fast_rate, fast_wear, slow_rate, slow_wear = run_once(benchmark,
                                                          experiment)
    print()
    print(format_table(
        ["design", "tag updates/s", "hardware writes"],
        [["startup-only counter (Fig 6)", fast_rate, fast_wear],
         ["per-update counter (rejected)", slow_rate, slow_wear]],
        title="Ablation: rollback-protection counter discipline"))

    # Throughput: >4 orders of magnitude apart.
    assert fast_rate / slow_rate > 1e4
    # Wear: 2 writes per lifecycle vs 1 per update. At 13 increments/s a
    # 1M-write counter dies in under a day of continuous tag updates.
    assert fast_wear == 2
    assert slow_wear == 50
    seconds_to_wear_out = calibration.SGX_COUNTER_WEAR_LIMIT / slow_rate
    assert seconds_to_wear_out < 2 * 24 * 3600


def test_ablation_measurement_scope(benchmark):
    """Measure-only-code vs measure-everything, isolated at 64 MB."""

    def experiment():
        image = build_image("ablation", heap_bytes=64 * calibration.MB)
        code_only = EnclaveLoader.estimate(image, MeasurementScope.CODE_ONLY)
        all_pages = EnclaveLoader.estimate(image, MeasurementScope.ALL_PAGES)
        return code_only, all_pages

    code_only, all_pages = run_once(benchmark, experiment)
    print()
    print(format_table(
        ["loader", "total (ms)", "measurement (ms)"],
        [["code-only (SCONE/PALAEMON)", code_only.total_seconds * 1e3,
          code_only.measurement_seconds * 1e3],
         ["all-pages (naive)", all_pages.total_seconds * 1e3,
          all_pages.measurement_seconds * 1e3]],
        title="Ablation: measurement scope at 64 MB"))

    # Identical non-measurement costs; the whole gap is EEXTEND volume.
    assert code_only.addition_seconds == all_pages.addition_seconds
    assert code_only.bookkeeping_seconds == all_pages.bookkeeping_seconds
    assert all_pages.total_seconds > 5 * code_only.total_seconds


def _board_round_latency(member_count):
    sim = Simulator()
    rng = DeterministicRandom(b"ablation-board")
    services = {}
    members = []
    for index in range(member_count):
        name = f"m{index}"
        keys = KeyPair.generate(rng.fork(name.encode()), bits=512)
        endpoint = f"ep-{name}"
        services[endpoint] = ApprovalService(sim, name, keys,
                                             site=Site.SAME_DC)
        members.append(PolicyBoardMember(
            name=name, certificate=self_signed_certificate(name, keys),
            approval_endpoint=endpoint))
    board = BoardSpec(members=tuple(members), threshold=member_count)
    evaluator = BoardEvaluator(sim, services)
    request = AccessRequest(policy_name="p", operation="update",
                            requester_fingerprint=b"\x01" * 16)

    def main():
        start = sim.now
        outcome = yield sim.process(evaluator.evaluate(board, request))
        BoardEvaluator.enforce(board, request, outcome)
        return sim.now - start

    return sim.run_process(main())


def test_ablation_board_size(benchmark):
    """Approval latency vs board size: parallel queries keep rounds flat."""

    def experiment():
        return {count: _board_round_latency(count)
                for count in (1, 3, 5, 9, 15)}

    latencies = run_once(benchmark, experiment)
    print()
    print(format_table(
        ["board members", "round latency (ms)"],
        [[count, latency * 1e3] for count, latency in latencies.items()],
        title="Ablation: board size vs unanimous-approval latency"))

    # A 15-member unanimous round costs at most ~2x a 1-member round:
    # member queries are parallel; only jitter accumulates in the max.
    assert latencies[15] < 2 * latencies[1]
