"""Extension bench: the PESOS-style replicated storage backend (§V-A).

The paper delegates availability/durability of PALAEMON's storage to a
trusted object store. This bench quantifies the trade: write amplification
and quorum cost vs. surviving replica loss, with the shield stacked on top
so integrity checks still hold end to end.
"""

from repro.benchlib.tables import format_table
from repro.crypto.primitives import DeterministicRandom
from repro.fs.blockstore import BlockStore
from repro.fs.objectstore import ReplicatedObjectStore
from repro.fs.shield import ProtectedFileSystem

from benchmarks.conftest import run_once


def _workload(store, rng, files=50):
    """Write/overwrite/read a batch of shielded files; return ops count."""
    fs = ProtectedFileSystem(store, rng.fork(b"key").bytes(32),
                             rng.fork(b"fs"))
    for index in range(files):
        fs.write(f"/obj/{index}", rng.fork(b"w%d" % index).bytes(256))
    fs.sync()
    for index in range(0, files, 2):
        fs.write(f"/obj/{index}", rng.fork(b"w2%d" % index).bytes(256))
    tag = fs.sync()
    for index in range(files):
        fs.read(f"/obj/{index}")
    return fs, tag


def _measure():
    results = {}
    # Single volume: no redundancy.
    single = BlockStore("single")
    _workload(single, DeterministicRandom(b"single"))
    results["single volume"] = {
        "backend_writes": single.write_count,
        "survives_node_loss": False,
    }
    # Replicated: 3 and 5 nodes.
    for nodes in (3, 5):
        replicated = ReplicatedObjectStore(nodes=nodes)
        rng = DeterministicRandom(b"replicated%d" % nodes)
        fs, tag = _workload(replicated, rng)
        # Kill a minority and verify the volume still mounts and verifies.
        for node_id in range(nodes // 2):
            replicated.fail_node(node_id)
        remounted = ProtectedFileSystem(replicated,
                                        rng.fork(b"key").bytes(32),
                                        rng.fork(b"remount"))
        remounted.verify_tag(tag)
        survives = remounted.read("/obj/1") == fs.read("/obj/1")
        results[f"replicated x{nodes}"] = {
            "backend_writes": replicated.write_count,
            "survives_node_loss": survives,
        }
    return results


def test_ext_objectstore_durability(benchmark):
    results = run_once(benchmark, _measure)

    print()
    print(format_table(
        ["backend", "logical writes", "survives minority loss"],
        [[name, row["backend_writes"], str(row["survives_node_loss"])]
         for name, row in results.items()],
        title="Extension: storage backend durability"))

    # Replication keeps the logical write count (amplification is inside
    # the store, one logical write fanning out to N replicas).
    single_writes = results["single volume"]["backend_writes"]
    assert results["replicated x3"]["backend_writes"] == single_writes
    # Only the replicated backends survive losing a minority of nodes.
    assert not results["single volume"]["survives_node_loss"]
    assert results["replicated x3"]["survives_node_loss"]
    assert results["replicated x5"]["survives_node_loss"]
