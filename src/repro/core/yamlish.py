"""A minimal YAML-subset parser for PALAEMON policy documents.

PALAEMON policies are YAML (List 1 of the paper). The standard library has
no YAML parser and this reproduction is dependency-free, so this module
implements the subset policies actually use:

- nested mappings via indentation,
- block sequences (``- item``), including sequences of mappings,
- scalars: strings (bare, single- or double-quoted), integers, floats,
  booleans (``true``/``false``), ``null``,
- inline lists of scalars (``["a", "b"]``),
- comments (``#``) and blank lines.

It is *not* a general YAML parser: anchors, multi-line scalars, and flow
mappings are rejected loudly rather than mis-parsed.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.errors import PolicyValidationError


class YamlishError(PolicyValidationError):
    """Raised on input outside the supported subset."""


def dumps(value: Any, _indent: int = 0) -> str:
    """Serialize dicts/lists/scalars back into the supported subset.

    ``loads(dumps(x)) == x`` for any value built from the supported types
    (the round-trip property the test suite checks with hypothesis).
    """
    lines = _dump_block(value, 0)
    return "\n".join(lines) + "\n"


def _dump_block(value: Any, indent: int) -> List[str]:
    pad = " " * indent
    if isinstance(value, dict):
        if not value:
            raise YamlishError("cannot serialize an empty mapping as a block")
        lines = []
        for key, item in value.items():
            rendered_key = _dump_key(key)
            if isinstance(item, (dict, list)) and item:
                lines.append(f"{pad}{rendered_key}:")
                lines.extend(_dump_block(item, indent + 2))
            else:
                lines.append(f"{pad}{rendered_key}: {_dump_scalar(item)}")
        return lines
    if isinstance(value, list):
        lines = []
        for item in value:
            if isinstance(item, dict) and item:
                inner = _dump_block(item, indent + 2)
                first = inner[0].lstrip()
                lines.append(f"{pad}- {first}")
                lines.extend(inner[1:])
            elif isinstance(item, (dict, list)) and not isinstance(item, dict):
                raise YamlishError("nested lists are not supported")
            else:
                lines.append(f"{pad}- {_dump_scalar(item)}")
        return lines
    return [f"{pad}{_dump_scalar(value)}"]


def _dump_key(key: Any) -> str:
    if not isinstance(key, str) or not key:
        raise YamlishError(f"mapping keys must be non-empty strings: {key!r}")
    if key != key.strip() or ":" in key or key.startswith(("#", "-", '"')):
        return '"' + key + '"'
    return key


def _dump_scalar(value: Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, list):
        if value:
            raise YamlishError("non-empty lists must be dumped as blocks")
        return "[]"
    if isinstance(value, dict):
        if value:
            raise YamlishError("non-empty dicts must be dumped as blocks")
        raise YamlishError("empty mappings cannot be round-tripped")
    if not isinstance(value, str):
        raise YamlishError(f"unsupported scalar type: {type(value).__name__}")
    if "\n" in value or '"' in value:
        raise YamlishError("multi-line and quoted strings are not supported")
    return '"' + value + '"'


def loads(text: str) -> Any:
    """Parse a YAML-subset document into dicts/lists/scalars."""
    lines = _prepare_lines(text)
    if not lines:
        return {}
    value, next_index = _parse_block(lines, 0, lines[0][0])
    if next_index != len(lines):
        line_number = lines[next_index][2]
        raise YamlishError(f"unexpected dedent/content at line {line_number}")
    return value


def _prepare_lines(text: str) -> List[Tuple[int, str, int]]:
    """Strip comments/blanks; return (indent, content, line_number) tuples."""
    prepared = []
    for number, raw in enumerate(text.splitlines(), start=1):
        without_comment = _strip_comment(raw)
        stripped = without_comment.strip()
        if not stripped:
            continue
        if "\t" in raw[:len(raw) - len(raw.lstrip())]:
            raise YamlishError(f"tabs in indentation at line {number}")
        indent = len(without_comment) - len(without_comment.lstrip(" "))
        prepared.append((indent, stripped, number))
    return prepared


def _strip_comment(line: str) -> str:
    """Remove a trailing comment, respecting quoted strings."""
    in_single = in_double = False
    for index, char in enumerate(line):
        if char == "'" and not in_double:
            in_single = not in_single
        elif char == '"' and not in_single:
            in_double = not in_double
        elif char == "#" and not in_single and not in_double:
            if index == 0 or line[index - 1] in (" ", "\t"):
                return line[:index]
    return line


def _parse_block(lines: List[Tuple[int, str, int]], index: int,
                 indent: int) -> Tuple[Any, int]:
    """Parse one block (mapping or sequence) at the given indent."""
    _indent, content, _number = lines[index]
    if content.startswith("- ") or content == "-":
        return _parse_sequence(lines, index, indent)
    return _parse_mapping(lines, index, indent)


def _parse_sequence(lines: List[Tuple[int, str, int]], index: int,
                    indent: int) -> Tuple[List[Any], int]:
    items: List[Any] = []
    while index < len(lines):
        item_indent, content, number = lines[index]
        if item_indent < indent:
            break
        if item_indent > indent:
            raise YamlishError(f"unexpected indent at line {number}")
        if not (content.startswith("- ") or content == "-"):
            break
        rest = content[1:].strip()
        if not rest:
            # The item body is the nested block on following lines.
            if index + 1 < len(lines) and lines[index + 1][0] > indent:
                value, index = _parse_block(lines, index + 1,
                                            lines[index + 1][0])
                items.append(value)
            else:
                items.append(None)
                index += 1
            continue
        if _looks_like_mapping_entry(rest):
            # "- key: value" starts an inline mapping item; treat the rest
            # as the first entry of a mapping indented past the dash.
            entry_indent = item_indent + 2
            synthetic = [(entry_indent, rest, number)]
            probe = index + 1
            while probe < len(lines) and lines[probe][0] >= entry_indent:
                synthetic.append(lines[probe])
                probe += 1
            value, consumed = _parse_mapping(synthetic, 0, entry_indent)
            if consumed != len(synthetic):
                bad_line = synthetic[consumed][2]
                raise YamlishError(f"unexpected structure at line {bad_line}")
            items.append(value)
            index = probe
            continue
        items.append(_parse_scalar(rest, number))
        index += 1
    return items, index


def _parse_mapping(lines: List[Tuple[int, str, int]], index: int,
                   indent: int) -> Tuple[dict, int]:
    mapping: dict = {}
    while index < len(lines):
        entry_indent, content, number = lines[index]
        if entry_indent < indent:
            break
        if entry_indent > indent:
            raise YamlishError(f"unexpected indent at line {number}")
        if content.startswith("- "):
            break
        key, separator, rest = _split_key(content, number)
        if key in mapping:
            raise YamlishError(f"duplicate key {key!r} at line {number}")
        rest = rest.strip()
        if rest:
            mapping[key] = _parse_scalar(rest, number)
            index += 1
        else:
            if index + 1 < len(lines) and lines[index + 1][0] > indent:
                value, index = _parse_block(lines, index + 1,
                                            lines[index + 1][0])
                mapping[key] = value
            else:
                mapping[key] = None
                index += 1
    return mapping, index


def _split_key(content: str, number: int) -> Tuple[str, str, str]:
    in_single = in_double = False
    for index, char in enumerate(content):
        if char == "'" and not in_double:
            in_single = not in_single
        elif char == '"' and not in_single:
            in_double = not in_double
        elif char == ":" and not in_single and not in_double:
            if index + 1 == len(content) or content[index + 1] == " ":
                key = content[:index].strip()
                if key.startswith(("'", '"')):
                    key = key[1:-1]
                return key, ":", content[index + 1:]
    raise YamlishError(f"expected 'key: value' at line {number}")


def _looks_like_mapping_entry(content: str) -> bool:
    try:
        _split_key(content, 0)
        return True
    except YamlishError:
        return False


def _parse_scalar(text: str, number: int) -> Any:
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [_parse_scalar(part.strip(), number)
                for part in _split_inline_list(inner, number)]
    if text.startswith("{"):
        raise YamlishError(f"flow mappings not supported (line {number})")
    if text.startswith("&") or text.startswith("*"):
        raise YamlishError(f"anchors/aliases not supported (line {number})")
    if text.startswith("|") or text.startswith(">"):
        raise YamlishError(f"block scalars not supported (line {number})")
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1]
    if text.startswith("'") and text.endswith("'") and len(text) >= 2:
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("true", "yes"):
        return True
    if lowered in ("false", "no"):
        return False
    if lowered in ("null", "~"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _split_inline_list(inner: str, number: int) -> List[str]:
    parts = []
    current = []
    in_single = in_double = False
    for char in inner:
        if char == "'" and not in_double:
            in_single = not in_single
        elif char == '"' and not in_single:
            in_double = not in_double
        if char == "," and not in_single and not in_double:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if in_single or in_double:
        raise YamlishError(f"unterminated quote in list (line {number})")
    parts.append("".join(current))
    return parts
