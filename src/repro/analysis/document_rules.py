"""Raw-document rules (``DOC0xx``): defects visible only before parsing.

``SecurityPolicy.from_dict`` fills in defaults (most notably a missing
board ``threshold`` becomes unanimity), so some misconfigurations vanish
from the parsed object.  These rules run on the yamlish mapping itself.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

#: Keys ``SecurityPolicy.from_dict`` understands at the top level.
_TOP_LEVEL_KEYS = frozenset((
    "name", "services", "secrets", "volumes", "imports",
    "volume_imports", "board"))
_BOARD_KEYS = frozenset(("members", "threshold"))


@rule("DOC001", "implicit unanimity threshold", scope="document",
      severity=Severity.WARNING,
      hint="state board.threshold explicitly (f+1 for the fault budget)")
def check_implicit_threshold(name: str, document: dict) -> Iterator[Finding]:
    board = document.get("board")
    if not isinstance(board, dict):
        return
    if "threshold" in board:
        return
    members = board.get("members") or []
    count = len(members) if isinstance(members, list) else 0
    yield Finding(
        code="DOC001", severity=Severity.WARNING, subject=name,
        message=(f"board omits 'threshold'; the parser defaults to "
                 f"unanimity ({count}-of-{count}), so one unreachable "
                 f"member freezes every policy access"),
        hint="write the threshold out; the serializer always emits it")


@rule("DOC002", "unknown document key", scope="document",
      severity=Severity.WARNING,
      hint="misspelled keys are silently ignored by the parser")
def check_unknown_keys(name: str, document: dict) -> Iterator[Finding]:
    if not isinstance(document, dict):
        return
    for key in sorted(set(document) - _TOP_LEVEL_KEYS):
        yield Finding(
            code="DOC002", severity=Severity.WARNING, subject=name,
            message=f"unknown top-level key {key!r} is ignored by the "
                    f"parser",
            hint=f"did you mean one of: "
                 f"{', '.join(sorted(_TOP_LEVEL_KEYS))}?")
    board = document.get("board")
    if isinstance(board, dict):
        for key in sorted(set(board) - _BOARD_KEYS):
            yield Finding(
                code="DOC002", severity=Severity.WARNING, subject=name,
                message=f"unknown board key {key!r} is ignored by the "
                        f"parser",
                hint="board accepts: members, threshold")
