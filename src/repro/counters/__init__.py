"""Monotonic counter implementations (the Fig 10 contenders).

Five ways to count monotonically, with wildly different throughput:

- :class:`SGXPlatformCounter` — the hardware counters PALAEMON rejects for
  per-update use (13/s, wear out).
- :class:`TPMCounter` — TPM 2.0 NVRAM counters (~10/s, 300k-1.4M writes).
- :class:`ROTECounterGroup` — ROTE-style distributed counters (~500/s LAN).
- :class:`FileCounter` — a counter in a file, in four modes: native, inside
  SGX (memory-mapped), + transparent encryption, + PALAEMON strict mode.

The file-based variants are what the paper's design enables: because the
file system is rollback-protected by tags, an ordinary file is as safe as a
hardware counter under the crash-as-attack assumption — and 5 orders of
magnitude faster.
"""

from repro.counters.base import MonotonicCounter
from repro.counters.platform import SGXPlatformCounter
from repro.counters.tpm import TPMCounter
from repro.counters.rote import ROTECounterGroup
from repro.counters.filecounter import FileCounter, FileCounterMode

__all__ = [
    "FileCounter",
    "FileCounterMode",
    "MonotonicCounter",
    "ROTECounterGroup",
    "SGXPlatformCounter",
    "TPMCounter",
]
