"""PALAEMON: the trust management service itself.

The package mirrors the paper's architecture (§III-§IV):

- :mod:`repro.core.policy` — security policies (List 1), parsed from a
  YAML subset via :mod:`repro.core.yamlish`.
- :mod:`repro.core.secrets` — typed secrets: explicit, random, X.509.
- :mod:`repro.core.board` — policy boards: quorum approval with veto
  rights over every policy CRUD (§III-C).
- :mod:`repro.core.store` — the encrypted policy database with the
  version number used by the rollback protocol.
- :mod:`repro.core.rollback` — the version/counter protocol of Fig 6,
  including single-instance enforcement (§IV-C/D).
- :mod:`repro.core.attestation` — application attestation (§IV-A).
- :mod:`repro.core.ca` — the PALAEMON CA with its embedded MRE allow-list
  (§III-B).
- :mod:`repro.core.service` — the PALAEMON service: CRUD, attest-and-
  configure, tag management (§IV).
- :mod:`repro.core.client` — client-side instance attestation and
  policy management (§IV-B).
- :mod:`repro.core.update` — secure update flows and policy
  export/import intersection (§III-E).
"""

from repro.core.secrets import SecretSpec, SecretValue, SecretKind
from repro.core.policy import (
    BoardSpec,
    PolicyBoardMember,
    SecurityPolicy,
    ServiceSpec,
    VolumeSpec,
)
from repro.core.board import AccessRequest, ApprovalService, Verdict
from repro.core.store import PolicyStore
from repro.core.rollback import RollbackGuard
from repro.core.ca import PalaemonCA
from repro.core.service import AppConfig, PalaemonService
from repro.core.client import PalaemonClient

__all__ = [
    "AccessRequest",
    "AppConfig",
    "ApprovalService",
    "BoardSpec",
    "PalaemonCA",
    "PalaemonClient",
    "PalaemonService",
    "PolicyBoardMember",
    "PolicyStore",
    "RollbackGuard",
    "SecretKind",
    "SecretSpec",
    "SecretValue",
    "SecurityPolicy",
    "ServiceSpec",
    "Verdict",
    "VolumeSpec",
]
