"""Hashing, key derivation, and deterministic randomness.

The simulation must be fully deterministic so that experiments are exactly
reproducible; all randomness flows from :class:`DeterministicRandom`, a
SHA-256-based CSPRNG-shaped generator seeded explicitly by the caller.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import struct


def sha256(*parts: bytes) -> bytes:
    """Hash the concatenation of ``parts`` with SHA-256."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
    return digest.digest()


def hmac_sha256(key: bytes, *parts: bytes) -> bytes:
    """Compute HMAC-SHA-256 of the concatenation of ``parts`` under ``key``."""
    mac = _hmac.new(key, digestmod=hashlib.sha256)
    for part in parts:
        mac.update(part)
    return mac.digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without leaking the mismatch position."""
    return _hmac.compare_digest(a, b)


def hkdf(key_material: bytes, info: bytes, length: int = 32,
         salt: bytes = b"") -> bytes:
    """HKDF (RFC 5869) with SHA-256: extract-then-expand key derivation.

    Parameters
    ----------
    key_material:
        Input keying material.
    info:
        Context string binding the derived key to its purpose.
    length:
        Number of output bytes (at most 255 * 32).
    salt:
        Optional non-secret salt.
    """
    if length <= 0 or length > 255 * 32:
        raise ValueError(f"invalid HKDF output length: {length}")
    pseudo_random_key = hmac_sha256(salt or b"\x00" * 32, key_material)
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac_sha256(pseudo_random_key, previous, info,
                               bytes([counter]))
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


class DeterministicRandom:
    """A deterministic random byte generator (SHA-256 in counter mode).

    All key generation, nonce selection, and workload randomness in the
    simulation derives from instances of this class, making every experiment
    bit-for-bit reproducible from its seed.
    """

    def __init__(self, seed: bytes) -> None:
        if not seed:
            raise ValueError("seed must be non-empty")
        self._state = sha256(b"repro-drbg-v1", seed)
        self._counter = 0

    def bytes(self, length: int) -> bytes:
        """Return ``length`` pseudo-random bytes."""
        if length < 0:
            raise ValueError("length must be non-negative")
        output = bytearray()
        while len(output) < length:
            block = sha256(self._state, struct.pack(">Q", self._counter))
            self._counter += 1
            output.extend(block)
        return bytes(output[:length])

    def fork(self, label: bytes) -> "DeterministicRandom":
        """Derive an independent child generator bound to ``label``.

        Forking lets subsystems draw randomness without perturbing each
        other's streams (adding a component does not change the bytes every
        other component sees).
        """
        return DeterministicRandom(sha256(self._state, b"fork", label))

    def randint(self, low: int, high: int) -> int:
        """Return a uniform integer in the inclusive range [low, high]."""
        if low > high:
            raise ValueError("low must not exceed high")
        span = high - low + 1
        # Rejection sampling over the next power-of-two range for uniformity.
        nbytes = (span.bit_length() + 7) // 8
        bound = 1 << (nbytes * 8)
        limit = bound - (bound % span)
        while True:
            value = int.from_bytes(self.bytes(nbytes), "big")
            if value < limit:
                return low + (value % span)

    def random(self) -> float:
        """Return a uniform float in [0, 1)."""
        return int.from_bytes(self.bytes(7), "big") / (1 << 56)

    def expovariate(self, rate: float) -> float:
        """Return an exponentially distributed sample with the given rate."""
        import math

        if rate <= 0:
            raise ValueError("rate must be positive")
        # 1 - random() is in (0, 1], so log() is defined.
        return -math.log(1.0 - self.random()) / rate

    def choice(self, items: "list"):
        """Return a uniformly chosen element of ``items``."""
        if not items:
            raise ValueError("cannot choose from an empty list")
        return items[self.randint(0, len(items) - 1)]

    def shuffle(self, items: "list") -> None:
        """Shuffle ``items`` in place (Fisher-Yates)."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]
