"""Decentralized PALAEMON: secret sharing between service instances.

The paper evaluates "the retrieval of keys from remote PALAEMON services
... when using PALAEMON in a decentralized fashion" (Fig 12) and lists
"secret sharing between service instances" among the features absent from
other KMSs (§VII). This module implements that federation layer:

- instances *peer* after mutually attesting (each verifies the other's
  CA certificate, so only genuine PALAEMON builds join the mesh);
- a policy's secrets can be fetched from a peer when the local instance
  does not hold the policy, subject to the same export rules that govern
  cross-policy imports;
- all peer traffic is modelled over TLS, so the Fig 12 benchmark's
  geography sensitivity comes from connection establishment.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

import repro.errors as errors
from repro.core.dispatch import AUTH_PEER, DEFAULT_REGISTRY, DispatchContext
from repro.core.service import PalaemonService
from repro.crypto.primitives import DeterministicRandom, hkdf, sha256
from repro.crypto.signatures import PublicKey
from repro.crypto.symmetric import SecretBox
from repro.errors import (
    AccessDeniedError,
    AttestationError,
    PolicyNotFoundError,
    ReproError,
)
from repro.sim.core import Event, ProcessInterrupt, Simulator
from repro.sim.network import Network, Site, rtt_between
from repro.sim.retry import RetryPolicy
from repro.tls.handshake import handshake_latency


@dataclass
class PeerLink:
    """An attested, long-lived connection to a remote instance."""

    peer: "FederatedInstance"
    established: bool = False
    requests: int = 0
    #: AEAD box for link traffic in network mode (None in legacy mode).
    box: Optional[SecretBox] = field(default=None, repr=False)


class FederatedInstance:
    """A PALAEMON instance participating in a federation mesh.

    Two transport modes:

    - **legacy** (``network=None``) — peer traffic is modelled as pure
      latency (:func:`rtt_between`); the remote handler runs in-process.
      Kept because it is what single-threaded benchmarks (Fig 12) need.
    - **network** (``network`` given) — every instance owns a real
      ``fed-{name}`` endpoint and a serve loop; fetches are request/reply
      messages that can be dropped, duplicated, delayed, or blacked out
      by an attached :class:`~repro.sim.faults.FaultPlan`, and payloads
      cross the wire AEAD-sealed under a per-link key derived at peering
      (the paper's "all peer traffic is TLS", checkable via the wire log).
    """

    def __init__(self, service: PalaemonService, site: Site,
                 ca_root: PublicKey,
                 network: Optional[Network] = None,
                 rng: Optional[DeterministicRandom] = None) -> None:
        self.service = service
        self.site = site
        self.ca_root = ca_root
        self._links: Dict[str, PeerLink] = {}
        self.network = network
        self._rng = rng or DeterministicRandom(
            b"federation:" + service.name.encode())
        self._request_seq = 0
        #: Serve endpoint (requests in) and client endpoint (replies in).
        #: Distinct so the serve loop's mailbox getter can never consume a
        #: reply meant for an in-flight fetch.
        self.endpoint = None
        self.client_endpoint = None
        if network is not None:
            self.endpoint = network.endpoint(f"fed-{service.name}", site)
            self.client_endpoint = network.endpoint(
                f"fed-{service.name}-client", site)
            self.simulator.process(self._serve_loop(),
                                   name=f"fed-serve-{service.name}")

    @property
    def simulator(self) -> Simulator:
        return self.service.simulator

    @property
    def name(self) -> str:
        return self.service.name

    # -- peering ---------------------------------------------------------

    def peer_with(self, other: "FederatedInstance",
                  ) -> Generator[Event, Any, None]:
        """Mutually attest and establish a persistent TLS link."""
        for side, counterpart in ((self, other), (other, self)):
            certificate = counterpart.service.certificate
            if certificate is None:
                raise AttestationError(
                    f"instance {counterpart.name!r} has no CA certificate")
            certificate.verify(now=self.simulator.now,
                               trusted_root=side.ca_root)
            if certificate.public_key != counterpart.service.public_key:
                raise AttestationError(
                    f"instance {counterpart.name!r} presented a certificate "
                    f"for a different key")
        yield self.simulator.timeout(
            handshake_latency(self.site, other.site))
        link_key = None
        if self.network is not None and other.network is not None:
            # Per-link AEAD key, derived at peering like a TLS master
            # secret; both sides hold the same key but fork their own
            # nonce streams.
            link_key = hkdf(sha256(
                *sorted((self.service.public_key.to_bytes(),
                         other.service.public_key.to_bytes()))),
                b"palaemon-federation-link")
        self._links[other.name] = PeerLink(
            peer=other, established=True,
            box=SecretBox(link_key, self._rng.fork(
                b"link:" + other.name.encode())) if link_key else None)
        other._links[self.name] = PeerLink(
            peer=self, established=True,
            box=SecretBox(link_key, other._rng.fork(
                b"link:" + self.name.encode())) if link_key else None)
        for side, counterpart in ((self, other), (other, self)):
            side.service.telemetry.inc("palaemon_federation_peers_total")
            side.service.telemetry.gauge("palaemon_federation_peer_links",
                                         len(side._links))
            side.service.telemetry.audit("federation.peer",
                                         peer=counterpart.name,
                                         site=counterpart.site.value)

    def peers(self) -> List[str]:
        return sorted(self._links)

    # -- remote secret retrieval ----------------------------------------------

    def fetch_remote_secrets(self, peer_name: str, policy_name: str,
                             requesting_policy: str,
                             secret_names: List[str],
                             ) -> Generator[Event, Any, Dict[str, bytes]]:
        """Retrieve exported secrets of a policy held by a peer.

        The peer enforces the owning policy's export list against the
        *requesting* policy's name — federation does not widen access, it
        only moves it across instances. One request fetches any number of
        secrets (the Fig 12 flatness).
        """
        link = self._links.get(peer_name)
        if link is None or not link.established:
            raise AttestationError(f"no attested link to {peer_name!r}")
        telemetry = self.service.telemetry
        with telemetry.span("federation.fetch", peer=peer_name,
                            policy=policy_name):
            if (self.network is not None and link.box is not None
                    and link.peer.endpoint is not None):
                secrets = yield from self._fetch_over_network(
                    link, policy_name, requesting_policy, secret_names)
            else:
                round_trip = rtt_between(self.site, link.peer.site)
                yield self.simulator.timeout(round_trip)
                link.requests += 1
                secrets = link.peer._serve_secret_request(policy_name,
                                                          requesting_policy,
                                                          secret_names)
        telemetry.inc("palaemon_federation_fetches_total")
        telemetry.audit("federation.fetch", peer=peer_name,
                        policy=policy_name,
                        requesting_policy=requesting_policy,
                        secrets=len(secrets))
        return secrets

    def fetch_remote_secrets_with_retry(
            self, peer_name: str, policy_name: str, requesting_policy: str,
            secret_names: List[str],
            retry_policy: Optional[RetryPolicy] = None,
            rng: Optional[DeterministicRandom] = None,
            ) -> Generator[Event, Any, Dict[str, bytes]]:
        """:meth:`fetch_remote_secrets` under a bounded retry budget.

        The default policy gives every attempt a 1 s deadline, so a
        partition turns into :class:`DeadlineExceededError` + backoff
        instead of an unbounded hang; if the partition outlasts the
        budget, :class:`~repro.errors.RetryExhaustedError` propagates.
        """
        retry_policy = retry_policy or RetryPolicy(
            max_attempts=5, base_delay=0.1, attempt_timeout=1.0)
        rng = rng or self._rng.fork(b"fetch-retry")
        result = yield self.simulator.process(retry_policy.call(
            self.simulator,
            lambda: self.fetch_remote_secrets(
                peer_name, policy_name, requesting_policy, secret_names),
            rng, operation="federation.fetch",
            telemetry=self.service.telemetry),
            name=f"fed-fetch-retry-{self.name}")
        return result

    def _fetch_over_network(self, link: PeerLink, policy_name: str,
                            requesting_policy: str, secret_names: List[str],
                            ) -> Generator[Event, Any, Dict[str, bytes]]:
        """One sealed request/reply over the message fabric."""
        self._request_seq += 1
        rid = self._request_seq
        request = {"kind": "fetch", "rid": rid, "policy": policy_name,
                   "requesting_policy": requesting_policy,
                   "secrets": list(secret_names)}
        self.client_endpoint.send(
            link.peer.endpoint,
            {"from": self.name, "data": link.box.seal(pickle.dumps(request))},
            size_bytes=512, reply_to=self.client_endpoint)
        link.requests += 1
        while True:
            pending = self.client_endpoint.receive()
            try:
                message = yield pending
            except ProcessInterrupt:
                # Abandoned by a with_timeout deadline: release the
                # mailbox getter so a retry sees the next reply.
                self.client_endpoint.inbox.cancel(pending)
                raise
            payload = message.payload
            if not isinstance(payload, dict) or "data" not in payload:
                continue
            peer_link = self._links.get(payload.get("from"))
            if peer_link is None or peer_link.box is None:
                continue
            reply = pickle.loads(peer_link.box.open(payload["data"]))
            if reply.get("rid") != rid:
                continue  # stale reply from a timed-out attempt
            if "error_kind" in reply:
                exc_cls = getattr(errors, reply["error_kind"], ReproError)
                raise exc_cls(reply["message"])
            return reply["secrets"]

    def _serve_loop(self) -> Generator[Event, Any, None]:
        """Answer sealed requests arriving on the serve endpoint.

        A Byzantine or faulty sender cannot crash the loop: messages that
        are malformed, from unknown peers, or fail AEAD verification are
        dropped like a TLS alert. Well-formed requests go through the
        service's dispatch pipeline (``federation.<kind>`` routes), so
        refusals travel back as typed error replies (``error_kind`` names
        the exception class) and the client re-raises the *same* verdict
        it would get in-process — including ``unknown_route`` for kinds
        the registry does not know.
        """
        from repro.errors import CryptoError
        from repro.sim.resources import StoreClosed

        while True:
            try:
                message = yield self.endpoint.receive()
            except StoreClosed:
                return
            payload = message.payload
            if not isinstance(payload, dict) or "data" not in payload:
                continue
            link = self._links.get(payload.get("from"))
            if link is None or link.box is None:
                continue
            try:
                request = pickle.loads(link.box.open(payload["data"]))
            except CryptoError:
                continue
            if not isinstance(request, dict):
                continue
            route_request = {key: value for key, value in request.items()
                             if key not in ("kind", "rid")}
            route_request["route"] = f"federation.{request.get('kind')}"
            outcome = self.service.dispatcher.handle(
                route_request, transport="federation",
                peer=payload.get("from"), target=self)
            reply: Dict[str, Any] = {"rid": request.get("rid")}
            if "error" in outcome:
                reply["error_kind"] = outcome["kind"]
                reply["message"] = outcome["error"]
                reply["code"] = outcome["code"]
            else:
                reply["secrets"] = outcome["ok"]
            if message.reply_to is not None:
                sealed = link.box.seal(pickle.dumps(reply))
                # Size the reply by its sealed payload, so the latency
                # model reflects the secrets actually shipped.
                self.endpoint.send(
                    message.reply_to,
                    {"from": self.name, "data": sealed},
                    size_bytes=len(sealed))

    def _serve_secret_request(self, policy_name: str, requesting_policy: str,
                              secret_names: List[str]) -> Dict[str, bytes]:
        policy = self.service.store.get("policies", policy_name)
        if policy is None:
            raise PolicyNotFoundError(
                f"peer {self.name!r} has no policy {policy_name!r}")
        secrets = self.service.store.get("secrets", policy_name)
        result: Dict[str, bytes] = {}
        for name in secret_names:
            if not policy.exports_secret_to(name, requesting_policy):
                self.service.telemetry.audit(
                    "federation.serve", policy=policy_name,
                    requesting_policy=requesting_policy, secret=name,
                    result="denied")
                raise AccessDeniedError(
                    f"policy {policy_name!r} does not export {name!r} to "
                    f"{requesting_policy!r}")
            result[name] = secrets[name].value
        self.service.telemetry.audit(
            "federation.serve", policy=policy_name,
            requesting_policy=requesting_policy, secrets=len(result),
            result="served")
        return result


@DEFAULT_REGISTRY.operation(
    "federation.fetch", fields=("policy", "requesting_policy", "secrets"),
    auth=AUTH_PEER, serving_required=False, transports=("federation",),
    audit=("federation.serve",),
    summary="serve a peer's exported-secret fetch (export-list enforced)")
def _federation_fetch(ctx: DispatchContext) -> Dict[str, bytes]:
    return ctx.target._serve_secret_request(
        ctx.request["policy"], ctx.request["requesting_policy"],
        ctx.request["secrets"])


class Federation:
    """Convenience wrapper: a fully-meshed set of federated instances."""

    def __init__(self) -> None:
        self.instances: Dict[str, FederatedInstance] = {}

    def add(self, instance: FederatedInstance) -> None:
        self.instances[instance.name] = instance

    def connect_all(self) -> Generator[Event, Any, None]:
        """Peer every pair of instances (sequentially, for determinism)."""
        names = sorted(self.instances)
        for i, left in enumerate(names):
            for right in names[i + 1:]:
                yield self.instances[left].simulator.process(
                    self.instances[left].peer_with(self.instances[right]))

    def locate_policy(self, policy_name: str) -> Optional[str]:
        """Name of an instance holding the policy, if any."""
        for name in sorted(self.instances):
            instance = self.instances[name]
            if instance.service.store.get("policies", policy_name) is not None:
                return name
        return None
