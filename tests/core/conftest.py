"""Shared fixtures for PALAEMON core tests.

These build a complete functional deployment: a platform, an IAS, a CA, a
PALAEMON instance with a board evaluator, a client, and a sample application
image — the smallest assembly in which every §III/§IV protocol can run.
"""

import pytest

from repro.core.board import ApprovalService, BoardEvaluator
from repro.core.ca import PalaemonCA
from repro.core.client import PalaemonClient
from repro.core.policy import (
    BoardSpec,
    PolicyBoardMember,
    SecurityPolicy,
    ServiceSpec,
)
from repro.core.secrets import SecretKind, SecretSpec
from repro.core.service import PalaemonService
from repro.crypto.certificates import self_signed_certificate
from repro.crypto.primitives import DeterministicRandom
from repro.crypto.signatures import KeyPair
from repro.fs.blockstore import BlockStore
from repro.sim.core import Simulator
from repro.sim.network import Site
from repro.tee.ias import IntelAttestationService
from repro.tee.image import build_image
from repro.tee.platform import SGXPlatform


class Deployment:
    """A fully wired PALAEMON deployment for tests."""

    def __init__(self, seed: bytes = b"deployment",
                 board_members: int = 3, board_threshold: int = 2,
                 veto_members=()):
        self.rng = DeterministicRandom(seed)
        self.simulator = Simulator()
        self.platform = SGXPlatform(self.simulator, "node-1",
                                    self.rng.fork(b"platform"))
        self.ias = IntelAttestationService(self.simulator, Site.IAS_US,
                                           self.rng.fork(b"ias"))
        self.ias.register_platform(
            self.platform.quoting_enclave.attestation_public_key,
            self.platform.microcode.revision)

        # Board members with approval services.
        self.approval_services = {}
        self.member_keys = {}
        members = []
        for index in range(board_members):
            name = f"member-{index}"
            keys = KeyPair.generate(self.rng.fork(name.encode()), bits=512)
            self.member_keys[name] = keys
            certificate = self_signed_certificate(name, keys)
            endpoint = f"approval-{name}"
            self.approval_services[endpoint] = ApprovalService(
                self.simulator, name, keys)
            members.append(PolicyBoardMember(
                name=name, certificate=certificate,
                approval_endpoint=endpoint, veto=(name in veto_members)))
        self.board = BoardSpec(members=tuple(members),
                               threshold=board_threshold)
        self.evaluator = BoardEvaluator(self.simulator,
                                        self.approval_services)

        # The PALAEMON instance and its CA.
        self.volume = BlockStore("palaemon-volume")
        self.palaemon = PalaemonService(
            self.platform, self.volume, self.rng.fork(b"palaemon"),
            board_evaluator=self.evaluator)
        self.palaemon.platform_registry.enroll(
            self.platform.platform_id,
            self.platform.quoting_enclave.attestation_public_key)
        self.ca = PalaemonCA(self.platform, self.ias,
                             frozenset({self.palaemon.mrenclave}),
                             self.rng.fork(b"ca"))
        self.start_palaemon()
        self.palaemon.obtain_certificate(self.ca)

        # A client that has attested the instance.
        self.client = PalaemonClient("client-1", self.rng.fork(b"client"))
        self.client.attest_instance_via_ca(self.palaemon,
                                           self.ca.root_public_key,
                                           now=self.simulator.now)

        # A sample application.
        self.app_image = build_image("ml-engine", seed=b"v1")

    def start_palaemon(self):
        self.simulator.run_process(self.palaemon.start(),
                                   name="palaemon-start")

    def stop_palaemon(self):
        self.simulator.run_process(self.palaemon.shutdown(),
                                   name="palaemon-stop")

    def make_policy(self, name="ml_policy", service_name="ml_app",
                    strict_mode=False, with_board=True, image=None,
                    injection_files=None, secrets=None, imports=(),
                    platforms=None):
        image = image or self.app_image
        if secrets is None:
            secrets = [SecretSpec(name="API_KEY", kind=SecretKind.RANDOM,
                                  size=32)]
        return SecurityPolicy(
            name=name,
            services=[ServiceSpec(
                name=service_name,
                image_name=image.name,
                command=["python", "/app.py"],
                environment={"MODE": "production"},
                mrenclaves=[image.mrenclave()],
                platforms=(platforms if platforms is not None else []),
                injection_files=dict(injection_files or {}),
                strict_mode=strict_mode,
            )],
            secrets=list(secrets),
            imports=list(imports),
            board=self.board if with_board else None,
        )

    def evidence_for(self, policy_name, service_name="ml_app", image=None,
                     tls_keys=None, platform=None):
        """Produce attestation evidence as the SCONE runtime would (§IV-A)."""
        from repro.core.attestation import AttestationEvidence
        from repro.crypto.primitives import sha256

        platform = platform or self.platform
        image = image or self.app_image
        enclave = platform.launch_instant(image)
        tls_keys = tls_keys or KeyPair.generate(
            self.rng.fork(b"tls:" + policy_name.encode()), bits=512)
        quote = platform.quoting_enclave.quote(
            enclave, sha256(tls_keys.public.to_bytes()))
        return AttestationEvidence(quote=quote, policy_name=policy_name,
                                   service_name=service_name,
                                   tls_public_key=tls_keys.public)


@pytest.fixture()
def deployment():
    return Deployment()
