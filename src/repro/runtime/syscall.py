"""Syscall-shield cost model.

Every syscall an enclave makes crosses the enclave boundary: arguments are
checked and copied out, the host syscall runs, results are copied back in.
The per-call overhead differs by execution mode and microcode level and is
the dominant term in the macro-benchmark slowdowns (Figs 14-17). This
module gives applications a uniform way to account for their syscall mix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import calibration
from repro.tee.enclave import ExecutionMode


@dataclass(frozen=True)
class SyscallProfile:
    """A request's syscall mix: how many boundary crossings, how many bytes.

    Macro-benchmark applications declare one profile per request type (e.g.
    a memcached GET does ~2 syscalls moving ~1.2 kB).
    """

    syscalls: int
    copied_bytes: int = 0
    #: Host-side time of the syscalls themselves (mode-independent).
    host_seconds: float = 0.0

    def cost_seconds(self, mode: ExecutionMode,
                     microcode: calibration.MicrocodeLevel) -> float:
        """Total time for this profile in the given mode."""
        cost = self.host_seconds
        if mode is ExecutionMode.NATIVE:
            return cost
        cost += self.syscalls * calibration.SYSCALL_SHIELD_SECONDS
        cost += self.copied_bytes * 0.2e-9
        if mode is ExecutionMode.EMULATED:
            cost += self.syscalls * calibration.EMU_TRANSITION_SECONDS
        else:
            cost += self.syscalls * microcode.enclave_exit_seconds
        return cost


def mode_slowdown(profile: SyscallProfile, cpu_seconds: float,
                  mode: ExecutionMode,
                  microcode: calibration.MicrocodeLevel) -> float:
    """The mode's slowdown factor for a request with the given CPU work."""
    native = cpu_seconds + profile.host_seconds
    shielded = cpu_seconds + profile.cost_seconds(mode, microcode)
    return shielded / native if native > 0 else 1.0
