"""Secure update flows (§III-E).

Three update shapes, all governed by policy boards:

1. **Application update** — a new image version means a new MRENCLAVE and a
   new file-system tag; the policy must be updated (board-approved) to list
   them before the new version can attest.
2. **Image/application policy intersection** — an image provider exports
   the (MRE, tag) combinations it currently vouches for; application
   policies import them and PALAEMON only admits combinations present in
   *both* sets, so revoking a combination upstream disables it everywhere.
3. **PALAEMON/CA update** — a new PALAEMON version requires a new CA whose
   embedded allow-list includes the new MRE; deploying the new CA is itself
   a board-approved operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.core.board import AccessRequest, BoardEvaluator
from repro.core.ca import PalaemonCA
from repro.core.policy import BoardSpec, SecurityPolicy
from repro.crypto.certificates import Certificate
from repro.crypto.primitives import DeterministicRandom, sha256
from repro.errors import UpdateError


@dataclass(frozen=True)
class ImageRelease:
    """One vouched-for (MRENCLAVE, file-system tag) combination."""

    mrenclave: bytes
    fs_tag: bytes
    version: str


@dataclass
class ImagePolicyExport:
    """What an image provider publishes for downstream policies (§III-E).

    The provider curates e.g. a Python interpreter image; each release adds
    a combination, each revocation (vulnerability discovered) removes one.
    """

    image_name: str
    releases: List[ImageRelease] = field(default_factory=list)

    def add_release(self, release: ImageRelease) -> None:
        self.releases.append(release)

    def revoke(self, version: str) -> None:
        remaining = [release for release in self.releases
                     if release.version != version]
        if len(remaining) == len(self.releases):
            raise UpdateError(f"no release {version!r} to revoke")
        self.releases = remaining

    def combinations(self) -> Set[Tuple[bytes, bytes]]:
        return {(release.mrenclave, release.fs_tag)
                for release in self.releases}


def intersect_permitted(image_export: ImagePolicyExport,
                        app_allowed: Set[Tuple[bytes, bytes]],
                        ) -> List[Tuple[bytes, bytes]]:
    """Combinations permitted by *both* the image and application policies.

    An application runs only with combinations in this intersection; if the
    image provider revokes a combination, it drops out automatically even if
    the application policy still lists it.
    """
    return sorted(image_export.combinations() & app_allowed)


def apply_image_export(policy: SecurityPolicy,
                       image_export: ImagePolicyExport,
                       app_allowed: Optional[Set[Tuple[bytes, bytes]]] = None,
                       ) -> SecurityPolicy:
    """Refresh a policy's permitted combinations from an image export.

    With ``app_allowed`` given, the intersection rule applies; without it,
    the application accepts whatever the image provider currently vouches
    for (the simple import case).
    """
    if app_allowed is None:
        permitted = sorted(image_export.combinations())
    else:
        permitted = intersect_permitted(image_export, app_allowed)
    policy.permitted_combinations = permitted
    return policy


def prepare_application_update(policy: SecurityPolicy, service_name: str,
                               new_mrenclave: bytes,
                               keep_old: bool = True) -> SecurityPolicy:
    """Produce the updated policy document admitting a new application MRE.

    ``keep_old`` keeps the previous MREs listed during a rolling upgrade;
    dropping them retires the old version. The returned document still has
    to pass the policy board via ``update_policy``.
    """
    service = policy.service(service_name)
    if new_mrenclave in service.mrenclaves:
        raise UpdateError("the new MRENCLAVE is already permitted")
    if keep_old:
        service.mrenclaves = list(service.mrenclaves) + [new_mrenclave]
    else:
        service.mrenclaves = [new_mrenclave]
    return policy


class CAUpdateCoordinator:
    """Board-governed updates of the PALAEMON CA (§III-B, §III-E).

    The CA's MRE allow-list is embedded in its binary, so an update is the
    deployment of a *new CA*. The coordinator requires the PALAEMON board's
    quorum before constructing the successor.
    """

    def __init__(self, board: BoardSpec, evaluator: BoardEvaluator,
                 requester: Certificate) -> None:
        self.board = board
        self.evaluator = evaluator
        self.requester = requester

    def approve_and_build(self, current_ca: PalaemonCA,
                          new_mrenclaves: FrozenSet[bytes],
                          rng: DeterministicRandom,
                          version: str) -> PalaemonCA:
        """Run the board round; build the successor CA only on approval."""
        digest = sha256(b"ca-update", version.encode(),
                        *sorted(new_mrenclaves))
        request = AccessRequest(
            policy_name="palaemon-ca", operation="update",
            requester_fingerprint=self.requester.fingerprint(),
            change_digest=digest)
        outcome = self.evaluator.evaluate_local(self.board, request)
        BoardEvaluator.enforce(self.board, request, outcome)
        return current_ca.updated(new_mrenclaves, rng, version=version)
