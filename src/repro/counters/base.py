"""The monotonic counter interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Generator

from repro.sim.core import Event


class MonotonicCounter(ABC):
    """A counter that can only move forward.

    ``increment`` is a simulation process because every implementation has a
    distinctive time cost — that cost *is* the experiment in Fig 10.
    """

    @abstractmethod
    def increment(self) -> Generator[Event, Any, int]:
        """Increment and return the new value (a simulation process)."""

    @abstractmethod
    def read(self) -> int:
        """Return the current value."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Display name used in benchmark tables."""
