"""Tests for transparent secret injection into config files."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PolicyError
from repro.fs.injection import InjectedFileView, find_variables, inject_secrets


class TestFindVariables:
    def test_finds_variables(self):
        content = b"password = $$PALAEMON$DB_PASSWORD$$\nkey = $$PALAEMON$TLS_KEY$$"
        assert find_variables(content) == ["DB_PASSWORD", "TLS_KEY"]

    def test_none_found(self):
        assert find_variables(b"plain config, no secrets") == []

    def test_malformed_markers_ignored(self):
        assert find_variables(b"$$PALAEMON$lowercase$$ $$PALAEMON$$") == []

    def test_repeat_variable_listed_each_time(self):
        content = b"$$PALAEMON$K$$ and again $$PALAEMON$K$$"
        assert find_variables(content) == ["K", "K"]


class TestInjectSecrets:
    def test_basic_replacement(self):
        content = b"password = $$PALAEMON$DB_PASSWORD$$"
        result = inject_secrets(content, {"DB_PASSWORD": b"hunter2"})
        assert result == b"password = hunter2"

    def test_multiple_and_repeated(self):
        content = b"a=$$PALAEMON$X$$ b=$$PALAEMON$Y$$ c=$$PALAEMON$X$$"
        result = inject_secrets(content, {"X": b"1", "Y": b"2"})
        assert result == b"a=1 b=2 c=1"

    def test_missing_secret_raises(self):
        with pytest.raises(PolicyError, match="UNDEFINED"):
            inject_secrets(b"$$PALAEMON$UNDEFINED$$", {})

    def test_no_variables_passthrough(self):
        content = b"[section]\nvalue = 42\n"
        assert inject_secrets(content, {}) == content

    def test_binary_secret_values(self):
        result = inject_secrets(b"key=$$PALAEMON$K$$", {"K": b"\x00\xff\x10"})
        assert result == b"key=\x00\xff\x10"

    def test_extra_secrets_ignored(self):
        result = inject_secrets(b"plain", {"UNUSED": b"v"})
        assert result == b"plain"

    @given(st.binary(max_size=200).filter(lambda b: b"$$PALAEMON$" not in b))
    def test_no_marker_means_identity(self, content):
        assert inject_secrets(content, {"K": b"v"}) == content


class TestInjectedFileView:
    def test_reads_served_from_memory(self):
        view = InjectedFileView("/etc/app.conf",
                                b"secret=$$PALAEMON$API_KEY$$",
                                {"API_KEY": b"abc123"})
        assert view.read() == b"secret=abc123"
        assert view.read() == b"secret=abc123"
        assert view.reads == 2

    def test_variable_count(self):
        view = InjectedFileView("/c", b"$$PALAEMON$A$$ $$PALAEMON$B$$",
                                {"A": b"1", "B": b"2"})
        assert view.variable_count == 2

    def test_template_preserved(self):
        template = b"x=$$PALAEMON$A$$"
        view = InjectedFileView("/c", template, {"A": b"1"})
        assert view.template == template
        assert view.content == b"x=1"
