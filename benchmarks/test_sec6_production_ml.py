"""§VI — the production handwriting-recognition use case.

Per-image inference latency: 323 ms native vs 1202 ms under PALAEMON
(a 3.7x slowdown, still under the 1.5 s acceptability bound). The pipeline
is run end to end: encrypted model + encrypted customer image in, encrypted
result out, nothing in plaintext on either untrusted volume.
"""

from repro import calibration
from repro.apps.mlservice import InferenceService
from repro.benchlib.tables import PaperComparison, format_table, paper_vs_measured
from repro.sim.core import Simulator
from repro.tee.enclave import ExecutionMode

from benchmarks.conftest import run_once


def _run_pipeline(mode, images=10):
    simulator = Simulator()
    service = InferenceService(simulator, mode=mode)
    service.install_model("handwriting-v3", b"weights" * 1000)
    for index in range(images):
        service.submit_image(f"img-{index}", b"scan-%d" % index)

    def main():
        start = simulator.now
        for index in range(images):
            yield simulator.process(
                service.process_image(f"img-{index}", "handwriting-v3"))
        return (simulator.now - start) / images

    per_image = simulator.run_process(main())
    return per_image, service


def test_sec6_production_ml(benchmark):
    def experiment():
        native, _ = _run_pipeline(ExecutionMode.NATIVE)
        palaemon, service = _run_pipeline(ExecutionMode.HARDWARE)
        return native, palaemon, service

    native, palaemon, service = run_once(benchmark, experiment)

    print()
    print(format_table(
        ["variant", "per-image latency (ms)", "slowdown"],
        [["native", native * 1e3, 1.0],
         ["Palaemon", palaemon * 1e3, palaemon / native]],
        title="SecVI: production handwriting-inference latency"))

    comparisons = [
        PaperComparison("native latency", 0.323, native, unit="s",
                        rel_tolerance=0.05),
        PaperComparison("Palaemon latency", 1.202, palaemon, unit="s",
                        rel_tolerance=0.05),
        PaperComparison("slowdown", 3.7, palaemon / native,
                        rel_tolerance=0.05),
    ]
    print(paper_vs_measured(comparisons, title="paper vs measured"))
    for comparison in comparisons:
        assert comparison.within_tolerance, comparison.metric

    # The acceptability bound the customer applied: under 1.5 s.
    assert palaemon < 1.5

    # Functional + confidentiality checks on the full pipeline.
    assert service.images_processed == 10
    assert service.fetch_result("img-0").startswith(b"text:")
    assert service.company_volume.scan_for(b"weights") == []
    assert service.customer_volume.scan_for(b"scan-0") == []
