"""Fig 9 — startup latency and throughput across attestation variants.

Closed-loop parallel-start sweeps for Native / SGX-without-attestation /
PALAEMON / IAS. The reproduced shape: Native ~3700 starts/s; SGX w/o
attestation collapses to ~100/s (driver EPC lock) and does not scale with
parallelism; PALAEMON saturates near 90/s at ~15-30 ms latency; IAS peaks
near 40/s only under heavy parallelism at >1 s latency.
"""

from repro import calibration
from repro.benchlib.harness import concurrency_sweep
from repro.benchlib.tables import PaperComparison, format_table, paper_vs_measured
from repro.runtime.startup import AttestationVariant, StartupModel

from benchmarks.conftest import run_once

_CONCURRENCIES = {
    AttestationVariant.NATIVE: (1, 4, 8, 16),
    AttestationVariant.SGX_ONLY: (1, 4, 16, 32),
    AttestationVariant.PALAEMON: (1, 2, 4, 8),
    AttestationVariant.IAS: (1, 15, 60),
}


def _setup(variant):
    def setup(simulator):
        model = StartupModel(simulator)

        def factory(_request_id):
            yield simulator.process(model.start_one(variant))

        return factory

    return setup


def _sweep_all():
    results = {}
    for variant, concurrencies in _CONCURRENCIES.items():
        results[variant] = concurrency_sweep(
            variant.value, _setup(variant), concurrencies, duration=3.0)
    return results


def test_fig9_startup_scaling(benchmark):
    results = run_once(benchmark, _sweep_all)

    rows = []
    for variant, result in results.items():
        for point in result.points:
            rows.append([variant.value, int(point.offered_rate),
                         point.achieved_rate, point.latency.mean * 1e3])
    print()
    print(format_table(
        ["variant", "parallel starts", "starts/s", "mean latency (ms)"],
        rows, title="Fig 9: startup latency/throughput by attestation"))

    peaks = {variant: result.peak_rate()
             for variant, result in results.items()}
    comparisons = [
        PaperComparison("Native peak", 3_700, peaks[AttestationVariant.NATIVE],
                        unit="starts/s"),
        PaperComparison("SGX w/o peak", 100,
                        peaks[AttestationVariant.SGX_ONLY], unit="starts/s"),
        PaperComparison("Palaemon peak", 90,
                        peaks[AttestationVariant.PALAEMON], unit="starts/s"),
        PaperComparison("IAS peak", 40, peaks[AttestationVariant.IAS],
                        unit="starts/s", rel_tolerance=0.4),
    ]
    print(paper_vs_measured(comparisons, title="paper vs measured"))
    for comparison in comparisons:
        assert comparison.within_tolerance, comparison.metric

    # Persist machine-readable curves for external plotting.
    from repro.benchlib.export import export_experiment

    export_experiment("results/fig9.json", "fig9",
                      curves=list(results.values()),
                      comparisons=comparisons)

    # Ordering and scaling behaviour.
    assert (peaks[AttestationVariant.NATIVE]
            > peaks[AttestationVariant.SGX_ONLY]
            > peaks[AttestationVariant.PALAEMON]
            > peaks[AttestationVariant.IAS])

    # SGX w/o does not scale with parallelism (driver lock).
    sgx_points = results[AttestationVariant.SGX_ONLY].points
    assert sgx_points[-1].achieved_rate < sgx_points[1].achieved_rate * 1.25

    # IAS only approaches its peak at high parallelism, at >1 s latency.
    ias_points = results[AttestationVariant.IAS].points
    assert ias_points[-1].achieved_rate > 2 * ias_points[0].achieved_rate
    assert ias_points[-1].latency.mean > 1.0
