#!/usr/bin/env python3
"""Quickstart: stand up PALAEMON, create a policy, attest an app, get secrets.

This walks the minimal end-to-end path of the paper's §IV:

1. build a simulated SGX platform and an IAS;
2. start a PALAEMON instance (Fig 6 startup protocol) and certify it via
   the PALAEMON CA;
3. a client attests the instance and creates a security policy from a
   YAML document shaped like the paper's List 1;
4. the SCONE runtime launches the application, which is attested and
   receives its arguments, environment, file-system key, and injected
   config file — without any source-code change.

Run:  python examples/quickstart.py
"""

from repro.core.ca import PalaemonCA
from repro.core.client import PalaemonClient
from repro.core.policy import SecurityPolicy
from repro.core.service import PalaemonService
from repro.crypto.primitives import DeterministicRandom
from repro.fs.blockstore import BlockStore
from repro.runtime.scone import SconeRuntime
from repro.sim.core import Simulator
from repro.sim.network import Site
from repro.tee.ias import IntelAttestationService
from repro.tee.image import build_image
from repro.tee.platform import SGXPlatform

POLICY_YAML = """
name: quickstart_policy
services:
  - name: web_app
    image_name: web-app-image
    command: app --listen=0.0.0.0:8443
    environment:
      DEPLOYMENT: production
      API_KEY: $$PALAEMON$API_KEY$$
    mrenclaves: ["$APP_MRENCLAVE"]
    inject_files:
      /etc/app/tls.conf: "private_key = $$PALAEMON$TLS_KEY$$\\n"
secrets:
  - name: API_KEY
    kind: random
    size: 32
  - name: TLS_KEY
    kind: x509
    common_name: app.example.com
"""


def main() -> None:
    rng = DeterministicRandom(b"quickstart")
    simulator = Simulator()

    # --- infrastructure: a platform, IAS, PALAEMON, and its CA ------------
    platform = SGXPlatform(simulator, "node-1", rng.fork(b"platform"))
    ias = IntelAttestationService(simulator, Site.IAS_US, rng.fork(b"ias"))
    ias.register_platform(platform.quoting_enclave.attestation_public_key,
                          platform.microcode.revision)

    palaemon = PalaemonService(platform, BlockStore("palaemon-volume"),
                               rng.fork(b"palaemon"))
    palaemon.platform_registry.enroll(
        platform.platform_id,
        platform.quoting_enclave.attestation_public_key)
    simulator.run_process(palaemon.start())
    print(f"PALAEMON instance up, MRENCLAVE "
          f"{palaemon.mrenclave.hex()[:16]}...")

    ca = PalaemonCA(platform, ias, frozenset({palaemon.mrenclave}),
                    rng.fork(b"ca"))
    palaemon.obtain_certificate(ca)
    print("PALAEMON CA issued the instance certificate (IAS-attested).")

    # --- a client attests the instance and creates a policy ---------------
    client = PalaemonClient("quickstart-client", rng.fork(b"client"))
    client.attest_instance_via_ca(palaemon, ca.root_public_key,
                                  now=simulator.now)
    print("Client attested the instance via the CA root.")

    app_image = build_image("web-app-image", seed=b"release-1")
    policy = SecurityPolicy.from_yaml(
        POLICY_YAML,
        mrenclave_registry={"APP_MRENCLAVE": app_image.mrenclave()})
    client.create_policy(palaemon, policy)
    print(f"Policy {policy.name!r} created "
          f"({len(policy.secrets)} secrets materialized).")

    # --- launch the application through the SCONE runtime -----------------
    runtime = SconeRuntime(platform, palaemon, rng.fork(b"runtime"))
    app = runtime.launch(app_image, "quickstart_policy", "web_app")
    print("Application attested and configured:")
    print(f"  argv        = {app.argv()}   (no secrets: argv is visible "
          f"through /proc outside the TEE)")
    print(f"  DEPLOYMENT  = {app.getenv('DEPLOYMENT')}")
    print(f"  API_KEY     = {len(app.getenv('API_KEY'))} bytes, "
          f"delivered via the enclave environment")
    tls_conf = app.read_file("/etc/app/tls.conf")
    print(f"  /etc/app/tls.conf starts with {tls_conf[:24]!r} "
          f"({len(tls_conf)} bytes, secret injected in enclave memory)")
    assert b"$$PALAEMON$" not in tls_conf

    # --- the shielded file system in action ------------------------------
    app.write_file("/data/records.db", b"row1,row2,row3")
    app.exit_cleanly()
    print(f"App exited cleanly; expected tag at PALAEMON: "
          f"{palaemon.get_tag_instant('quickstart_policy', 'web_app').hex()[:16]}...")

    # A restart on the same volume verifies freshness and sees the data.
    restarted = runtime.launch(app_image, "quickstart_policy", "web_app",
                               volume=app.fs.store)
    assert restarted.read_file("/data/records.db") == b"row1,row2,row3"
    print("Restart verified the volume tag and recovered the data. Done.")


if __name__ == "__main__":
    main()
