"""Tests for secret substitution into argv/env, including binary secrets.

Files take arbitrary binary secrets verbatim; argv and environment are
*strings*, so binary secrets crossing that boundary are decoded with
replacement — a lossy path callers should know about (real deployments put
binary keys in files, text tokens in argv/env, as Table I's services do).
"""

import pytest

from repro.core.secrets import SecretKind, SecretSpec

from tests.core.conftest import Deployment


@pytest.fixture()
def deployment():
    return Deployment(seed=b"substitution")


def attested_config(deployment, secret_value, where):
    policy = deployment.make_policy(secrets=[
        SecretSpec(name="S", kind=SecretKind.EXPLICIT, value=secret_value)])
    if where == "argv":
        policy.services[0].command = ["app", "--secret=$$PALAEMON$S$$"]
    elif where == "env":
        policy.services[0].environment = {"SECRET": "$$PALAEMON$S$$"}
    else:
        policy.services[0].injection_files = {
            "/etc/secret": b"value=$$PALAEMON$S$$"}
    deployment.client.create_policy(deployment.palaemon, policy)
    return deployment.palaemon.attest_application(
        deployment.evidence_for("ml_policy"))


class TestTextSecrets:
    def test_argv_substitution_exact(self, deployment):
        config = attested_config(deployment, b"token-abc123", "argv")
        assert config.command[1] == "--secret=token-abc123"

    def test_env_substitution_exact(self, deployment):
        config = attested_config(deployment, b"token-abc123", "env")
        assert config.environment["SECRET"] == "token-abc123"

    def test_file_substitution_exact(self, deployment):
        config = attested_config(deployment, b"token-abc123", "file")
        assert config.injected_files["/etc/secret"] == b"value=token-abc123"


class TestBinarySecrets:
    BINARY = b"\x00\xff\xfe binary \x80 key"

    def test_files_take_binary_verbatim(self, deployment):
        config = attested_config(deployment, self.BINARY, "file")
        assert config.injected_files["/etc/secret"] == b"value=" + self.BINARY

    def test_argv_binary_is_lossy_but_total(self, deployment):
        """Binary-to-argv never raises; non-UTF-8 bytes become U+FFFD."""
        config = attested_config(deployment, self.BINARY, "argv")
        assert config.command[1].startswith("--secret=")
        assert "�" in config.command[1]

    def test_env_binary_is_lossy_but_total(self, deployment):
        config = attested_config(deployment, self.BINARY, "env")
        assert "�" in config.environment["SECRET"]

    def test_utf8_secrets_survive_argv_exactly(self, deployment):
        value = "pässwörd-ünïcode".encode("utf-8")
        config = attested_config(deployment, value, "argv")
        assert config.command[1] == "--secret=" + value.decode("utf-8")
