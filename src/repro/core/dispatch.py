"""One operation-dispatch layer for every path into a PALAEMON instance.

The CIF guarantees (§IV-B) must hold identically however a request
arrives. Four transports reach a :class:`~repro.core.service.
PalaemonService` — the REST/TLS front-end, federation's sealed
request/reply fabric, failover replication, and the in-process
:class:`~repro.core.client.PalaemonClient` — and each used to re-implement
certificate extraction, serving checks, error mapping, and telemetry by
hand. This module replaces those four hand-rolled paths with:

- an :class:`OperationRegistry` — every operation is declared **once**
  with its route name, required request fields, auth requirement
  (client certificate / attested peer / none), handler, and audit
  metadata. The registry is the single source of truth for the route
  table in ``docs/API.md`` (:func:`render_operation_table`).
- a :class:`Dispatcher` running one middleware pipeline for every
  transport: route resolution → required-field check → serving check →
  auth → **admission control** → telemetry span/metrics → handler →
  uniform error mapping. Transports become thin codecs.
- :class:`AdmissionControl` — per-route concurrency caps with a bounded
  FIFO queue on the simulator clock. Requests beyond the queue (or whose
  queue wait exceeds the deadline) are shed with a typed
  :class:`~repro.errors.ServiceOverloadedError` (wire code
  ``overloaded``) instead of piling up — the load-shedding boundary the
  ROADMAP's "millions of users" goal needs.

Entry points, one per transport style:

- :meth:`Dispatcher.handle` — synchronous request → structured reply
  dict (``{"ok": ...}`` or ``{"error", "kind", "code"}``); never raises.
  Used by the REST server, federation serve loop, and failover backup.
- :meth:`Dispatcher.dispatch` — the same pipeline as a simulation
  process: admission may *queue* (virtual time passes) and operations
  with a timed handler pay their modelled latency. Used by the load
  benchmark (``python -m repro bench-dispatch``).
- :meth:`Dispatcher.invoke` — in-process invoker: returns the handler
  value or raises the typed error. Used by :class:`PalaemonClient`.
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Generator,
    List,
    Optional,
    Tuple,
)

from repro.errors import (
    BadRequestError,
    CertificateRequiredError,
    DeadlineExceededError,
    PeerRequiredError,
    ReproError,
    ServiceOverloadedError,
    UnknownRouteError,
)
from repro.sim.core import Event

#: Auth requirements an operation may declare.
AUTH_NONE = "none"
AUTH_CLIENT_CERTIFICATE = "client_certificate"
AUTH_PEER = "peer"

#: Markers bracketing the generated route table in ``docs/API.md``.
TABLE_BEGIN = "<!-- operation-table:begin (generated) -->"
TABLE_END = "<!-- operation-table:end -->"


def error_code(exc: BaseException) -> str:
    """Map an exception to a stable snake_case wire code.

    A class may pin its code with a ``code`` attribute
    (:class:`ServiceOverloadedError` -> ``overloaded``); otherwise the
    code is derived from the class name (``PolicyNotFoundError`` ->
    ``policy_not_found``). Anything that is not a
    :class:`~repro.errors.ReproError` is ``internal``.
    """
    if not isinstance(exc, ReproError):
        return "internal"
    pinned = getattr(type(exc), "code", None)
    if isinstance(pinned, str):
        return pinned
    name = type(exc).__name__
    if name.endswith("Error"):
        name = name[:-len("Error")]
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()


@dataclass
class DispatchContext:
    """Everything a handler may consult, resolved by the pipeline."""

    service: Any  #: the PalaemonService
    request: Dict[str, Any]
    transport: str
    certificate: Any = None  #: authenticated client certificate, if any
    peer: Optional[str] = None  #: attested peer name (federation/failover)
    target: Any = None  #: transport-specific receiver (defaults to service)


@dataclass
class Operation:
    """One declared service operation (a row of the registry)."""

    name: str
    handler: Callable[[DispatchContext], Any]
    required_fields: Tuple[str, ...] = ()
    auth: str = AUTH_NONE
    serving_required: bool = True
    #: Audit record kinds the handler emits (documentation metadata).
    audit: Tuple[str, ...] = ()
    #: Transports expected to carry this operation (documentation).
    transports: Tuple[str, ...] = ("rest", "inprocess")
    summary: str = ""
    #: Optional timed variant: a generator paying modelled latency.
    #: :meth:`Dispatcher.dispatch` prefers it; sync entry points use
    #: ``handler`` (the instant, functional path).
    process_handler: Optional[
        Callable[[DispatchContext], Generator[Event, Any, Any]]] = None


class OperationRegistry:
    """Declarative route table: name -> :class:`Operation`."""

    def __init__(self) -> None:
        self._operations: Dict[str, Operation] = {}

    def register(self, operation: Operation) -> Operation:
        if operation.name in self._operations:
            raise ValueError(
                f"operation {operation.name!r} is already registered")
        if operation.auth not in (AUTH_NONE, AUTH_CLIENT_CERTIFICATE,
                                  AUTH_PEER):
            raise ValueError(f"unknown auth requirement {operation.auth!r}")
        self._operations[operation.name] = operation
        return operation

    def operation(self, name: str, *, fields: Tuple[str, ...] = (),
                  auth: str = AUTH_NONE, serving_required: bool = True,
                  audit: Tuple[str, ...] = (),
                  transports: Tuple[str, ...] = ("rest", "inprocess"),
                  summary: str = "") -> Callable:
        """Decorator form of :meth:`register`."""

        def decorate(handler: Callable[[DispatchContext], Any]) -> Callable:
            self.register(Operation(
                name=name, handler=handler, required_fields=tuple(fields),
                auth=auth, serving_required=serving_required,
                audit=tuple(audit), transports=tuple(transports),
                summary=summary))
            return handler

        return decorate

    def attach_process_handler(self, name: str, handler: Callable) -> None:
        """Give a registered operation a timed (generator) variant."""
        self._operations[name].process_handler = handler

    def get(self, name: Any) -> Optional[Operation]:
        if not isinstance(name, str):
            return None
        return self._operations.get(name)

    def names(self) -> List[str]:
        return sorted(self._operations)

    def operations(self) -> List[Operation]:
        return [self._operations[name] for name in self.names()]


#: The registry every transport consults. Service operations are
#: registered below; federation and failover register their operations
#: when their modules import (see :func:`default_registry`).
DEFAULT_REGISTRY = OperationRegistry()


def default_registry() -> OperationRegistry:
    """The fully-populated default registry.

    Imports the federation and failover modules for their registration
    side effects (lazily, to avoid import cycles with
    ``repro.core.service``).
    """
    import repro.core.failover  # noqa: F401 - registers failover.replicate
    import repro.core.federation  # noqa: F401 - registers federation.fetch

    return DEFAULT_REGISTRY


# -- service operations (the former REST ``_route_*`` methods) -------------

_op = DEFAULT_REGISTRY.operation


@_op("policy.create", fields=("policy",), auth=AUTH_CLIENT_CERTIFICATE,
     audit=("policy.create", "board.round"),
     summary="create a policy (board-governed)")
def _policy_create(ctx: DispatchContext) -> Any:
    ctx.service.create_policy(ctx.request["policy"], ctx.certificate)
    return {"created": ctx.request["policy"].name}


@_op("policy.read", fields=("name",), auth=AUTH_CLIENT_CERTIFICATE,
     audit=("policy.read",), summary="read a policy document")
def _policy_read(ctx: DispatchContext) -> Any:
    return ctx.service.read_policy(ctx.request["name"], ctx.certificate)


@_op("policy.update", fields=("policy",), auth=AUTH_CLIENT_CERTIFICATE,
     audit=("policy.update", "board.round"),
     summary="update a policy (board-governed)")
def _policy_update(ctx: DispatchContext) -> Any:
    ctx.service.update_policy(ctx.request["policy"], ctx.certificate)
    return {"updated": ctx.request["policy"].name}


@_op("policy.delete", fields=("name",), auth=AUTH_CLIENT_CERTIFICATE,
     audit=("policy.delete", "board.round"),
     summary="delete a policy (board-governed)")
def _policy_delete(ctx: DispatchContext) -> Any:
    ctx.service.delete_policy(ctx.request["name"], ctx.certificate)
    return {"deleted": ctx.request["name"]}


@_op("policy.list", summary="list policy names")
def _policy_list(ctx: DispatchContext) -> Any:
    return ctx.service.list_policies()


@_op("app.attest", fields=("evidence",),
     audit=("attest.accept", "attest.deny", "secret.access"),
     summary="attest an application; returns its AppConfig")
def _app_attest(ctx: DispatchContext) -> Any:
    return ctx.service.attest_application(ctx.request["evidence"])


@_op("tag.get", fields=("policy", "service"),
     summary="read a service's expected file-system tag")
def _tag_get(ctx: DispatchContext) -> Any:
    return ctx.service.get_tag_instant(ctx.request["policy"],
                                       ctx.request["service"])


@_op("tag.update", fields=("policy", "service", "tag"),
     audit=("tag.update",),
     summary="record a new expected file-system tag")
def _tag_update(ctx: DispatchContext) -> Any:
    ctx.service.update_tag_instant(
        ctx.request["policy"], ctx.request["service"], ctx.request["tag"],
        clean_exit=ctx.request.get("clean_exit", False))
    return {"stored": True}


@_op("volume_tag.get", fields=("policy", "volume"),
     summary="read an encrypted volume's expected tag")
def _volume_tag_get(ctx: DispatchContext) -> Any:
    return ctx.service.get_volume_tag(ctx.request["policy"],
                                      ctx.request["volume"])


@_op("volume_tag.update", fields=("policy", "volume", "tag"),
     audit=("volume_tag.update",),
     summary="record a new expected volume tag")
def _volume_tag_update(ctx: DispatchContext) -> Any:
    ctx.service.update_volume_tag(ctx.request["policy"],
                                  ctx.request["volume"], ctx.request["tag"])
    return {"stored": True}


@_op("instance.describe", serving_required=False,
     summary="instance identity: name, MRENCLAVE, public key, certificate")
def _instance_describe(ctx: DispatchContext) -> Any:
    return {
        "name": ctx.service.name,
        "mrenclave": ctx.service.mrenclave,
        "public_key": ctx.service.public_key,
        "certificate": ctx.service.certificate,
    }


def _tag_update_process(ctx: DispatchContext,
                        ) -> Generator[Event, Any, Any]:
    """Timed tag.update: pays the real DB group-commit latency."""
    yield from ctx.service.update_tag(
        ctx.request["policy"], ctx.request["service"], ctx.request["tag"],
        clean_exit=ctx.request.get("clean_exit", False))
    return {"stored": True}


def _tag_get_process(ctx: DispatchContext) -> Generator[Event, Any, Any]:
    """Timed tag.get: pays the calibrated read latency."""
    value = yield from ctx.service.get_tag(ctx.request["policy"],
                                           ctx.request["service"])
    return value


DEFAULT_REGISTRY.attach_process_handler("tag.update", _tag_update_process)
DEFAULT_REGISTRY.attach_process_handler("tag.get", _tag_get_process)


# -- admission control ------------------------------------------------------

@dataclass(frozen=True)
class RouteLimits:
    """Admission limits for one route."""

    max_concurrency: int = 64
    max_queue: int = 128
    queue_deadline: float = 1.0


@dataclass
class _RouteAdmission:
    in_flight: int = 0
    waiters: Deque[Event] = field(default_factory=deque)


class AdmissionControl:
    """Per-route concurrency caps with a bounded, deadline-guarded queue.

    A request is *admitted* when a slot is free, *queued* (FIFO, virtual
    time) when the route is at its cap, and *shed* with
    :class:`~repro.errors.ServiceOverloadedError` when the queue is full
    (``reason="queue_full"``), when its queue wait exceeds the deadline
    (``reason="deadline"``), or — on the synchronous, zero-wait entry
    points where queueing is impossible — as soon as the cap is hit
    (``reason="at_capacity"``). Slot hand-off is FIFO: ``release``
    passes the freed slot to the oldest waiter.
    """

    def __init__(self, simulator, telemetry,
                 limits: Optional[RouteLimits] = None,
                 per_route: Optional[Dict[str, RouteLimits]] = None) -> None:
        self.simulator = simulator
        self.telemetry = telemetry
        self.default_limits = limits or RouteLimits()
        self.per_route = dict(per_route or {})
        self._routes: Dict[str, _RouteAdmission] = {}

    def limits_for(self, route: str) -> RouteLimits:
        return self.per_route.get(route, self.default_limits)

    def _state(self, route: str) -> _RouteAdmission:
        return self._routes.setdefault(route, _RouteAdmission())

    def in_flight(self, route: str) -> int:
        return self._state(route).in_flight

    def queue_depth(self, route: str) -> int:
        return len(self._state(route).waiters)

    def admit_instant(self, route: str) -> None:
        """Admit or shed immediately (synchronous transports never queue)."""
        limits = self.limits_for(route)
        state = self._state(route)
        if state.in_flight >= limits.max_concurrency:
            self._shed(route, "at_capacity")
            raise ServiceOverloadedError(
                f"route {route!r} is at its concurrency cap "
                f"({limits.max_concurrency} in flight)")
        self._enter(route, state, waited=0.0)

    def admit(self, route: str) -> Generator[Event, Any, None]:
        """Admit, queue (bounded, deadline-guarded), or shed."""
        limits = self.limits_for(route)
        state = self._state(route)
        if state.in_flight < limits.max_concurrency:
            self._enter(route, state, waited=0.0)
            return
        if len(state.waiters) >= limits.max_queue:
            self._shed(route, "queue_full")
            raise ServiceOverloadedError(
                f"route {route!r} admission queue is full "
                f"({limits.max_queue} waiting)")
        grant = self.simulator.event()
        state.waiters.append(grant)
        self.telemetry.gauge("palaemon_admission_queue_depth",
                             len(state.waiters), route=route)
        started = self.simulator.now
        try:
            yield self.simulator.with_timeout(grant, limits.queue_deadline)
        except DeadlineExceededError:
            if grant in state.waiters:
                state.waiters.remove(grant)
            elif grant.triggered:
                # The slot was handed to us at the same instant the
                # deadline fired; pass it straight on so it is not lost.
                self.release(route)
            self.telemetry.gauge("palaemon_admission_queue_depth",
                                 len(state.waiters), route=route)
            self._shed(route, "deadline")
            raise ServiceOverloadedError(
                f"route {route!r} queue wait exceeded "
                f"{limits.queue_deadline}s") from None
        self.telemetry.gauge("palaemon_admission_queue_depth",
                             len(state.waiters), route=route)
        # release() hands the slot over with in_flight already counted.
        self.telemetry.inc("palaemon_admission_admitted_total", route=route)
        self.telemetry.observe("palaemon_admission_wait_seconds",
                               self.simulator.now - started, route=route)

    def release(self, route: str) -> None:
        """Free a slot; FIFO hand-off to the oldest waiter if any."""
        state = self._state(route)
        if state.waiters:
            state.waiters.popleft().succeed()
            return  # the slot moved, in_flight is unchanged
        state.in_flight -= 1
        self.telemetry.gauge("palaemon_admission_inflight",
                             state.in_flight, route=route)

    def _enter(self, route: str, state: _RouteAdmission,
               waited: float) -> None:
        state.in_flight += 1
        self.telemetry.inc("palaemon_admission_admitted_total", route=route)
        self.telemetry.observe("palaemon_admission_wait_seconds", waited,
                               route=route)
        self.telemetry.gauge("palaemon_admission_inflight",
                             state.in_flight, route=route)

    def _shed(self, route: str, reason: str) -> None:
        self.telemetry.inc("palaemon_admission_shed_total", route=route,
                           reason=reason)


# -- the dispatcher ---------------------------------------------------------

class Dispatcher:
    """Runs the middleware pipeline for one PALAEMON instance."""

    def __init__(self, service, registry: Optional[OperationRegistry] = None,
                 admission: Optional[AdmissionControl] = None) -> None:
        self.service = service
        self.registry = (registry if registry is not None
                         else default_registry())
        self.admission = admission or AdmissionControl(
            service.simulator, service.telemetry)

    @property
    def telemetry(self):
        return self.service.telemetry

    # -- transport entry points -----------------------------------------

    def handle(self, request: Any, *, transport: str,
               certificate: Any = None, peer: Optional[str] = None,
               target: Any = None) -> Dict[str, Any]:
        """Synchronous request -> structured reply; never raises."""
        operation = None
        try:
            operation = self._resolve(request)
            self._count_request(operation.name, transport)
            value = self._run(operation, request, transport,
                              certificate=certificate, peer=peer,
                              target=target)
            return {"ok": value}
        except ReproError as exc:
            return self._error_reply(exc, operation, transport)
        except Exception as exc:  # noqa: BLE001 - serve loops never crash
            return self._crash_reply(exc, operation, transport)

    def dispatch(self, request: Any, *, transport: str = "inprocess",
                 certificate: Any = None, peer: Optional[str] = None,
                 target: Any = None,
                 ) -> Generator[Event, Any, Dict[str, Any]]:
        """The pipeline as a simulation process (queueing, timed handlers)."""
        operation = None
        try:
            operation = self._resolve(request)
            self._count_request(operation.name, transport)
            value = yield from self._run_process(
                operation, request, transport, certificate=certificate,
                peer=peer, target=target)
            return {"ok": value}
        except ReproError as exc:
            return self._error_reply(exc, operation, transport)
        except Exception as exc:  # noqa: BLE001 - serve loops never crash
            return self._crash_reply(exc, operation, transport)

    def invoke(self, route: str, *, certificate: Any = None,
               target: Any = None, **fields) -> Any:
        """In-process invoker: returns the value or raises the typed error."""
        request = dict(fields)
        request["route"] = route
        operation = self._resolve(request)
        self._count_request(operation.name, "inprocess")
        try:
            return self._run(operation, request, "inprocess",
                             certificate=certificate, peer=None,
                             target=target)
        except ReproError as exc:
            self._count_error(operation.name, "inprocess", error_code(exc))
            raise

    # -- the pipeline ----------------------------------------------------

    def _resolve(self, request: Any) -> Operation:
        if not isinstance(request, dict):
            raise BadRequestError(
                f"request must be a mapping, got {type(request).__name__}")
        route = request.get("route")
        operation = self.registry.get(route)
        if operation is None:
            raise UnknownRouteError(f"unknown route {route!r}")
        return operation

    def _admitted(self, operation: Operation, request: Dict[str, Any],
                  transport: str, certificate: Any, peer: Optional[str],
                  target: Any) -> DispatchContext:
        """Middleware prefix shared by both execution paths: serving
        check -> required fields -> auth. Admission follows (it differs
        between the instant and queued paths)."""
        if operation.serving_required:
            self.service._check_serving()
        missing = [name for name in operation.required_fields
                   if name not in request]
        if missing:
            raise BadRequestError(
                f"route {operation.name!r} missing required field(s): "
                f"{', '.join(missing)}")
        context = DispatchContext(
            service=self.service, request=request, transport=transport,
            certificate=certificate or request.get("client_certificate"),
            peer=peer, target=target if target is not None else self.service)
        if (operation.auth == AUTH_CLIENT_CERTIFICATE
                and context.certificate is None):
            raise CertificateRequiredError(
                "request carries no client certificate")
        if operation.auth == AUTH_PEER and context.peer is None:
            raise PeerRequiredError(
                f"route {operation.name!r} is only served over an "
                f"attested peer link")
        return context

    def _run(self, operation: Operation, request: Dict[str, Any],
             transport: str, *, certificate: Any, peer: Optional[str],
             target: Any) -> Any:
        context = self._admitted(operation, request, transport, certificate,
                                 peer, target)
        started = self.service.simulator.now
        self.admission.admit_instant(operation.name)
        try:
            with self.telemetry.span("dispatch." + operation.name,
                                     transport=transport):
                value = operation.handler(context)
        finally:
            self.admission.release(operation.name)
        self.telemetry.observe("palaemon_dispatch_route_seconds",
                               self.service.simulator.now - started,
                               route=operation.name, transport=transport)
        return value

    def _run_process(self, operation: Operation, request: Dict[str, Any],
                     transport: str, *, certificate: Any,
                     peer: Optional[str], target: Any,
                     ) -> Generator[Event, Any, Any]:
        simulator = self.service.simulator
        context = self._admitted(operation, request, transport, certificate,
                                 peer, target)
        started = simulator.now
        yield from self.admission.admit(operation.name)
        try:
            with self.telemetry.span("dispatch." + operation.name,
                                     transport=transport):
                if operation.process_handler is not None:
                    value = yield simulator.process(
                        operation.process_handler(context),
                        name=f"dispatch-{operation.name}")
                else:
                    value = operation.handler(context)
        finally:
            self.admission.release(operation.name)
        self.telemetry.observe("palaemon_dispatch_route_seconds",
                               simulator.now - started,
                               route=operation.name, transport=transport)
        return value

    # -- uniform error mapping -------------------------------------------

    def _count_request(self, route: str, transport: str) -> None:
        self.telemetry.inc("palaemon_dispatch_requests_total", route=route,
                           transport=transport)

    def _count_error(self, route: str, transport: str, code: str) -> None:
        self.telemetry.inc("palaemon_dispatch_errors_total", route=route,
                           transport=transport, code=code)

    def _error_reply(self, exc: ReproError, operation: Optional[Operation],
                     transport: str) -> Dict[str, Any]:
        route = operation.name if operation is not None else "unknown"
        if operation is None:
            self._count_request(route, transport)
        code = error_code(exc)
        self._count_error(route, transport, code)
        return {"error": str(exc), "kind": type(exc).__name__, "code": code}

    def _crash_reply(self, exc: BaseException,
                     operation: Optional[Operation],
                     transport: str) -> Dict[str, Any]:
        route = operation.name if operation is not None else "unknown"
        if operation is None:
            self._count_request(route, transport)
        self._count_error(route, transport, "internal")
        return {"error": f"{type(exc).__name__}: {exc}",
                "kind": "InternalError", "code": "internal"}


# -- documentation ----------------------------------------------------------

def render_operation_table(registry: Optional[OperationRegistry] = None,
                           ) -> str:
    """The ``docs/API.md`` route table, generated from the registry."""
    registry = registry if registry is not None else default_registry()
    lines = [
        "| operation | auth | required fields | serving | transports "
        "| audit records | summary |",
        "|---|---|---|---|---|---|---|",
    ]
    for operation in registry.operations():
        fields = ", ".join(f"`{name}`" for name in operation.required_fields)
        audit = ", ".join(f"`{kind}`" for kind in operation.audit)
        lines.append(
            f"| `{operation.name}` "
            f"| {operation.auth.replace('_', ' ')} "
            f"| {fields or '—'} "
            f"| {'required' if operation.serving_required else 'not required'} "
            f"| {', '.join(operation.transports)} "
            f"| {audit or '—'} "
            f"| {operation.summary} |")
    return "\n".join(lines)
