"""Incremental Merkle tree over named leaves.

The shielded file system (``repro.fs.shield``) maintains one leaf per file
(hash of the file's ciphertext) and publishes the root hash as the file
system's *tag*. Any modification — including replacing the whole store with
an older snapshot — changes or stales the tag, which is how both tampering
and rollback become detectable.

Leaves are keyed by name (file path) rather than index so that files can be
added and removed; the tree is rebuilt over the sorted leaf set, with domain
separation between leaf and interior hashes to prevent second-preimage
splicing attacks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.crypto.primitives import constant_time_equal, sha256
from repro.errors import IntegrityError

_LEAF_PREFIX = b"\x00leaf"
_NODE_PREFIX = b"\x01node"
_EMPTY_ROOT = sha256(b"\x02empty-merkle-tree")


def _leaf_hash(name: str, value_hash: bytes) -> bytes:
    encoded_name = name.encode()
    return sha256(_LEAF_PREFIX, len(encoded_name).to_bytes(4, "big"),
                  encoded_name, value_hash)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return sha256(_NODE_PREFIX, left, right)


class MerkleTree:
    """A Merkle tree over a mutable mapping of name -> content hash."""

    def __init__(self) -> None:
        self._leaves: Dict[str, bytes] = {}
        self._root_cache: Optional[bytes] = None

    def __len__(self) -> int:
        return len(self._leaves)

    def __contains__(self, name: str) -> bool:
        return name in self._leaves

    def names(self) -> List[str]:
        """Sorted leaf names."""
        return sorted(self._leaves)

    def set_leaf(self, name: str, content: bytes) -> None:
        """Insert or update the leaf for ``name`` with a hash of ``content``."""
        self._leaves[name] = sha256(content)
        self._root_cache = None

    def set_leaf_hash(self, name: str, content_hash: bytes) -> None:
        """Insert or update a leaf with a precomputed content hash."""
        if len(content_hash) != 32:
            raise ValueError("content hash must be 32 bytes")
        self._leaves[name] = content_hash
        self._root_cache = None

    def remove_leaf(self, name: str) -> None:
        """Remove the leaf for ``name``; missing names are an error."""
        del self._leaves[name]
        self._root_cache = None

    def leaf_hash(self, name: str) -> bytes:
        """The stored content hash for ``name``."""
        return self._leaves[name]

    def root(self) -> bytes:
        """The current root hash ("tag"). Empty trees have a fixed root."""
        if self._root_cache is None:
            self._root_cache = self._compute_root()
        return self._root_cache

    def _level(self) -> List[bytes]:
        return [_leaf_hash(name, self._leaves[name])
                for name in sorted(self._leaves)]

    def _compute_root(self) -> bytes:
        level = self._level()
        if not level:
            return _EMPTY_ROOT
        while len(level) > 1:
            paired = []
            for i in range(0, len(level), 2):
                if i + 1 < len(level):
                    paired.append(_node_hash(level[i], level[i + 1]))
                else:
                    # Odd node is promoted; safe with domain separation.
                    paired.append(level[i])
            level = paired
        return level[0]

    def prove(self, name: str) -> "MerkleProof":
        """Produce an inclusion proof for ``name`` against the current root."""
        if name not in self._leaves:
            raise KeyError(name)
        ordered = sorted(self._leaves)
        index = ordered.index(name)
        level = self._level()
        path: List[Tuple[bytes, bool]] = []
        while len(level) > 1:
            sibling_index = index ^ 1
            if sibling_index < len(level):
                path.append((level[sibling_index], sibling_index < index))
            paired = []
            for i in range(0, len(level), 2):
                if i + 1 < len(level):
                    paired.append(_node_hash(level[i], level[i + 1]))
                else:
                    paired.append(level[i])
            level = paired
            index //= 2
        return MerkleProof(name=name, content_hash=self._leaves[name],
                           path=tuple(path), root=self.root())

    def snapshot(self) -> Dict[str, bytes]:
        """A copy of the leaf mapping (for persistence)."""
        return dict(self._leaves)

    @classmethod
    def from_snapshot(cls, leaves: Iterable[Tuple[str, bytes]]) -> "MerkleTree":
        tree = cls()
        for name, content_hash in leaves:
            tree.set_leaf_hash(name, content_hash)
        return tree


class MerkleProof:
    """An inclusion proof: leaf -> root path with sibling hashes."""

    def __init__(self, name: str, content_hash: bytes,
                 path: Tuple[Tuple[bytes, bool], ...], root: bytes) -> None:
        self.name = name
        self.content_hash = content_hash
        self.path = path
        self.root = root

    def verify(self, expected_root: bytes) -> None:
        """Raise :class:`IntegrityError` unless the proof matches the root."""
        current = _leaf_hash(self.name, self.content_hash)
        for sibling, sibling_is_left in self.path:
            if sibling_is_left:
                current = _node_hash(sibling, current)
            else:
                current = _node_hash(current, sibling)
        if not constant_time_equal(current, expected_root):
            raise IntegrityError(
                f"Merkle proof for {self.name!r} does not match root")
