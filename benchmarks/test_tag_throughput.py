"""Tag-update write-path throughput: segments + group commit vs the
whole-document flush.

Not a paper figure — a repo-trajectory benchmark guarding the tag-update
hot path. The latency *model* is pinned by Fig 11 (a sequential update
still pays exactly one 22.5 ms disk commit); what this benchmark measures
is the modeled *work per commit*:

- **bytes written per update** on a 1,000-policy database: the segmented
  store reseals only the dirty tables plus the manifest, and must move at
  least 10x fewer bytes than the legacy monolithic flush (it measures
  ~50x), which is also what the wall-clock serialization gap tracks;
- **group-commit batching**: N concurrent ``update_tag`` callers coalesce
  into one ``DiskModel.commit``, finishing together in a single commit
  window, and leave the same durable state serial commits would.
"""

from repro.benchlib import tagbench
from repro.benchlib.tables import format_table

from benchmarks.conftest import run_once

POLICIES = 1000


def test_sequential_bytes_ratio(benchmark):
    """Segmented flush must move >= 10x fewer bytes than the legacy one."""

    def measure():
        segmented, wall_segmented = tagbench.measure_sequential(
            POLICIES, updates=6)
        legacy, wall_legacy = tagbench.measure_sequential(
            POLICIES, updates=3, legacy=True)
        return segmented, legacy, wall_segmented, wall_legacy

    segmented, legacy, wall_segmented, wall_legacy = run_once(
        benchmark, measure)
    ratio = (legacy["bytes_written_per_update"]
             / segmented["bytes_written_per_update"])
    print()
    print(format_table(
        ["mode", "bytes/update", "sim s/update", "disk commits"],
        [["segmented", segmented["bytes_written_per_update"],
          f"{segmented['sim_seconds_per_update']:.4f}",
          segmented["disk_commits"]],
         ["legacy", legacy["bytes_written_per_update"],
          f"{legacy['sim_seconds_per_update']:.4f}",
          legacy["disk_commits"]]]))
    print(f"bytes ratio: {ratio:.1f}x; wall clock: segmented "
          f"{segmented['updates'] / wall_segmented:.0f} updates/s, legacy "
          f"{legacy['updates'] / wall_legacy:.0f} updates/s")
    assert ratio >= 10.0
    # The latency model is untouched: one disk commit per sequential
    # update, each paying the calibrated commit window.
    assert segmented["disk_commits"] == segmented["updates"]
    assert legacy["disk_commits"] == legacy["updates"]
    import pytest

    assert segmented["sim_seconds_per_update"] == pytest.approx(
        legacy["sim_seconds_per_update"])


def test_concurrent_updates_coalesce(benchmark):
    """Concurrent updaters share one disk commit (group commit)."""
    result = run_once(
        benchmark, lambda: tagbench.measure_concurrent(POLICIES, workers=8))
    print()
    print(f"{result['workers']} workers -> {result['disk_commits']} disk "
          f"commit(s), {result['coalesced_commits']} coalesced, "
          f"{result['sim_seconds_total']:.4f} sim s total")
    assert result["coalesced_commits"] >= 1
    assert result["disk_commits"] < result["workers"]
    assert result["expected_tags_recorded"] == result["workers"]


def test_coalesced_state_matches_serial(benchmark):
    """Group-committed updates leave the same durable state as serial ones."""
    from repro.crypto.primitives import sha256

    def measure():
        # Concurrent: 6 workers race through the group commit.
        sim_c, service_c = tagbench.build_service(
            "equiv-concurrent", b"tagbench:equiv", 40)

        def drive():
            processes = [
                sim_c.process(service_c.update_tag(
                    f"bench-{i:04d}", "svc", sha256(b"equiv:%d" % i)))
                for i in range(6)]
            for process in processes:
                yield process

        sim_c.run_process(drive())
        # Serial: the same updates, one committed after another.
        sim_s, service_s = tagbench.build_service(
            "equiv-serial", b"tagbench:equiv", 40)
        for i in range(6):
            sim_s.run_process(service_s.update_tag(
                f"bench-{i:04d}", "svc", sha256(b"equiv:%d" % i)))
        return service_c, service_s

    service_c, service_s = run_once(benchmark, measure)
    tags_c = {name: service_c.get_tag_instant(name, "svc")
              for name in (f"bench-{i:04d}" for i in range(40))}
    tags_s = {name: service_s.get_tag_instant(name, "svc")
              for name in (f"bench-{i:04d}" for i in range(40))}
    assert tags_c == tags_s
    assert service_c.store.disk.commits < service_s.store.disk.commits
