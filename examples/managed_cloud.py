#!/usr/bin/env python3
"""Managed PALAEMON on an untrusted provider (SS III-B / SS IV-B / SS IV-C).

The cloud provider operates the PALAEMON instance and controls its host,
volume, and network. The example shows what clients can and cannot be
fooled into:

1. clients attest a genuine instance via the CA, or explicitly via IAS;
2. the provider runs a *modified* PALAEMON: no CA certificate, and explicit
   attestation also fails — clients never talk to it;
3. the provider tries to clone the instance (two copies from the same
   sealed identity): the monotonic-counter protocol kills the clone;
4. the provider rolls the instance's database back: the restart refuses;
5. everything at rest on the provider's volume is ciphertext.

Run:  python examples/managed_cloud.py
"""

from repro.core.ca import PalaemonCA
from repro.core.client import PalaemonClient
from repro.core.policy import SecurityPolicy, ServiceSpec
from repro.core.secrets import SecretKind, SecretSpec
from repro.core.service import PalaemonService
from repro.crypto.primitives import DeterministicRandom
from repro.errors import (
    AttestationError,
    ConcurrentInstanceError,
    StaleDatabaseError,
)
from repro.fs.blockstore import BlockStore
from repro.sim.core import Simulator
from repro.sim.network import Site
from repro.tee.ias import IntelAttestationService
from repro.tee.image import build_image
from repro.tee.platform import SGXPlatform


def main() -> None:
    rng = DeterministicRandom(b"managed-cloud")
    simulator = Simulator()
    platform = SGXPlatform(simulator, "provider-node", rng.fork(b"platform"))
    ias = IntelAttestationService(simulator, Site.IAS_US, rng.fork(b"ias"))
    ias.register_platform(platform.quoting_enclave.attestation_public_key,
                          platform.microcode.revision)

    # The provider hosts the instance; the volume is under its control.
    provider_volume = BlockStore("provider-volume")
    palaemon = PalaemonService(platform, provider_volume,
                               rng.fork(b"palaemon"), name="managed-1")
    palaemon.platform_registry.enroll(
        platform.platform_id,
        platform.quoting_enclave.attestation_public_key)
    simulator.run_process(palaemon.start())
    ca = PalaemonCA(platform, ias, frozenset({palaemon.mrenclave}),
                    rng.fork(b"ca"))
    palaemon.obtain_certificate(ca)

    # --- 1. both attestation paths succeed on the genuine instance --------
    client = PalaemonClient("tenant", rng.fork(b"tenant"))
    client.attest_instance_via_ca(palaemon, ca.root_public_key,
                                  now=simulator.now)
    client.attest_instance_explicitly(
        palaemon, ias, trusted_mrenclaves=frozenset({palaemon.mrenclave}))
    print("1. Client attested the managed instance via CA *and* via "
          "explicit IAS report.")

    app_image = build_image("tenant-app", seed=b"v1")
    policy = SecurityPolicy(
        name="tenant_policy",
        services=[ServiceSpec(name="app", image_name="tenant-app",
                              mrenclaves=[app_image.mrenclave()])],
        secrets=[SecretSpec(name="DATA_KEY", kind=SecretKind.RANDOM)])
    client.create_policy(palaemon, policy)
    print("   Tenant stored its policy and secrets in the managed instance.")

    # --- 2. a tampered PALAEMON build gets nowhere -------------------------
    evil = PalaemonService(platform, BlockStore("evil-volume"),
                           rng.fork(b"evil"), version="providers-own-build",
                           name="managed-evil")
    simulator.run_process(evil.start())
    try:
        evil.obtain_certificate(ca)
        raise AssertionError("CA certified a tampered build!")
    except AttestationError:
        print("2. Provider's modified PALAEMON: CA refuses to certify it...")
    fresh_client = PalaemonClient("careful-tenant", rng.fork(b"careful"))
    try:
        fresh_client.attest_instance_explicitly(
            evil, ias, trusted_mrenclaves=frozenset({palaemon.mrenclave}))
        raise AssertionError("explicit attestation accepted it!")
    except AttestationError:
        print("   ...and explicit attestation rejects its MRENCLAVE.")

    # --- 3. cloning the instance -------------------------------------------
    simulator.run_process(palaemon.shutdown())
    simulator.run_process(palaemon.start())
    clone_volume = BlockStore("clone-volume")
    clone_volume.restore(provider_volume.snapshot())
    clone = PalaemonService(platform, clone_volume, rng.fork(b"clone"),
                            name="managed-1")  # same identity, same counter
    try:
        simulator.run_process(clone.start())
        raise AssertionError("clone started!")
    except (StaleDatabaseError, ConcurrentInstanceError) as exc:
        print(f"3. Clone attempt: {type(exc).__name__}: {exc}")

    # --- 4. rolling back the instance database -----------------------------
    checkpoint = provider_volume.snapshot()
    more = SecurityPolicy(
        name="second_policy",
        services=[ServiceSpec(name="app", image_name="tenant-app",
                              mrenclaves=[app_image.mrenclave()])])
    client.create_policy(palaemon, more)
    simulator.run_process(palaemon.shutdown())
    provider_volume.restore(checkpoint)  # forget second_policy
    reborn = PalaemonService(platform, provider_volume,
                             rng.fork(b"reborn"), name="managed-1")
    try:
        simulator.run_process(reborn.start())
        raise AssertionError("rolled-back instance restarted!")
    except StaleDatabaseError as exc:
        print(f"4. Database rollback on restart: {exc}")

    # --- 5. nothing readable at rest ---------------------------------------
    leaks = provider_volume.scan_for(b"tenant_policy")
    print(f"5. Provider scans its volume for tenant data: "
          f"{len(leaks)} plaintext hits (policies, secrets, and tags are "
          f"sealed/encrypted). Done.")
    assert leaks == []


if __name__ == "__main__":
    main()
