"""Spans: nesting, annotations, simulator-clock-only timestamps, and
byte-identical traces for identical seeds."""

import pathlib

from repro.obs.tracing import Tracer
from repro.sim.core import Simulator


def sim_tracer():
    simulator = Simulator()
    return simulator, Tracer(lambda: simulator.now)


class TestSpanNesting:
    def test_child_links_to_parent(self):
        _sim, tracer = sim_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.span.parent_id == outer.span.span_id
            assert tracer.open_depth() == 1
        assert tracer.open_depth() == 0
        names = [span.name for span in tracer.finished]
        assert names == ["inner", "outer"]  # finish order: children first

    def test_siblings_share_parent(self):
        _sim, tracer = sim_tracer()
        with tracer.span("root") as root:
            with tracer.span("first") as first:
                pass
            with tracer.span("second") as second:
                pass
        assert first.span.parent_id == root.span.span_id
        assert second.span.parent_id == root.span.span_id
        assert root.span.parent_id is None

    def test_span_ids_are_sequential(self):
        _sim, tracer = sim_tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [span.span_id for span in tracer.finished] == [2, 1, 3]

    def test_exception_marks_span_and_unwinds(self):
        _sim, tracer = sim_tracer()
        try:
            with tracer.span("failing"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert tracer.open_depth() == 0
        (span,) = tracer.finished
        assert span.attributes["error"] == "ValueError"


class TestSimulatorClock:
    def test_span_measures_virtual_time(self):
        simulator, tracer = sim_tracer()

        def workload():
            with tracer.span("timed") as handle:
                yield simulator.timeout(1.5)
                handle.annotate("halfway mark")
                yield simulator.timeout(0.5)

        simulator.run_process(workload())
        (span,) = tracer.finished
        assert span.start == 0.0
        assert span.end == 2.0
        assert span.duration == 2.0
        assert span.annotations == [(1.5, "halfway mark")]

    def test_attributes_and_annotations_stringify(self):
        _sim, tracer = sim_tracer()
        with tracer.span("s", count=3) as handle:
            handle.set_attribute("extra", 7)
        (span,) = tracer.finished
        assert span.attributes == {"count": "3", "extra": "7"}

    def test_identical_runs_produce_identical_traces(self):
        def run():
            simulator, tracer = sim_tracer()

            def workload():
                for index in range(3):
                    with tracer.span("op", round=index):
                        yield simulator.timeout(0.25)

            simulator.run_process(workload())
            return [span.to_dict() for span in tracer.finished]

        assert run() == run()


def test_obs_sources_never_touch_the_wall_clock():
    """The acceptance criterion: no wall-clock access in repro.obs.

    Enforced through the SRC101 AST rule rather than a substring scan,
    so comments or string literals mentioning ``time.time`` cannot
    produce false positives — only real imports and calls count.
    """
    from repro.analysis.engine import Analyzer

    obs_dir = (pathlib.Path(__file__).resolve().parents[2]
               / "src" / "repro" / "obs")
    findings = Analyzer().analyze_sources(obs_dir, codes={"SRC101"})
    assert findings == [], "\n".join(
        f"{finding.location}: {finding.message}" for finding in findings)
