"""Static analysis ("palint"): policy linting + deterministic repo lint.

PALAEMON's value proposition is that misconfigured trust is caught
*before* secrets leak.  This package is the tooling that makes the catch
happen ahead of runtime: a small rule engine with two rule families.

- **Policy analysis** (``PAL0xx``/``DOC0xx``) runs over parsed
  :class:`~repro.core.policy.SecurityPolicy` objects and raw yamlish
  documents: weak board quorums (threshold below ``f+1``), veto-less
  boards, silently-defaulted unanimity, dangling/cyclic imports, secrets
  injected through argv (world-readable via ``/proc``), debug-mode
  environments, unused secrets and exports, and MRE allow-list drift.
- **Repo lint** (``SRC1xx``) runs over our own sources with the stdlib
  ``ast`` module: wall-clock calls inside the deterministic packages
  (``repro.sim``, ``repro.obs``, ``repro.analysis``), bare ``except``,
  REST error codes violating the snake_case convention, and
  state-changing ``PalaemonService`` methods that never emit an audit
  record.

Everything is deterministic: rules run in registry order, findings sort
on a stable key, reporters never embed timestamps — the same tree and
the same policies produce byte-identical output on every run.

Entry points: ``python -m repro lint`` (CLI over the repo),
:class:`~repro.analysis.engine.Analyzer` (programmatic), and
``PalaemonService.create_policy(..., analyze=True)`` (the pre-board
gate).  The rule catalogue lives in ``docs/ANALYSIS.md``.
"""

from repro.analysis.engine import Analyzer
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import DEFAULT_REGISTRY, Rule, RuleRegistry

__all__ = [
    "Analyzer",
    "DEFAULT_REGISTRY",
    "Finding",
    "Rule",
    "RuleRegistry",
    "Severity",
]
