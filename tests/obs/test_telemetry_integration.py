"""End-to-end telemetry: the instrumented service audits what it does,
REST failures become structured errors and error metrics, tampering with
a live service's audit log is detected, and two runs of the same seed
produce identical event streams."""

import pytest

from repro.core.rest import RemoteError, error_code
from repro.errors import (
    AttestationError,
    IntegrityError,
    PolicyNotFoundError,
    ReproError,
)
from repro.obs.demo import print_observe_report, run_observe_workload
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry

from tests.core.conftest import Deployment


class TestServiceTelemetry:
    def test_policy_crud_is_audited(self):
        deployment = Deployment()
        policy = deployment.make_policy()
        deployment.client.create_policy(deployment.palaemon, policy)
        deployment.client.read_policy(deployment.palaemon, policy.name)
        deployment.client.delete_policy(deployment.palaemon, policy.name)
        log = deployment.palaemon.telemetry.audit_log
        kinds = [record.kind for record in log.records]
        assert "policy.create" in kinds
        assert "policy.read" in kinds
        assert "policy.delete" in kinds
        # Board-governed policy: every CRUD ran a quorum round.
        rounds = log.by_kind("board.round")
        assert len(rounds) == 3
        assert all(r.details["decision"] == "approved" for r in rounds)
        assert log.verify_chain() == len(log)

    def test_attestation_verdicts_audited_with_reason(self):
        deployment = Deployment()
        policy = deployment.make_policy()
        deployment.client.create_policy(deployment.palaemon, policy)
        evidence = deployment.evidence_for(policy.name)
        deployment.palaemon.attest_application(evidence)
        bogus = deployment.evidence_for(policy.name)
        bogus = type(bogus)(quote=bogus.quote, policy_name="ghost",
                            service_name="ml_app",
                            tls_public_key=bogus.tls_public_key)
        with pytest.raises(AttestationError):
            deployment.palaemon.attest_application(bogus)
        log = deployment.palaemon.telemetry.audit_log
        (accept,) = log.by_kind("attest.accept")
        assert accept.details["policy"] == policy.name
        (deny,) = log.by_kind("attest.deny")
        assert deny.details["reason"] == "AttestationError"
        metrics = deployment.palaemon.telemetry.metrics
        assert metrics.counter("palaemon_attestations_total",
                               result="accept").value == 1
        assert metrics.counter("palaemon_attestations_total",
                               result="deny").value == 1

    def test_counter_transitions_audited(self):
        deployment = Deployment()
        deployment.stop_palaemon()
        log = deployment.palaemon.telemetry.audit_log
        assert len(log.by_kind("counter.increment")) == 1
        assert len(log.by_kind("guard.startup")) == 1
        assert len(log.by_kind("guard.shutdown")) == 1
        (increment,) = log.by_kind("counter.increment")
        assert increment.details["old_value"] == 0
        assert increment.details["new_value"] == 1

    def test_tampering_with_live_audit_log_detected(self):
        deployment = Deployment()
        policy = deployment.make_policy()
        deployment.client.create_policy(deployment.palaemon, policy)
        telemetry = deployment.palaemon.telemetry
        assert telemetry.verify_audit_chain() > 0
        record = telemetry.audit_log.by_kind("policy.create")[0]
        record.details["requester"] = "00" * 32  # Byzantine operator edit
        with pytest.raises(IntegrityError):
            telemetry.verify_audit_chain()

    def test_null_telemetry_records_nothing(self):
        deployment = Deployment()
        service = deployment.palaemon
        service.telemetry = NULL_TELEMETRY
        service.rollback_guard.telemetry = NULL_TELEMETRY
        policy = deployment.make_policy(with_board=False)
        deployment.client.create_policy(service, policy)
        assert len(NULL_TELEMETRY.audit_log) == 0
        assert len(NULL_TELEMETRY.metrics) == 0
        assert NULL_TELEMETRY.tracer.finished == []

    def test_telemetry_uses_simulator_clock(self):
        deployment = Deployment()
        telemetry = deployment.palaemon.telemetry
        assert telemetry.now == deployment.simulator.now
        deployment.simulator.run_process(_advance(deployment.simulator, 2.5))
        assert telemetry.now == deployment.simulator.now


def _advance(simulator, delay):
    yield simulator.timeout(delay)


class TestRestStructuredErrors:
    def test_error_code_mapping(self):
        assert error_code(PolicyNotFoundError("x")) == "policy_not_found"
        assert error_code(ReproError("x")) == "repro"
        assert error_code(KeyError("x")) == "internal"

    def test_missing_fields_become_bad_request(self):
        deployment = Deployment()
        from repro.core.rest import PalaemonRestServer

        server = PalaemonRestServer.__new__(PalaemonRestServer)
        server.service = deployment.palaemon
        # tag.update without its required fields: the pipeline's field
        # check refuses before the handler ever runs.
        reply = server._handle({"route": "tag.update"}, session=None)
        assert reply["code"] == "bad_request"
        assert reply["kind"] == "BadRequestError"
        for field in ("policy", "service", "tag"):
            assert field in reply["error"]
        metrics = deployment.palaemon.telemetry.metrics
        assert metrics.counter("palaemon_dispatch_errors_total",
                               route="tag.update", transport="rest",
                               code="bad_request").value == 1

    def test_handler_crash_becomes_structured_internal_error(self):
        deployment = Deployment()
        from repro.core.rest import PalaemonRestServer

        server = PalaemonRestServer.__new__(PalaemonRestServer)
        server.service = deployment.palaemon
        # An unhashable policy key crashes inside the handler (TypeError);
        # it must surface as a structured reply, not an exception.
        reply = server._handle(
            {"route": "tag.update", "policy": {}, "service": "s",
             "tag": b"t"}, session=None)
        assert reply["code"] == "internal"
        assert reply["kind"] == "InternalError"
        assert "TypeError" in reply["error"]
        metrics = deployment.palaemon.telemetry.metrics
        assert metrics.counter("palaemon_dispatch_errors_total",
                               route="tag.update", transport="rest",
                               code="internal").value == 1

    def test_unknown_route_structured(self):
        deployment = Deployment()
        from repro.core.rest import PalaemonRestServer

        server = PalaemonRestServer.__new__(PalaemonRestServer)
        server.service = deployment.palaemon
        reply = server._handle({"route": "nope"}, session=None)
        assert reply["code"] == "unknown_route"
        assert "error" in reply

    def test_repro_error_keeps_kind_and_code(self):
        deployment = Deployment()
        from repro.core.rest import PalaemonRestServer

        server = PalaemonRestServer.__new__(PalaemonRestServer)
        server.service = deployment.palaemon
        reply = server._handle(
            {"route": "tag.get", "policy": "ghost", "service": "s"},
            session=None)
        assert reply["kind"] == "PolicyNotFoundError"
        assert reply["code"] == "policy_not_found"

    def test_remote_error_carries_code(self):
        error = RemoteError("PolicyNotFoundError", "no policy",
                            code="policy_not_found")
        assert error.code == "policy_not_found"
        assert RemoteError("X", "y").code == "error"


class TestObserveWorkload:
    def test_workload_produces_rich_valid_telemetry(self, capsys):
        service = run_observe_workload(seed=b"test-seed")
        assert print_observe_report(service) is True
        output = capsys.readouterr().out
        assert "audit chain: valid" in output
        telemetry = service.telemetry
        # The acceptance bar: at least 8 distinct metric families covering
        # attestations, votes, tags, counters, and dispatched routes.
        names = telemetry.metrics.names()
        assert len(names) >= 8
        for required in ("palaemon_attestations_total",
                         "palaemon_board_votes_total",
                         "palaemon_tag_updates_total",
                         "palaemon_counter_increments_total",
                         "palaemon_dispatch_route_seconds",
                         "palaemon_dispatch_errors_total",
                         "palaemon_admission_admitted_total"):
            assert required in names
        assert telemetry.verify_audit_chain() > 0

    def test_same_seed_identical_event_streams(self):
        first = run_observe_workload(seed=b"determinism")
        second = run_observe_workload(seed=b"determinism")
        assert first.telemetry.events_jsonl() == second.telemetry.events_jsonl()
        assert (first.telemetry.snapshot_text()
                == second.telemetry.snapshot_text())
        assert (first.telemetry.audit_log.head()
                == second.telemetry.audit_log.head())

    def test_different_seeds_differ_only_in_payloads(self):
        first = run_observe_workload(seed=b"seed-a")
        second = run_observe_workload(seed=b"seed-b")
        # Same control flow: identical metric families and span names...
        assert first.telemetry.metrics.names() == second.telemetry.metrics.names()
        assert ([s.name for s in first.telemetry.spans()]
                == [s.name for s in second.telemetry.spans()])
        # ...but different tags/nonces, so different audit heads.
        assert (first.telemetry.audit_log.head()
                != second.telemetry.audit_log.head())


class TestTelemetryFacade:
    def test_disabled_span_is_noop_context_manager(self):
        telemetry = Telemetry(enabled=False)
        with telemetry.span("anything") as handle:
            handle.annotate("ignored")
            handle.set_attribute("k", "v")
        assert telemetry.tracer.finished == []

    def test_events_jsonl_contains_both_streams(self):
        telemetry = Telemetry(clock=lambda: 1.0)
        telemetry.audit("tag.update", policy="p")
        with telemetry.span("op"):
            pass
        lines = telemetry.events_jsonl().strip().split("\n")
        assert len(lines) == 2
        assert '"type":"audit"' in lines[0]
        assert '"type":"span"' in lines[1]
