"""A MariaDB-like store under a TPC-C-shaped load (Fig 17d).

The mechanism behind the figure is a *buffer pool vs EPC* tension:

- a bigger buffer pool raises the cache hit ratio, cutting disk I/O —
  which is why native throughput grows with pool size;
- in SGX hardware mode the pool lives in enclave memory, and once it
  exceeds the EPC every buffer access risks an EPC fault — so beyond
  ~128 MB, growing the pool *reduces* hardware-mode throughput;
- EMU mode has the shield overheads but no EPC, so it tracks native shape
  at a modest discount.

Both effects are modelled mechanistically: the hit ratio comes from the
pool/working-set ratio, the fault cost from the EPC overcommitment.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro import calibration
from repro.crypto.primitives import DeterministicRandom
from repro.crypto.symmetric import SecretBox
from repro.sim.core import Event, Simulator
from repro.sim.resources import Resource
from repro.tee.enclave import ExecutionMode

#: TPC-C working set for the paper-scale run.
_WORKING_SET_MB = 512
#: Pages touched per transaction (mix of reads and writes).
_PAGES_PER_TX = 32
#: Disk I/O per missed page.
_DISK_READ_SECONDS = 200e-6
#: CPU per transaction (query processing, logging), native; anchors the
#: 8-thread native peak near the paper's ~2.7k tx/s at large pools.
_CPU_PER_TX_SECONDS = 2.9e-3
#: Shield overhead per transaction in EMU/HW (syscall shield, TLS).
_SHIELD_PER_TX_SECONDS = 0.25e-3
#: EPC fault cost per over-committed page touch in HW mode, including the
#: amplification from MEE crypto and TLB shootdowns under TPC-C locality.
_EPC_FAULT_SECONDS = calibration.EPC_PAGE_FAULT_SECONDS
_EPC_FAULT_AMPLIFICATION = 12


class MariaDBServer:
    """A database server with encryption-at-rest and a buffer pool."""

    def __init__(self, simulator: Simulator,
                 buffer_pool_mb: int,
                 mode: ExecutionMode = ExecutionMode.NATIVE,
                 rng: Optional[DeterministicRandom] = None,
                 threads: int = calibration.CPU_HYPERTHREADS,
                 epc_mb: int = calibration.EPC_SIZE_DEFAULT
                 // calibration.MB) -> None:
        if buffer_pool_mb <= 0:
            raise ValueError("buffer pool must be positive")
        self.simulator = simulator
        self.buffer_pool_mb = buffer_pool_mb
        self.mode = mode
        self.epc_mb = int(epc_mb * calibration.EPC_USABLE_FRACTION)
        self.workers = Resource(simulator, capacity=threads, name="db-workers")
        self._rng = rng or DeterministicRandom(b"mariadb")
        # Encryption at rest: rows sealed under the injected key.
        self._box = SecretBox(self._rng.fork(b"at-rest-key").bytes(32),
                              self._rng.fork(b"nonces"))
        self._rows: Dict[str, bytes] = {}
        self.transactions = 0

    # -- functional row storage (encrypted at rest) ----------------------

    def put_row(self, key: str, value: bytes) -> None:
        self._rows[key] = self._box.seal(value, associated_data=key.encode())

    def get_row(self, key: str) -> Optional[bytes]:
        sealed = self._rows.get(key)
        if sealed is None:
            return None
        return self._box.open(sealed, associated_data=key.encode())

    def rows_encrypted_at_rest(self, needle: bytes) -> bool:
        """No stored row blob contains the plaintext needle."""
        return all(needle not in sealed for sealed in self._rows.values())

    # -- cost model -----------------------------------------------------------

    def hit_ratio(self) -> float:
        """Buffer-pool hit ratio from the pool/working-set ratio."""
        coverage = min(1.0, self.buffer_pool_mb / _WORKING_SET_MB)
        # Zipf-ish concave benefit: hot pages are cached first.
        return min(0.995, coverage ** 0.45)

    def epc_overcommit_fraction(self) -> float:
        """Fraction of buffer-pool accesses that fault in HW mode."""
        if self.mode is not ExecutionMode.HARDWARE:
            return 0.0
        if self.buffer_pool_mb <= self.epc_mb:
            return 0.0
        return (self.buffer_pool_mb - self.epc_mb) / self.buffer_pool_mb

    def tx_service_seconds(self) -> float:
        """End-to-end service time of one transaction in this configuration."""
        misses = _PAGES_PER_TX * (1.0 - self.hit_ratio())
        seconds = _CPU_PER_TX_SECONDS + misses * _DISK_READ_SECONDS
        if self.mode is not ExecutionMode.NATIVE:
            seconds += _SHIELD_PER_TX_SECONDS
        if self.mode is ExecutionMode.HARDWARE:
            hits = _PAGES_PER_TX * self.hit_ratio()
            # Cached pages that overflow the EPC fault on access; each
            # faulting page costs an eviction + reload through MEE crypto.
            seconds += (hits * self.epc_overcommit_fraction()
                        * _EPC_FAULT_SECONDS * _EPC_FAULT_AMPLIFICATION)
        return seconds

    def handle_transaction(self) -> Generator[Event, Any, None]:
        """One TPC-C-ish transaction (cost model only)."""
        yield self.workers.acquire()
        try:
            yield self.simulator.timeout(self.tx_service_seconds())
            self.transactions += 1
        finally:
            self.workers.release()

    def peak_tps(self) -> float:
        """Saturation throughput for this configuration."""
        return self.workers.capacity / self.tx_service_seconds()

    # -- functional TPC-C-flavoured transactions ------------------------------

    def setup_warehouse(self, warehouse_id: int, districts: int = 10,
                        items: int = 100) -> None:
        """Populate one warehouse: districts with order counters, a stock
        table, and customer balances — the rows the transaction mix uses."""
        for district in range(1, districts + 1):
            self.put_row(f"district:{warehouse_id}:{district}",
                         b"next_order=1")
        for item in range(1, items + 1):
            self.put_row(f"stock:{warehouse_id}:{item}", b"quantity=100")
        for customer in range(1, districts * 3 + 1):
            self.put_row(f"customer:{warehouse_id}:{customer}", b"balance=0")

    def new_order(self, warehouse_id: int, district: int,
                  item_ids: "list",
                  ) -> Generator[Event, Any, int]:
        """TPC-C NewOrder: allocate an order id, decrement stock rows."""
        district_key = f"district:{warehouse_id}:{district}"
        row = self.get_row(district_key)
        if row is None:
            raise KeyError(district_key)
        order_id = int(row.split(b"=")[1])
        self.put_row(district_key, b"next_order=%d" % (order_id + 1))
        for item in item_ids:
            stock_key = f"stock:{warehouse_id}:{item}"
            stock = self.get_row(stock_key)
            if stock is None:
                raise KeyError(stock_key)
            quantity = int(stock.split(b"=")[1])
            if quantity <= 0:
                raise ValueError(f"item {item} out of stock")
            self.put_row(stock_key, b"quantity=%d" % (quantity - 1))
        self.put_row(f"order:{warehouse_id}:{district}:{order_id}",
                     (",".join(str(i) for i in item_ids)).encode())
        yield self.simulator.process(self.handle_transaction())
        return order_id

    def payment(self, warehouse_id: int, customer: int, amount: int,
                ) -> Generator[Event, Any, int]:
        """TPC-C Payment: adjust one customer balance."""
        key = f"customer:{warehouse_id}:{customer}"
        row = self.get_row(key)
        if row is None:
            raise KeyError(key)
        balance = int(row.split(b"=")[1]) + amount
        self.put_row(key, b"balance=%d" % balance)
        yield self.simulator.process(self.handle_transaction())
        return balance

    def order_status(self, warehouse_id: int, district: int, order_id: int,
                     ) -> Generator[Event, Any, "Optional[bytes]"]:
        """TPC-C OrderStatus: read-only lookup of one order."""
        yield self.simulator.process(self.handle_transaction())
        return self.get_row(f"order:{warehouse_id}:{district}:{order_id}")
