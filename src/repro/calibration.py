"""Calibration constants for the simulated substrate.

Every constant here is traceable to a number reported in the PALAEMON paper
(Gregor et al., DSN 2020) or to well-known hardware characteristics the paper
relies on. Benchmarks assert *shapes* (orderings, ratios, crossovers) against
these; they are the single source of truth so that an experiment cannot
silently drift from the model it claims to reproduce.

Units: seconds for latencies, bytes for sizes, operations/second for rates.
"""

from __future__ import annotations

from dataclasses import dataclass

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024

# --------------------------------------------------------------------------
# Table II — enclave page-operation throughput (MB/s measured on Xeon E3-1270)
# --------------------------------------------------------------------------

#: Allocating memory and copying data into the enclave ("bookkeeping").
PAGE_BOOKKEEPING_BPS = 1_292 * MB

#: Evicting EPC pages when the enclave exceeds the EPC.
PAGE_EVICTION_BPS = 1_219 * MB

#: Measuring page content into MRENCLAVE (EEXTEND) — the slow one.
PAGE_MEASUREMENT_BPS = 148 * MB

#: Adding pages to the enclave (EADD).
PAGE_ADDITION_BPS = 2_853 * MB

#: SGX page size.
PAGE_SIZE = 4 * KB

#: EPC reserved by the evaluation cluster's BIOS (128 MB, §V-B).
EPC_SIZE_DEFAULT = 128 * MB

#: Fraction of the EPC usable for enclave pages (SGX metadata overhead).
EPC_USABLE_FRACTION = 0.73

# --------------------------------------------------------------------------
# Fig 9 — startup scaling (per-start costs and platform parallelism)
# --------------------------------------------------------------------------

#: Hyper-threads on the evaluation machine (Xeon E3-1270 v6: 4C/8T).
CPU_HYPERTHREADS = 8

#: Native process start cost; 8 threads saturate at ~3700 starts/s.
NATIVE_START_CPU_SECONDS = CPU_HYPERTHREADS / 3_700.0

#: Serialized (driver-global lock) EPC setup per SGX start; caps SGX w/o
#: attestation at ~100 starts/s regardless of parallelism.
SGX_DRIVER_LOCK_SECONDS_PER_START = 1 / 100.0

#: PALAEMON-attested starts saturate at ~90 starts/s.
PALAEMON_ATTESTED_START_RATE = 90.0

#: IAS-attested starts peak near ~40 starts/s at 60 parallel instances.
IAS_ATTESTED_START_RATE = 40.0

# --------------------------------------------------------------------------
# Fig 8 — attestation phase latencies (seconds)
# --------------------------------------------------------------------------

#: Key-pair generation + DNS + TCP + TLS handshake (similar for all variants).
ATTEST_INIT_SECONDS = 4.0e-3

#: Local quote generation and send, PALAEMON variant (Ed25519-class crypto).
ATTEST_SEND_QUOTE_PALAEMON_SECONDS = 1.5e-3

#: Quote generation and send for IAS (EPID crypto + extra round trip).
ATTEST_SEND_QUOTE_IAS_SECONDS = 35.0e-3

#: Waiting for PALAEMON to confirm attestation (local verification).
ATTEST_WAIT_PALAEMON_SECONDS = 8.0e-3

#: Waiting for IAS to confirm, client in Portland OR (close to IAS).
ATTEST_WAIT_IAS_US_SECONDS = 230.0e-3

#: Waiting for IAS to confirm, client in Europe.
ATTEST_WAIT_IAS_EU_SECONDS = 245.0e-3

#: Receiving the configuration after successful attestation.
ATTEST_RECEIVE_CONFIG_SECONDS = 1.5e-3

#: End-to-end PALAEMON attestation ("around 15 ms").
ATTEST_PALAEMON_TOTAL_SECONDS = (
    ATTEST_INIT_SECONDS
    + ATTEST_SEND_QUOTE_PALAEMON_SECONDS
    + ATTEST_WAIT_PALAEMON_SECONDS
    + ATTEST_RECEIVE_CONFIG_SECONDS
)

# --------------------------------------------------------------------------
# Fig 10 — monotonic counter throughput (increments/second)
# --------------------------------------------------------------------------

#: SGX platform counter: one increment every 50 ms, i.e. <= 20/s by spec;
#: measured 13/s end to end.
SGX_COUNTER_INCREMENT_INTERVAL_SECONDS = 50.0e-3
SGX_COUNTER_MEASURED_RATE = 13.0

#: SGX platform counters wear out; public measurements place NVRAM endurance
#: in the ~1M-write class (paper cites TPM wear of 300k-1.4M).
SGX_COUNTER_WEAR_LIMIT = 1_000_000

#: TPM 2.0 counters: ~10 increments/s, wear out after 300k-1.4M writes.
TPM_COUNTER_RATE = 10.0
TPM_COUNTER_WEAR_LIMIT_MIN = 300_000
TPM_COUNTER_WEAR_LIMIT_MAX = 1_400_000

#: ROTE distributed counters: ~500 ops/s with 4 servers on a LAN.
ROTE_COUNTER_RATE_4_SERVERS = 500.0

#: File-based counter, native mode (open/increment/write/close): 682,721/s.
FILE_COUNTER_NATIVE_RATE = 682_721.0

#: File-based counter inside SGX (memory-mapped by the runtime): 1,380,381/s.
FILE_COUNTER_SGX_RATE = 1_380_381.0

#: + transparent encryption with caching: 1,473,748/s.
FILE_COUNTER_ENCRYPTED_RATE = 1_473_748.0

#: + strict mode (tags pushed to PALAEMON): 1,463,140/s.
FILE_COUNTER_PALAEMON_RATE = 1_463_140.0

# --------------------------------------------------------------------------
# Fig 11 — tag latency and secret-injection overhead
# --------------------------------------------------------------------------

#: Reading the most recent tag from the PALAEMON service (no disk commit).
TAG_READ_LATENCY_SECONDS = 4.5e-3

#: Updating the tag (the service database commits to disk): ~6x the read.
TAG_UPDATE_LATENCY_SECONDS = 27.0e-3

#: Reading a plain 4 kB file from the page cache (baseline, Fig 11 right).
PLAIN_FILE_READ_4K_SECONDS = 2.619e-3

#: Same read through transparent decryption: 2.02x the baseline.
ENCRYPTED_FILE_READ_FACTOR = 2.02

#: Reading a config file with injected secrets served from enclave memory:
#: 0.36x the plain baseline (1 or 10 secrets — count does not matter).
INJECTED_FILE_READ_FACTOR = 0.36

# --------------------------------------------------------------------------
# sim.network — round-trip times per distance class (seconds)
# --------------------------------------------------------------------------

RTT_SAME_RACK = 0.10e-3
RTT_SAME_DC = 0.50e-3
RTT_300_KM = 6.0e-3
RTT_7000_KM = 90.0e-3
RTT_11000_KM = 150.0e-3

#: TLS 1.2-style handshake: 2 round trips plus asymmetric crypto.
TLS_HANDSHAKE_ROUND_TRIPS = 2
TLS_HANDSHAKE_CRYPTO_SECONDS = 1.2e-3

#: Per-message AEAD cost on the channel (small messages).
TLS_RECORD_CRYPTO_SECONDS = 3.0e-6

# --------------------------------------------------------------------------
# Fig 13 — approval service
# --------------------------------------------------------------------------

#: Service time of an approval request inside the TEE with TLS: the knee of
#: the throughput/latency curve sits at ~210 req/s.
APPROVAL_TEE_TLS_SERVICE_SECONDS = 1 / 210.0

#: Native (no TEE) approval handler service time.
APPROVAL_NATIVE_SERVICE_SECONDS = 1 / 420.0

#: Extra per-request cost of TLS record processing for the approval service.
APPROVAL_TLS_EXTRA_SECONDS = 0.4e-3

# --------------------------------------------------------------------------
# TEE runtime cost model (macro-benchmarks)
# --------------------------------------------------------------------------

#: Cost of an enclave transition (EENTER/EEXIT pair) with pre-Spectre
#: microcode (0x58).
ENCLAVE_EXIT_SECONDS_PRE_SPECTRE = 3.0e-6

#: Post-Foreshadow microcode (0x8e) flushes L1 on exit: Barbican-class
#: workloads drop ~30%; modelled as a higher per-exit cost.
ENCLAVE_EXIT_SECONDS_POST_FORESHADOW = 9.0e-6

#: Cost of one EPC page fault (evict + reload + crypto).
EPC_PAGE_FAULT_SECONDS = 25.0e-6

#: Syscall-shield overhead per shielded syscall (argument copy + check).
SYSCALL_SHIELD_SECONDS = 1.0e-6

#: EMU mode runs the shields without SGX hardware: transitions are cheap.
EMU_TRANSITION_SECONDS = 0.3e-6

# --------------------------------------------------------------------------
# Fig 14-17 — macro-benchmark anchors (requests/second, transactions/second)
# --------------------------------------------------------------------------

#: Barbican native peak (interpreted CPython handler).
BARBICAN_NATIVE_PEAK_RPS = 28.0
#: BarbiE outperforms native thanks to its small compiled TCB.
BARBIE_PEAK_RPS = 34.0
#: PALAEMON-hardened Barbican, pre-Spectre microcode.
BARBICAN_PALAEMON_PEAK_RPS = 24.0
#: Post-Foreshadow microcode costs PALAEMON-hardened Barbican ~30%.
MICROCODE_PENALTY_FACTOR = 0.70
#: BarbiE barely suffers (few enclave exits, little EPC paging).
BARBIE_MICROCODE_PENALTY_FACTOR = 0.95

#: Vault native-with-TLS peak.
VAULT_NATIVE_PEAK_RPS = 10_000.0
#: PALAEMON hardware mode reaches 61% of native (1.9 GB heap => EPC paging).
VAULT_HW_FRACTION = 0.61
#: Emulation mode reaches 82% of native.
VAULT_EMU_FRACTION = 0.82

#: memcached native peak with stunnel TLS.
MEMCACHED_NATIVE_PEAK_RPS = 430_000.0
MEMCACHED_HW_FRACTION = 0.595
MEMCACHED_EMU_FRACTION = 0.653

#: NGINX native peak on 67 kB GETs.
NGINX_NATIVE_PEAK_RPS = 7_800.0
NGINX_PALAEMON_HW_FRACTION = 0.80
NGINX_PALAEMON_EMU_FRACTION = 0.84
#: Encrypting *all* served files costs far more than SGX itself.
NGINX_SHIELD_HW_FRACTION = 0.45
NGINX_SHIELD_EMU_FRACTION = 0.48
#: Average HTML page size used by the paper's NGINX benchmark.
NGINX_FILE_SIZE = 67 * KB

#: ZooKeeper 3-node cluster: native read peak; shielded reads run *better*
#: (memory-mapped shielded I/O offsets stunnel's userspace TLS copies).
ZOOKEEPER_NATIVE_READ_PEAK_RPS = 80_000.0
ZOOKEEPER_SHIELD_READ_ADVANTAGE = 1.15
#: Writes involve quorum consensus over TLS: native wins.
ZOOKEEPER_NATIVE_WRITE_PEAK_RPS = 42_000.0
ZOOKEEPER_SHIELD_WRITE_FRACTION = 0.72

#: MariaDB TPC-C: transactions/s anchors for the buffer-pool sweep.
MARIADB_DISK_BOUND_TPS = 800.0
MARIADB_NATIVE_PEAK_TPS = 2_700.0
#: Buffer-pool sizes swept by the paper (MB).
MARIADB_BUFFER_POOL_SIZES_MB = (8, 64, 128, 256, 512)
#: Above this buffer-pool size, EPC paging dominates in hardware mode.
MARIADB_EPC_KNEE_MB = 128

#: Production ML use case (§VI): per-image inference latency.
ML_NATIVE_INFERENCE_SECONDS = 0.323
ML_PALAEMON_INFERENCE_SECONDS = 1.202


@dataclass(frozen=True)
class MicrocodeLevel:
    """A CPU microcode revision and its enclave-exit cost.

    The paper evaluates pre-Spectre (0x58) and post-Foreshadow (0x8e)
    microcodes; the latter flushes L1 on every enclave exit (L1TF mitigation).
    """

    name: str
    revision: int
    enclave_exit_seconds: float

    @property
    def flushes_l1_on_exit(self) -> bool:
        return self.revision >= 0x8E


MICROCODE_PRE_SPECTRE = MicrocodeLevel(
    name="pre-Spectre", revision=0x58,
    enclave_exit_seconds=ENCLAVE_EXIT_SECONDS_PRE_SPECTRE,
)

MICROCODE_POST_FORESHADOW = MicrocodeLevel(
    name="post-Foreshadow", revision=0x8E,
    enclave_exit_seconds=ENCLAVE_EXIT_SECONDS_POST_FORESHADOW,
)
