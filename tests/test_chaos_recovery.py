"""End-to-end tests for the chaos scenario and its recovery guarantees."""

import pytest

from repro.chaos import render_summary, run_chaos
from repro.core.rollback import RollbackGuard
from repro.core.store import PolicyStore
from repro.crypto.primitives import DeterministicRandom
from repro.errors import CounterUnavailableError, SimulationError
from repro.fs.blockstore import BlockStore
from repro.sim.core import Simulator
from repro.sim.faults import FaultPlan
from repro.tee.counters import PlatformCounterService


@pytest.fixture(scope="module")
def summary():
    return run_chaos(7)


class TestDeterminism:
    def test_same_seed_is_byte_identical(self, summary):
        again = run_chaos(7)
        assert render_summary(summary) == render_summary(again)
        assert summary["audit_head"] == again["audit_head"]

    def test_different_seed_differs(self, summary):
        other = run_chaos(11)
        assert summary["audit_head"] != other["audit_head"]

    def test_audit_chain_verifies(self, summary):
        assert summary["audit_records"] > 0


class TestRecovery:
    def test_partition_heals_within_retry_budget(self, summary):
        assert summary["federation_fetch"] == "recovered"
        assert summary["retries_by_operation"][
            "federation.fetch:recovered"] == 1
        assert summary["retries_by_operation"]["federation.fetch:retry"] >= 1

    def test_disk_fault_recovers(self, summary):
        assert summary["tag_update"] == "recovered"
        assert summary["faults_injected"]["disk_fault"] >= 1

    def test_rest_blackout_recovers(self, summary):
        assert summary["rest_attestation"] == "recovered"
        assert summary["faults_injected"]["blackout"] >= 1

    def test_counter_outage_fails_loudly_then_recovers(self, summary):
        assert summary["counter_outage_error"] == "CounterUnavailableError"
        assert summary["third_instance"] == "started"

    def test_promotion_replays_only_acked_updates(self, summary):
        assert summary["replication_giveup"] == "after-retries"
        assert summary["replication_lag"] == 1
        assert summary["promoted"] == "palaemon-2"
        assert summary["replayed_updates"] == {"k1": "acked", "k2": None}

    def test_bounded_wall_clock(self, summary):
        # Every phase finishes under its retry budget: the whole run is
        # bounded, not an unbounded wait on the slowest fault window.
        assert summary["sim_time"] < 60.0


class TestNoRetryRegression:
    def test_without_retries_the_scenario_deadlocks(self):
        with pytest.raises(SimulationError, match="did not finish"):
            run_chaos(7, retries=False)


class TestCounterOutageUnit:
    """The satellite fix in isolation: an outage must propagate, never
    mint a fresh counter (which would discard rollback protection)."""

    def make_guard(self, sim, counters):
        rng = DeterministicRandom(b"outage-unit")
        store = PolicyStore(sim, BlockStore(), rng.fork(b"key").bytes(32),
                            rng.fork(b"store"))
        return RollbackGuard(store, counters, "c")

    def test_outage_propagates_from_ensure_counter(self):
        sim = Simulator()
        counters = PlatformCounterService(sim)
        FaultPlan(sim).counter_outage("ctr", end=1.0).attach_counters(
            counters, "ctr")
        guard = self.make_guard(sim, counters)
        with pytest.raises(CounterUnavailableError):
            guard.ensure_counter()
        # Crucially: the outage did not silently create the counter.
        sim.run(until=1.0)
        with pytest.raises(Exception) as info:
            counters.read("c")
        assert type(info.value).__name__ == "CounterNotFoundError"
        guard.ensure_counter()  # outage over: now it really is created
        assert counters.read("c") == 0


class TestRenderSummary:
    def test_sorted_and_stable(self):
        text = render_summary({"b": 1, "a": {"z": 2, "y": 3}})
        assert text.splitlines() == [
            "chaos recovery summary",
            "  a:",
            "    y: 3",
            "    z: 2",
            "  b: 1",
        ]
