#!/usr/bin/env python3
"""The paper's motivating use case (Fig 1-2, SS VI): Byzantine stakeholders
around a machine-learning pipeline.

Cast:
- the *software provider* owns the Python ML engine (CIF-protected code);
- the *model provider* runs the engine on training data to produce models,
  and must never see the engine's code;
- the software provider limits how many models may be produced; the model
  provider tries to cheat with a rollback attack and gets caught.

Run:  python examples/ml_pipeline.py
"""

from repro.core.ca import PalaemonCA
from repro.core.client import PalaemonClient
from repro.core.policy import SecurityPolicy, ServiceSpec
from repro.core.secrets import SecretKind, SecretSpec
from repro.core.service import PalaemonService
from repro.crypto.primitives import DeterministicRandom
from repro.errors import StrictModeError, TagMismatchError
from repro.fs.blockstore import BlockStore
from repro.runtime.scone import SconeRuntime
from repro.sim.core import Simulator
from repro.sim.network import Site
from repro.tee.ias import IntelAttestationService
from repro.tee.image import build_image
from repro.tee.platform import SGXPlatform

MODEL_QUOTA = 3


def main() -> None:
    rng = DeterministicRandom(b"ml-pipeline")
    simulator = Simulator()
    platform = SGXPlatform(simulator, "cloud-node", rng.fork(b"platform"))
    ias = IntelAttestationService(simulator, Site.IAS_US, rng.fork(b"ias"))
    ias.register_platform(platform.quoting_enclave.attestation_public_key,
                          platform.microcode.revision)
    palaemon = PalaemonService(platform, BlockStore("palaemon-volume"),
                               rng.fork(b"palaemon"))
    palaemon.platform_registry.enroll(
        platform.platform_id,
        platform.quoting_enclave.attestation_public_key)
    simulator.run_process(palaemon.start())
    ca = PalaemonCA(platform, ias, frozenset({palaemon.mrenclave}),
                    rng.fork(b"ca"))
    palaemon.obtain_certificate(ca)

    # The software provider owns the policy; its engine runs in strict
    # mode so unclean exits (and rollbacks) freeze the pipeline.
    software_provider = PalaemonClient("software-provider",
                                       rng.fork(b"sw-provider"))
    software_provider.attest_instance_via_ca(palaemon, ca.root_public_key,
                                             now=simulator.now)
    engine_image = build_image("python-ml-engine", seed=b"engine-v1")
    policy = SecurityPolicy(
        name="ml_training",
        services=[ServiceSpec(
            name="trainer",
            image_name="python-ml-engine",
            command=["python", "/engine/train.py"],
            mrenclaves=[engine_image.mrenclave()],
            strict_mode=True,
        )],
        secrets=[SecretSpec(name="CODE_KEY", kind=SecretKind.RANDOM)],
    )
    software_provider.create_policy(palaemon, policy)
    print("Software provider registered the strict-mode training policy.")

    # The model provider runs training jobs on a volume it controls.
    runtime = SconeRuntime(platform, palaemon, rng.fork(b"runtime"))
    volume = BlockStore("model-provider-volume")

    def train_once(label: str) -> None:
        executions = palaemon.execution_count("ml_training", "trainer")
        if executions >= MODEL_QUOTA:
            raise PermissionError(
                f"quota of {MODEL_QUOTA} training runs exhausted")
        app = runtime.launch(engine_image, "ml_training", "trainer",
                             volume=volume)
        produced = executions + 1
        app.write_file("/output/model.bin",
                       f"model-{produced}-weights".encode())
        app.write_file("/state/run-count", str(produced).encode())
        app.exit_cleanly()
        print(f"  {label}: produced model #{produced} "
              f"(PALAEMON counted {produced}/{MODEL_QUOTA} executions)")

    print(f"Model provider trains up to its quota of {MODEL_QUOTA}:")
    train_once("run 1")
    checkpoint = volume.snapshot()  # the model provider quietly checkpoints
    train_once("run 2")
    train_once("run 3")

    # Quota exhausted; honest retry fails.
    try:
        train_once("run 4 (over quota)")
    except PermissionError as exc:
        print(f"  run 4 refused: {exc}")

    # The rollback attack: restore the volume to the post-run-1 state and
    # hope PALAEMON forgets runs 2-3. The expected tag gives it away.
    print("Model provider attempts a rollback attack "
          "(restores the post-run-1 volume snapshot)...")
    volume.restore(checkpoint)
    try:
        runtime.launch(engine_image, "ml_training", "trainer", volume=volume)
        raise AssertionError("rollback was not detected!")
    except TagMismatchError as exc:
        print(f"  DETECTED: {exc}")

    # Even the execution counter is unaffected: PALAEMON's own database is
    # rollback-protected by the Fig 6 counter protocol.
    count = palaemon.execution_count("ml_training", "trainer")
    print(f"PALAEMON's execution count stands at {count} (the rollback "
          f"attempt itself was attested, then refused at mount): the quota "
          f"cannot be reset.")

    # Confidentiality: neither the engine's code key nor the models are
    # readable from the untrusted volumes.
    assert volume.scan_for(b"model-1-weights") == []
    assert volume.scan_for(b"model-2-weights") == []
    print("Models on the model provider's volume are encrypted at rest.")

    # Strict mode also freezes the pipeline after a crash: a crashed run
    # never pushed its clean-exit tag, so restarts need a policy update.
    app = None
    try:
        app = runtime.launch(engine_image, "ml_training", "trainer",
                             volume=BlockStore("fresh-volume"))
    except StrictModeError:
        pass
    if app is not None:
        app.crash()
        try:
            runtime.launch(engine_image, "ml_training", "trainer",
                           volume=BlockStore("fresh-volume-2"))
        except StrictModeError as exc:
            print(f"Strict mode after a crash: {exc}")
    print("Done.")


if __name__ == "__main__":
    main()
