"""Latency distributions for service times and network jitter."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.crypto.primitives import DeterministicRandom


class LatencyModel(ABC):
    """A distribution of non-negative durations."""

    @abstractmethod
    def sample(self) -> float:
        """Draw one duration in seconds."""

    @abstractmethod
    def mean(self) -> float:
        """The distribution mean in seconds."""


class ConstantLatency(LatencyModel):
    """Always the same duration."""

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("latency must be non-negative")
        self.seconds = seconds

    def sample(self) -> float:
        return self.seconds

    def mean(self) -> float:
        return self.seconds


class ExponentialLatency(LatencyModel):
    """Exponentially distributed duration (memoryless service times)."""

    def __init__(self, mean_seconds: float, rng: DeterministicRandom) -> None:
        if mean_seconds <= 0:
            raise ValueError("mean must be positive")
        self._mean = mean_seconds
        self._rng = rng

    def sample(self) -> float:
        return self._rng.expovariate(1.0 / self._mean)

    def mean(self) -> float:
        return self._mean


class UniformJitterLatency(LatencyModel):
    """A base duration plus uniform jitter in [0, jitter]."""

    def __init__(self, base_seconds: float, jitter_seconds: float,
                 rng: DeterministicRandom) -> None:
        if base_seconds < 0 or jitter_seconds < 0:
            raise ValueError("latency components must be non-negative")
        self._base = base_seconds
        self._jitter = jitter_seconds
        self._rng = rng

    def sample(self) -> float:
        return self._base + self._rng.random() * self._jitter

    def mean(self) -> float:
        return self._base + self._jitter / 2.0
