"""Tests for enclave images and MRENCLAVE measurement."""

import pytest

from repro import calibration
from repro.errors import EnclaveError
from repro.tee.image import EnclaveImage, build_image


class TestMrenclave:
    def test_deterministic(self):
        a = build_image("app", seed=b"s")
        b = build_image("app", seed=b"s")
        assert a.mrenclave() == b.mrenclave()

    def test_code_change_changes_measurement(self):
        image = build_image("app")
        patched = image.with_patch(new_code=image.code[:-1] + b"\x01",
                                   new_version="1.1")
        assert patched.mrenclave() != image.mrenclave()

    def test_version_change_changes_measurement(self):
        image = build_image("app", version="1.0")
        update = build_image("app", version="2.0")
        assert image.mrenclave() != update.mrenclave()

    def test_data_change_changes_measurement(self):
        a = EnclaveImage("app", b"code", b"data-a", heap_bytes=0)
        b = EnclaveImage("app", b"code", b"data-b", heap_bytes=0)
        assert a.mrenclave() != b.mrenclave()

    def test_heap_size_not_measured(self):
        """Heap pages are zeroed and unmeasured: same MRE for any heap size."""
        small = EnclaveImage("app", b"code", b"data", heap_bytes=calibration.MB)
        large = EnclaveImage("app", b"code", b"data",
                             heap_bytes=64 * calibration.MB)
        assert small.mrenclave() == large.mrenclave()

    def test_layout_bound_to_measurement(self):
        """Moving a byte across the code/data boundary changes the MRE."""
        a = EnclaveImage("app", b"codeX", b"data", heap_bytes=0)
        b = EnclaveImage("app", b"code", b"Xdata", heap_bytes=0)
        assert a.mrenclave() != b.mrenclave()


class TestSizes:
    def test_page_alignment(self):
        image = EnclaveImage("app", b"x", b"y", heap_bytes=1)
        assert image.measured_bytes == 2 * calibration.PAGE_SIZE
        assert image.total_bytes == 3 * calibration.PAGE_SIZE

    def test_measured_vs_total(self):
        image = build_image("app", code_size=80 * calibration.KB,
                            data_size=16 * calibration.KB,
                            heap_bytes=4 * calibration.MB)
        assert image.measured_bytes == 96 * calibration.KB
        assert image.total_bytes == 96 * calibration.KB + 4 * calibration.MB
        assert image.measured_pages * calibration.PAGE_SIZE == \
            image.measured_bytes

    def test_empty_code_rejected(self):
        with pytest.raises(EnclaveError):
            EnclaveImage("app", b"", b"data", heap_bytes=0)

    def test_negative_heap_rejected(self):
        with pytest.raises(EnclaveError):
            EnclaveImage("app", b"code", b"", heap_bytes=-1)


class TestBuildImage:
    def test_different_names_different_mre(self):
        assert build_image("a").mrenclave() != build_image("b").mrenclave()

    def test_different_seeds_different_mre(self):
        assert (build_image("a", seed=b"1").mrenclave()
                != build_image("a", seed=b"2").mrenclave())

    def test_requested_sizes(self):
        image = build_image("a", code_size=100_000, data_size=5_000)
        assert len(image.code) == 100_000
        assert len(image.initialized_data) == 5_000
