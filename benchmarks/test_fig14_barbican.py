"""Fig 14 — Barbican throughput/latency under two microcode levels.

Three variants (native, PALAEMON-hardened, BarbiE) under pre-Spectre (0x58)
and post-Foreshadow (0x8e) microcodes. The reproduced shape: BarbiE beats
native (small compiled TCB); PALAEMON trails native (syscall shield); the
newer microcode costs the PALAEMON variant ~30% (L1 flush on exit) while
BarbiE barely moves.
"""

from repro import calibration
from repro.apps.kms import BarbicanServer, BarbicanVariant
from repro.benchlib.harness import rate_sweep
from repro.benchlib.tables import PaperComparison, format_table, paper_vs_measured
from repro.crypto.primitives import DeterministicRandom
from repro.tee.enclave import ExecutionMode

from benchmarks.conftest import run_once

_MICROCODES = {
    "pre-Spectre (0x58)": calibration.MICROCODE_PRE_SPECTRE,
    "post-Foreshadow (0x8e)": calibration.MICROCODE_POST_FORESHADOW,
}


def _setup(variant, microcode):
    def setup(simulator):
        server = BarbicanServer(simulator, variant, microcode=microcode)
        rng = DeterministicRandom(b"barbican-tokens")
        token = server.secrets.issue_token("tenant", rng)
        server.secrets.store(token, "seed-secret", b"value")

        def factory(request_id):
            value = yield simulator.process(
                server.handle_retrieve(token, "seed-secret"))
            assert value == b"value"

        return factory

    return setup


def _sweep_all():
    rates = (5, 12, 20, 27, 33, 45)
    results = {}
    for microcode_name, microcode in _MICROCODES.items():
        for variant in BarbicanVariant:
            results[(microcode_name, variant)] = rate_sweep(
                f"{variant.value}@{microcode_name}",
                _setup(variant, microcode), rates, duration=4.0)
    return results


def test_fig14_barbican(benchmark):
    results = run_once(benchmark, _sweep_all)

    rows = []
    for (microcode_name, variant), result in results.items():
        rows.append([microcode_name, variant.value, result.peak_rate(),
                     result.latency_at_lowest_load() * 1e3])
    print()
    print(format_table(
        ["microcode", "variant", "saturation (req/s)", "low-load lat (ms)"],
        rows, title="Fig 14: Barbican variants x microcode"))

    def knee(microcode_name, variant):
        # The paper reads the saturation throughput (the offered-rate sweep
        # tops out well past every variant's capacity).
        return results[(microcode_name, variant)].peak_rate()

    pre, post = "pre-Spectre (0x58)", "post-Foreshadow (0x8e)"
    comparisons = [
        PaperComparison("native peak (pre)", 28, knee(pre,
                        BarbicanVariant.NATIVE), unit="req/s"),
        PaperComparison("BarbiE peak (pre)", 34, knee(pre,
                        BarbicanVariant.BARBIE), unit="req/s"),
        PaperComparison("Palaemon peak (pre)", 24, knee(pre,
                        BarbicanVariant.PALAEMON_HW), unit="req/s"),
    ]
    print(paper_vs_measured(comparisons, title="paper vs measured"))
    for comparison in comparisons:
        assert comparison.within_tolerance, comparison.metric

    # Orderings within each microcode: BarbiE > native > PALAEMON.
    for microcode_name in _MICROCODES:
        assert (knee(microcode_name, BarbicanVariant.BARBIE)
                > knee(microcode_name, BarbicanVariant.NATIVE)
                > knee(microcode_name, BarbicanVariant.PALAEMON_HW))

    # The ~30% microcode drop hits PALAEMON, not native; BarbiE mostly holds.
    palaemon_drop = 1 - (knee(post, BarbicanVariant.PALAEMON_HW)
                         / knee(pre, BarbicanVariant.PALAEMON_HW))
    barbie_drop = 1 - (knee(post, BarbicanVariant.BARBIE)
                       / knee(pre, BarbicanVariant.BARBIE))
    native_drop = 1 - (knee(post, BarbicanVariant.NATIVE)
                       / knee(pre, BarbicanVariant.NATIVE))
    assert 0.2 <= palaemon_drop <= 0.4
    assert barbie_drop <= 0.12
    assert abs(native_drop) <= 0.05
