"""DCAP-style attestation (the paper's announced next step, §V-B).

"In the future, we will support both IAS and DCAP" — Intel's Data Center
Attestation Primitives replace the online IAS round trip with an offline
verification chain: a *Provisioning Certification Enclave* (PCE) on each
platform certifies the platform's attestation key once, rooted in an Intel
provisioning root; verifiers then check quotes entirely locally against
cached certificates (a PCCS in real deployments).

The win PALAEMON cares about: attestation verification costs no network
round trip at all, and verifiers can pin TCB levels (microcode revisions)
through the certificate's attributes rather than through IAS verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.crypto.certificates import Certificate, CertificateAuthority
from repro.crypto.primitives import DeterministicRandom
from repro.crypto.signatures import PublicKey
from repro.errors import QuoteError
from repro.tee.platform import SGXPlatform
from repro.tee.quoting import Quote


@dataclass(frozen=True)
class PlatformCertificate:
    """A PCK-style certificate: provisioning root -> platform attestation key.

    Carries the platform id and its TCB (microcode revision) as attributes,
    so verifiers can enforce TCB recency offline.
    """

    certificate: Certificate

    @property
    def platform_id(self) -> bytes:
        return bytes.fromhex(self.certificate.attributes["platform_id"])

    @property
    def tcb_revision(self) -> int:
        return int(self.certificate.attributes["tcb"], 16)

    @property
    def attestation_key(self) -> PublicKey:
        return self.certificate.public_key


class ProvisioningAuthority:
    """Intel's provisioning root: certifies platform attestation keys once.

    Stands in for the PCE + Intel PCS pipeline; platforms are enrolled at
    "manufacturing time" and their certificates can be fetched by any
    caching service.
    """

    def __init__(self, rng: DeterministicRandom) -> None:
        self._authority = CertificateAuthority.create(
            "intel-provisioning-root", rng)
        self._issued: Dict[bytes, PlatformCertificate] = {}

    @property
    def root_public_key(self) -> PublicKey:
        return self._authority.root_public_key

    def certify_platform(self, platform: SGXPlatform,
                         not_after: float = float("inf"),
                         ) -> PlatformCertificate:
        certificate = self._authority.issue(
            subject=f"pck:{platform.name}",
            public_key=platform.quoting_enclave.attestation_public_key,
            not_before=0.0, not_after=not_after,
            attributes={
                "platform_id": platform.platform_id.hex(),
                "tcb": f"{platform.microcode.revision:x}",
            })
        pck = PlatformCertificate(certificate)
        self._issued[platform.platform_id] = pck
        return pck

    def lookup(self, platform_id: bytes) -> Optional[PlatformCertificate]:
        """What a PCCS cache would serve for this platform."""
        return self._issued.get(platform_id)


class DCAPVerifier:
    """Offline quote verification against cached platform certificates."""

    def __init__(self, provisioning_root: PublicKey,
                 minimum_tcb: int = 0) -> None:
        self.provisioning_root = provisioning_root
        self.minimum_tcb = minimum_tcb
        self._cache: Dict[bytes, PlatformCertificate] = {}
        self.quotes_verified = 0

    def install_certificate(self, pck: PlatformCertificate,
                            now: float = 0.0) -> None:
        """Cache a platform certificate after validating its chain."""
        pck.certificate.verify(now=now, trusted_root=self.provisioning_root)
        self._cache[pck.platform_id] = pck

    def verify_quote(self, quote: Quote) -> None:
        """Verify a quote fully offline; raises :class:`QuoteError`.

        Checks: the platform is cached, the quote's signing key matches the
        certified attestation key, the signature verifies, and the
        platform's TCB is recent enough.
        """
        pck = self._cache.get(quote.report.platform_id)
        if pck is None:
            raise QuoteError(
                "no cached platform certificate for this platform")
        if quote.attestation_key != pck.attestation_key:
            raise QuoteError(
                "quote signed by a key other than the certified one")
        quote.verify()
        if pck.tcb_revision < self.minimum_tcb:
            raise QuoteError(
                f"platform TCB 0x{pck.tcb_revision:x} below required "
                f"0x{self.minimum_tcb:x}")
        self.quotes_verified += 1

    def known_platforms(self) -> int:
        return len(self._cache)
