"""Workload generators: open-loop and closed-loop clients.

Open-loop generators issue requests at a fixed offered rate regardless of
completions — that is what wrk2 and memtier do in the paper's macro
benchmarks, and what makes latency spike once the offered rate passes the
service capacity. Closed-loop generators keep a fixed number of outstanding
requests (like the parallel-start experiment of Fig 9).
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.crypto.primitives import DeterministicRandom
from repro.sim.core import Event, Simulator
from repro.sim.metrics import (
    LatencyRecorder,
    ThroughputLatencyPoint,
    ThroughputMeter,
)

#: A request handler: a zero-argument callable returning a process generator.
RequestFactory = Callable[[int], Generator[Event, Any, Any]]


class OpenLoopGenerator:
    """Issues requests at ``rate`` per second with exponential inter-arrivals.

    Each request runs ``factory(i)`` as an independent process; its latency
    is the virtual time from issue to completion.
    """

    def __init__(self, simulator: Simulator, rate: float,
                 factory: RequestFactory, rng: DeterministicRandom,
                 duration: float,
                 warmup: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.simulator = simulator
        self.rate = rate
        self.factory = factory
        self.rng = rng
        self.duration = duration
        self.warmup = warmup
        self.latencies = LatencyRecorder("open-loop")
        self.meter = ThroughputMeter("open-loop")
        self.issued = 0

    def run(self) -> Generator[Event, Any, None]:
        """The generator process driving the load; start via simulator."""
        end_time = self.simulator.now + self.duration
        pending = []
        while self.simulator.now < end_time:
            yield self.simulator.timeout(self.rng.expovariate(self.rate))
            if self.simulator.now >= end_time:
                break
            request_id = self.issued
            self.issued += 1
            pending.append(self.simulator.process(
                self._timed_request(request_id),
                name=f"request-{request_id}"))
        # Wait for stragglers so latency percentiles include queued requests.
        if pending:
            yield self.simulator.all_of(pending)

    def _timed_request(self, request_id: int) -> Generator[Event, Any, None]:
        started = self.simulator.now
        yield self.simulator.process(self.factory(request_id),
                                     name=f"handler-{request_id}")
        finished = self.simulator.now
        if started - 0.0 >= self.warmup:
            self.latencies.record(finished - started)
            self.meter.record(finished)

    def result(self) -> ThroughputLatencyPoint:
        return ThroughputLatencyPoint(
            offered_rate=self.rate,
            achieved_rate=self.meter.rate(),
            latency=self.latencies.summary(),
        )


class ClosedLoopGenerator:
    """Keeps ``concurrency`` requests outstanding for ``duration`` seconds."""

    def __init__(self, simulator: Simulator, concurrency: int,
                 factory: RequestFactory, duration: float) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be at least 1")
        self.simulator = simulator
        self.concurrency = concurrency
        self.factory = factory
        self.duration = duration
        self.latencies = LatencyRecorder("closed-loop")
        self.meter = ThroughputMeter("closed-loop")
        self.issued = 0

    def run(self) -> Generator[Event, Any, None]:
        end_time = self.simulator.now + self.duration
        workers = [self.simulator.process(self._worker(end_time),
                                          name=f"worker-{i}")
                   for i in range(self.concurrency)]
        yield self.simulator.all_of(workers)

    def _worker(self, end_time: float) -> Generator[Event, Any, None]:
        while self.simulator.now < end_time:
            request_id = self.issued
            self.issued += 1
            started = self.simulator.now
            yield self.simulator.process(self.factory(request_id),
                                         name=f"handler-{request_id}")
            self.latencies.record(self.simulator.now - started)
            self.meter.record(self.simulator.now)

    def result(self) -> ThroughputLatencyPoint:
        return ThroughputLatencyPoint(
            offered_rate=float(self.concurrency),
            achieved_rate=self.meter.rate(),
            latency=self.latencies.summary(),
        )


def run_open_loop(simulator: Simulator, rate: float, factory: RequestFactory,
                  rng: DeterministicRandom, duration: float,
                  ) -> ThroughputLatencyPoint:
    """Convenience wrapper: run an open-loop experiment to completion."""
    generator = OpenLoopGenerator(simulator, rate, factory, rng, duration)
    simulator.run_process(generator.run(), name="open-loop-driver")
    return generator.result()


def run_closed_loop(simulator: Simulator, concurrency: int,
                    factory: RequestFactory, duration: float,
                    ) -> ThroughputLatencyPoint:
    """Convenience wrapper: run a closed-loop experiment to completion."""
    generator = ClosedLoopGenerator(simulator, concurrency, factory, duration)
    simulator.run_process(generator.run(), name="closed-loop-driver")
    return generator.result()
