"""Benchmark harness utilities: sweeps, curves, and paper-style tables."""

from repro.benchlib.harness import (
    rate_sweep,
    concurrency_sweep,
    ExperimentResult,
)
from repro.benchlib.tables import (
    format_table,
    paper_vs_measured,
    PaperComparison,
)

__all__ = [
    "ExperimentResult",
    "PaperComparison",
    "concurrency_sweep",
    "format_table",
    "paper_vs_measured",
    "rate_sweep",
]
