"""A memcached-like in-memory cache with TLS termination (Fig 16).

Functional semantics are real: SET stores, GET returns, DELETE removes,
LRU eviction bounds memory. PALAEMON's role in the paper's benchmark is to
inject the TLS certificate and private key so memcached can terminate TLS
inside the enclave (native memcached needs a stunnel sidecar).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Generator, Optional

from repro import calibration
from repro.apps.base import SimulatedServer, fractions_for
from repro.sim.core import Event, Simulator
from repro.tee.enclave import ExecutionMode


class MemcachedServer(SimulatedServer):
    """memcached with memtier-shaped GET/SET traffic."""

    def __init__(self, simulator: Simulator,
                 mode: ExecutionMode = ExecutionMode.NATIVE,
                 capacity_items: int = 100_000,
                 tls_certificate: Optional[bytes] = None,
                 tls_private_key: Optional[bytes] = None) -> None:
        super().__init__(
            simulator, "memcached",
            native_peak_rps=calibration.MEMCACHED_NATIVE_PEAK_RPS,
            mode_fractions=fractions_for(
                hw=calibration.MEMCACHED_HW_FRACTION,
                emu=calibration.MEMCACHED_EMU_FRACTION))
        self.mode = mode
        self.capacity_items = capacity_items
        self._items: "OrderedDict[str, bytes]" = OrderedDict()
        self.tls_certificate = tls_certificate
        self.tls_private_key = tls_private_key
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def tls_enabled(self) -> bool:
        return (self.tls_certificate is not None
                and self.tls_private_key is not None)

    # -- functional operations (no simulated time) -----------------------

    def set(self, key: str, value: bytes) -> None:
        if key in self._items:
            self._items.move_to_end(key)
        self._items[key] = value
        if len(self._items) > self.capacity_items:
            self._items.popitem(last=False)
            self.evictions += 1

    def get(self, key: str) -> Optional[bytes]:
        value = self._items.get(key)
        if value is None:
            self.misses += 1
            return None
        self._items.move_to_end(key)
        self.hits += 1
        return value

    def delete(self, key: str) -> bool:
        return self._items.pop(key, None) is not None

    def __len__(self) -> int:
        return len(self._items)

    # -- timed request handlers -----------------------------------------------

    def handle_get(self, key: str) -> Generator[Event, Any, Optional[bytes]]:
        yield self.simulator.process(self.serve(self.mode))
        return self.get(key)

    def handle_set(self, key: str,
                   value: bytes) -> Generator[Event, Any, None]:
        yield self.simulator.process(self.serve(self.mode))
        self.set(key, value)
