"""Tests for certificates and CAs."""

import pytest

from repro.crypto.certificates import (
    Certificate,
    CertificateAuthority,
    self_signed_certificate,
)
from repro.crypto.primitives import DeterministicRandom
from repro.crypto.signatures import KeyPair
from repro.errors import CertificateError


@pytest.fixture(scope="module")
def rng():
    return DeterministicRandom(b"cert-tests")


@pytest.fixture(scope="module")
def authority(rng):
    return CertificateAuthority.create("root-ca", rng.fork(b"ca"))


@pytest.fixture(scope="module")
def subject_keys(rng):
    return KeyPair.generate(rng.fork(b"subject"), bits=512)


class TestIssueAndVerify:
    def test_valid_certificate_verifies(self, authority, subject_keys):
        cert = authority.issue("service", subject_keys.public, 0.0, 100.0)
        cert.verify(now=50.0)
        cert.verify(now=50.0, trusted_root=authority.root_public_key)

    def test_expired_rejected(self, authority, subject_keys):
        cert = authority.issue("service", subject_keys.public, 0.0, 100.0)
        with pytest.raises(CertificateError, match="expired"):
            cert.verify(now=101.0)

    def test_not_yet_valid_rejected(self, authority, subject_keys):
        cert = authority.issue("service", subject_keys.public, 10.0, 100.0)
        with pytest.raises(CertificateError, match="not yet valid"):
            cert.verify(now=5.0)

    def test_wrong_root_rejected(self, authority, subject_keys, rng):
        cert = authority.issue("service", subject_keys.public, 0.0, 100.0)
        other = CertificateAuthority.create("evil-ca", rng.fork(b"evil"))
        with pytest.raises(CertificateError, match="trusted root"):
            cert.verify(now=50.0, trusted_root=other.root_public_key)

    def test_forged_signature_rejected(self, authority, subject_keys):
        cert = authority.issue("service", subject_keys.public, 0.0, 100.0)
        forged = Certificate(
            subject="service", public_key=cert.public_key,
            issuer=cert.issuer, issuer_key=cert.issuer_key,
            not_before=cert.not_before, not_after=cert.not_after,
            attributes=cert.attributes, signature=b"\x01" * len(cert.signature))
        with pytest.raises(CertificateError, match="invalid signature"):
            forged.verify(now=50.0)

    def test_tampered_attributes_rejected(self, authority, subject_keys):
        cert = authority.issue("service", subject_keys.public, 0.0, 100.0,
                               attributes={"mrenclave": "aa"})
        tampered = Certificate(
            subject=cert.subject, public_key=cert.public_key,
            issuer=cert.issuer, issuer_key=cert.issuer_key,
            not_before=cert.not_before, not_after=cert.not_after,
            attributes={"mrenclave": "bb"}, signature=cert.signature)
        with pytest.raises(CertificateError):
            tampered.verify(now=50.0)

    def test_tampered_subject_rejected(self, authority, subject_keys):
        cert = authority.issue("service", subject_keys.public, 0.0, 100.0)
        tampered = Certificate(
            subject="other", public_key=cert.public_key,
            issuer=cert.issuer, issuer_key=cert.issuer_key,
            not_before=cert.not_before, not_after=cert.not_after,
            attributes=cert.attributes, signature=cert.signature)
        with pytest.raises(CertificateError):
            tampered.verify(now=50.0)

    def test_empty_validity_window_rejected(self, authority, subject_keys):
        with pytest.raises(CertificateError):
            authority.issue("service", subject_keys.public, 100.0, 100.0)

    def test_attributes_preserved(self, authority, subject_keys):
        cert = authority.issue("service", subject_keys.public, 0.0, 100.0,
                               attributes={"mrenclave": "deadbeef"})
        assert cert.attributes["mrenclave"] == "deadbeef"

    def test_fingerprint_distinct(self, authority, subject_keys):
        a = authority.issue("a", subject_keys.public, 0.0, 100.0)
        b = authority.issue("b", subject_keys.public, 0.0, 100.0)
        assert a.fingerprint() != b.fingerprint()


class TestSelfSigned:
    def test_self_signed_verifies(self, rng):
        pair = KeyPair.generate(rng.fork(b"self"), bits=512)
        cert = self_signed_certificate("client-1", pair)
        cert.verify(now=0.0)
        assert cert.is_self_signed()

    def test_ca_issued_is_not_self_signed(self, authority, subject_keys):
        cert = authority.issue("service", subject_keys.public, 0.0, 100.0)
        assert not cert.is_self_signed()
