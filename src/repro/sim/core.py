"""Event loop and generator-based processes.

A tiny SimPy-like kernel:

- :class:`Simulator` owns a virtual clock and a priority queue of events.
- :class:`Event` is a one-shot occurrence that processes can wait on.
- :class:`Process` wraps a generator; each ``yield``-ed event suspends the
  process until that event fires, and the yielded event's value is sent back
  into the generator.

Determinism: events scheduled at the same timestamp fire in scheduling order
(a monotonically increasing sequence number breaks ties), so identical seeds
give identical traces.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import DeadlineExceededError, SimTimeError, SimulationError


class Event:
    """A one-shot occurrence processes can wait on.

    An event moves through three states: pending -> triggered (scheduled on
    the event queue with a value) -> processed (callbacks run). Waiting on an
    already-processed event resumes the waiter immediately.
    """

    def __init__(self, simulator: "Simulator") -> None:
        self.simulator = simulator
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._failure: Optional[BaseException] = None
        self.triggered = False
        self.processed = False

    @property
    def value(self) -> Any:
        return self._value

    @property
    def failed(self) -> bool:
        return self._failure is not None

    @property
    def failure(self) -> Optional[BaseException]:
        return self._failure

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self._value = value
        self.simulator._enqueue(self.simulator.now, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as a failure; waiters see the exception raised."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self._failure = exception
        self.simulator._enqueue(self.simulator.now, self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` seconds of virtual time in the future."""

    def __init__(self, simulator: "Simulator", delay: float,
                 value: Any = None) -> None:
        if delay < 0:
            raise SimTimeError(f"negative timeout delay: {delay}")
        super().__init__(simulator)
        self.triggered = True
        self._value = value
        simulator._enqueue(simulator.now + delay, self)


class Process(Event):
    """A running generator process; itself an event that fires on return.

    The process's return value (via ``return`` in the generator) becomes the
    event value, so processes can wait on each other. An uncaught exception
    in the generator fails the process event; if nothing is waiting, the
    exception propagates out of :meth:`Simulator.run` to avoid silent loss.
    """

    def __init__(self, simulator: "Simulator",
                 generator: Generator[Event, Any, Any],
                 name: str = "process") -> None:
        super().__init__(simulator)
        self.name = name
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume the generator at the current simulation time.
        bootstrap = Event(simulator)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.failed:
                target = self._generator.throw(event.failure)
            else:
                target = self._generator.send(event.value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - deliberately broad
            if not self.triggered:
                self.fail(exc)
                self.simulator._note_process_failure(self, exc)
            return
        if not isinstance(target, Event):
            self.fail(SimulationError(
                f"process {self.name!r} yielded {target!r}, not an Event"))
            return
        self._waiting_on = target
        if target.processed:
            # The event already fired; resume on the next loop iteration.
            immediate = Event(self.simulator)
            immediate.callbacks.append(
                lambda _e: self._resume_from_processed(target))
            immediate.succeed()
        else:
            target.callbacks.append(self._resume)

    def _resume_from_processed(self, target: Event) -> None:
        proxy = Event(self.simulator)
        proxy.triggered = proxy.processed = True
        proxy._value = target.value
        proxy._failure = target.failure
        self._resume(proxy)

    def interrupt(self, reason: str = "interrupted") -> None:
        """Throw :class:`ProcessInterrupt` into the process."""
        if self.triggered:
            return
        wakeup = Event(self.simulator)
        wakeup.callbacks.append(self._resume)
        wakeup.fail(ProcessInterrupt(reason))


class ProcessInterrupt(SimulationError):
    """Raised inside a process that another process interrupted."""


class Simulator:
    """The event loop: a virtual clock plus a priority queue of events."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = 0
        self._unhandled_failures: List[Tuple[Process, BaseException]] = []

    # -- event construction helpers ------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "process") -> Process:
        """Start a generator as a process."""
        return Process(self, generator, name=name)

    def all_of(self, events: List[Event]) -> Event:
        """An event that fires when every event in ``events`` has fired."""
        gate = self.event()
        remaining = [len(events)]
        if not events:
            gate.succeed([])
            return gate
        results: List[Any] = [None] * len(events)

        def make_callback(index: int) -> Callable[[Event], None]:
            def callback(event: Event) -> None:
                if gate.triggered:
                    return
                if event.failed:
                    gate.fail(event.failure)
                    return
                results[index] = event.value
                remaining[0] -= 1
                if remaining[0] == 0:
                    gate.succeed(list(results))
            return callback

        for index, event in enumerate(events):
            if event.processed:
                if event.failed:
                    gate.fail(event.failure)
                    break
                results[index] = event.value
                remaining[0] -= 1
            else:
                event.callbacks.append(make_callback(index))
        if not gate.triggered and remaining[0] == 0:
            gate.succeed(list(results))
        return gate

    def with_timeout(self, event: Event, deadline: float) -> Event:
        """An event mirroring ``event``, failed with
        :class:`DeadlineExceededError` if it has not fired within
        ``deadline`` seconds of virtual time from now.

        The inner event is not descheduled — simulation time is virtual,
        so letting it fire late is free — but a late *failure* is
        swallowed rather than crashing the loop, and if the inner event
        is an unfinished :class:`Process` it is interrupted so it can
        release resources (cancel mailbox getters, run ``finally``
        blocks) instead of consuming messages meant for a retry.
        """
        if deadline < 0:
            raise SimTimeError(f"negative timeout deadline: {deadline}")
        gate = self.event()

        def on_event(inner: Event) -> None:
            if gate.triggered:
                return
            if inner.failed:
                gate.fail(inner.failure)
            else:
                gate.succeed(inner.value)

        def on_timer(_timer: Event) -> None:
            if gate.triggered:
                return
            gate.fail(DeadlineExceededError(
                f"event did not fire within {deadline}s"))
            if isinstance(event, Process) and not event.triggered:
                event.interrupt(f"deadline of {deadline}s exceeded")

        if event.processed:
            on_event(event)
        else:
            event.callbacks.append(on_event)
        self.timeout(deadline).callbacks.append(on_timer)
        return gate

    # -- scheduling internals -------------------------------------------

    def _enqueue(self, at: float, event: Event) -> None:
        if at < self.now:
            raise SimTimeError(f"event scheduled in the past: {at} < {self.now}")
        heapq.heappush(self._queue, (at, self._sequence, event))
        self._sequence += 1

    def _note_process_failure(self, process: Process,
                              exc: BaseException) -> None:
        self._unhandled_failures.append((process, exc))

    # -- running ----------------------------------------------------------

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        if not self._queue:
            return False
        at, _seq, event = heapq.heappop(self._queue)
        self.now = at
        event.processed = True
        callbacks, event.callbacks = event.callbacks, []
        had_waiter = bool(callbacks)
        for callback in callbacks:
            callback(event)
        if isinstance(event, Process) and event.failed and not had_waiter:
            # Surface process crashes nobody was waiting for.
            raise event.failure
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``."""
        if until is not None and until < self.now:
            raise SimTimeError(f"cannot run backwards to {until}")
        while self._queue:
            at = self._queue[0][0]
            if until is not None and at > until:
                self.now = until
                return
            if not self.step():
                break
        if until is not None:
            self.now = max(self.now, until)

    def run_process(self, generator: Generator[Event, Any, Any],
                    name: str = "main") -> Any:
        """Run ``generator`` as a process to completion; return its value."""
        process = self.process(generator, name=name)
        self.run()
        if not process.processed:
            raise SimulationError(
                f"process {name!r} did not finish (deadlock?)")
        if process.failed:
            raise process.failure
        return process.value
