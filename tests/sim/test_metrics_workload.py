"""Tests for metrics and workload generators."""

import pytest

from repro.crypto.primitives import DeterministicRandom
from repro.sim.core import Simulator
from repro.sim.metrics import (
    LatencyRecorder,
    ThroughputLatencyPoint,
    ThroughputMeter,
    find_knee,
    percentile,
)
from repro.sim.resources import Resource
from repro.sim.workload import run_closed_loop, run_open_loop


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 0.5) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 0.25) == 2.5

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0.0) == 1
        assert percentile(data, 1.0) == 9

    def test_single_sample(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)


class TestLatencyRecorder:
    def test_summary(self):
        recorder = LatencyRecorder()
        for value in (0.01, 0.02, 0.03):
            recorder.record(value)
        summary = recorder.summary()
        assert summary.count == 3
        assert summary.mean == pytest.approx(0.02)
        assert summary.minimum == 0.01
        assert summary.maximum == 0.03

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-0.1)

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().summary()


class TestThroughputMeter:
    def test_rate(self):
        meter = ThroughputMeter()
        meter.start(0.0)
        for t in (1.0, 2.0, 3.0, 4.0):
            meter.record(t)
        assert meter.rate() == pytest.approx(1.0)

    def test_empty_rate_zero(self):
        assert ThroughputMeter().rate() == 0.0


class TestFindKnee:
    def make_point(self, rate, mean_latency):
        recorder = LatencyRecorder()
        recorder.record(mean_latency)
        return ThroughputLatencyPoint(offered_rate=rate, achieved_rate=rate,
                                      latency=recorder.summary())

    def test_knee_found(self):
        points = [self.make_point(10, 0.001), self.make_point(100, 0.002),
                  self.make_point(200, 0.050), self.make_point(400, 5.0)]
        assert find_knee(points, latency_limit=0.1) == 200

    def test_no_point_under_limit(self):
        points = [self.make_point(10, 1.0)]
        assert find_knee(points, latency_limit=0.1) == 0.0


class FixedServer:
    """A server with one thread and a fixed service time."""

    def __init__(self, sim, service_time):
        self.sim = sim
        self.resource = Resource(sim, capacity=1)
        self.service_time = service_time

    def handle(self, _request_id):
        yield self.resource.acquire()
        try:
            yield self.sim.timeout(self.service_time)
        finally:
            self.resource.release()


class TestOpenLoop:
    def test_underload_latency_near_service_time(self):
        sim = Simulator()
        server = FixedServer(sim, service_time=0.001)
        point = run_open_loop(sim, rate=50.0, factory=server.handle,
                              rng=DeterministicRandom(b"ol"), duration=10.0)
        # 50 req/s against a 1000 req/s server: almost no queueing.
        assert point.latency.mean < 0.002
        assert point.achieved_rate == pytest.approx(50.0, rel=0.2)

    def test_overload_latency_spikes(self):
        sim = Simulator()
        server = FixedServer(sim, service_time=0.01)  # capacity 100/s
        point = run_open_loop(sim, rate=200.0, factory=server.handle,
                              rng=DeterministicRandom(b"ol2"), duration=5.0)
        # Offered 2x capacity: latency far above service time, throughput
        # pinned near capacity.
        assert point.latency.mean > 0.1
        assert point.achieved_rate <= 110.0

    def test_invalid_rate(self):
        sim = Simulator()
        server = FixedServer(sim, 0.001)
        with pytest.raises(ValueError):
            run_open_loop(sim, rate=0.0, factory=server.handle,
                          rng=DeterministicRandom(b"x"), duration=1.0)


class TestClosedLoop:
    def test_throughput_bounded_by_server(self):
        sim = Simulator()
        server = FixedServer(sim, service_time=0.01)
        point = run_closed_loop(sim, concurrency=8, factory=server.handle,
                                duration=5.0)
        assert point.achieved_rate == pytest.approx(100.0, rel=0.05)

    def test_single_client_latency_is_service_time(self):
        sim = Simulator()
        server = FixedServer(sim, service_time=0.02)
        point = run_closed_loop(sim, concurrency=1, factory=server.handle,
                                duration=2.0)
        assert point.latency.mean == pytest.approx(0.02)

    def test_invalid_concurrency(self):
        sim = Simulator()
        server = FixedServer(sim, 0.001)
        with pytest.raises(ValueError):
            run_closed_loop(sim, concurrency=0, factory=server.handle,
                            duration=1.0)


class TestCurveCollector:
    def make_point(self, rate, mean_latency):
        recorder = LatencyRecorder()
        recorder.record(mean_latency)
        return ThroughputLatencyPoint(offered_rate=rate, achieved_rate=rate,
                                      latency=recorder.summary())

    def test_collects_named_curves(self):
        from repro.sim.metrics import CurveCollector

        collector = CurveCollector()
        collector.add("native", self.make_point(100, 0.001))
        collector.add("native", self.make_point(200, 0.500))
        collector.add("shielded", self.make_point(50, 0.001))
        assert set(collector.curves) == {"native", "shielded"}
        assert collector.knee("native", latency_limit=0.1) == 100


class TestLatencySummaryFormatting:
    def test_str_contains_millisecond_fields(self):
        recorder = LatencyRecorder()
        for value in (0.010, 0.020, 0.030):
            recorder.record(value)
        text = str(recorder.summary())
        assert "n=3" in text
        assert "p95=" in text
        assert "ms" in text


class TestThroughputLatencyPointFormatting:
    def test_str(self):
        recorder = LatencyRecorder()
        recorder.record(0.005)
        point = ThroughputLatencyPoint(offered_rate=100, achieved_rate=95,
                                       latency=recorder.summary())
        text = str(point)
        assert "offered=100.0/s" in text
        assert "achieved=95.0/s" in text
