"""Acceptance suite: the five challenges of §I, each demonstrated end to end.

These are integration-level walkthroughs — one test class per numbered
challenge from the paper's introduction, composing the mechanisms the unit
suites verify in isolation. They double as executable documentation of
what "solving" each challenge means.
"""

import pytest

from repro.core.client import PalaemonClient
from repro.core.policy import ImportSpec, VolumeImportSpec, VolumeSpec
from repro.core.secrets import SecretKind, SecretSpec
from repro.core.service import PalaemonService
from repro.core.update import prepare_application_update
from repro.crypto.primitives import DeterministicRandom
from repro.errors import (
    ApprovalDeniedError,
    AttestationError,
    MrenclaveNotPermittedError,
    StaleDatabaseError,
    TagMismatchError,
)
from repro.fs.blockstore import BlockStore
from repro.runtime.scone import SconeRuntime
from repro.tee.image import build_image

from tests.core.conftest import Deployment


@pytest.fixture()
def deployment():
    return Deployment(seed=b"five-challenges")


@pytest.fixture()
def runtime(deployment):
    return SconeRuntime(deployment.platform, deployment.palaemon,
                        DeterministicRandom(b"challenge-runtime"))


class TestChallenge1SecretManagement:
    """How can we securely provide applications with secrets in an
    untrusted environment? — through the channels legacy software already
    uses, after attestation, with nothing in the clear anywhere."""

    def test_all_three_channels_end_to_end(self, deployment, runtime):
        policy = deployment.make_policy(
            secrets=[SecretSpec(name="TOKEN", kind=SecretKind.RANDOM)],
            injection_files={"/etc/app.conf":
                             b"token = $$PALAEMON$TOKEN$$\n"})
        policy.services[0].command = ["app", "--token=$$PALAEMON$TOKEN$$"]
        policy.services[0].environment["APP_TOKEN"] = "$$PALAEMON$TOKEN$$"
        deployment.client.create_policy(deployment.palaemon, policy)
        app = runtime.launch(deployment.app_image, "ml_policy", "ml_app")
        token = app.config.secrets["TOKEN"]
        # Channel 1: command-line argument — the placeholder was replaced
        # by the secret's (decoded) value.
        assert "$$PALAEMON$" not in app.argv()[1]
        assert app.argv()[1] != "app --token="
        assert app.argv()[1].startswith("--token=")
        assert len(app.argv()[1]) > len("--token=")
        # Channel 2: environment variable.
        assert "$$PALAEMON$" not in app.getenv("APP_TOKEN")
        # Channel 3: config file, injected in enclave memory only.
        assert token in app.read_file("/etc/app.conf")
        # And the untrusted world never sees it.
        assert deployment.volume.scan_for(token) == []

    def test_per_instance_secrets_from_one_image(self, deployment, runtime):
        """'one can inject different secrets in each container instance of
        an image' — two policies over the same image get distinct keys."""
        for name in ("tenant_a", "tenant_b"):
            deployment.client.create_policy(
                deployment.palaemon, deployment.make_policy(name=name))
        app_a = runtime.launch(deployment.app_image, "tenant_a", "ml_app")
        app_b = runtime.launch(deployment.app_image, "tenant_b", "ml_app")
        assert (app_a.config.secrets["API_KEY"]
                != app_b.config.secrets["API_KEY"])


class TestChallenge2ManagedOperation:
    """How can we delegate the management of PALAEMON to untrusted
    stakeholders? — attestation makes the operator irrelevant."""

    def test_trust_without_trusting_the_operator(self, deployment):
        # A fresh client with no prior relationship to the operator:
        client = PalaemonClient("stranger", DeterministicRandom(b"stranger"))
        client.attest_instance_via_ca(deployment.palaemon,
                                      deployment.ca.root_public_key,
                                      now=deployment.simulator.now)
        client.create_policy(deployment.palaemon,
                             deployment.make_policy(name="strangers_policy"))
        # The operator's full volume access yields nothing:
        assert deployment.volume.scan_for(b"strangers_policy") == []

    def test_operator_substitution_attack_fails(self, deployment):
        """The operator swaps in its own build; every client notices."""
        impostor = PalaemonService(deployment.platform,
                                   BlockStore("impostor"),
                                   DeterministicRandom(b"impostor"),
                                   version="operator-special")
        with pytest.raises(AttestationError):
            impostor.obtain_certificate(deployment.ca)


class TestChallenge3RobustRootOfTrust:
    """How can we protect CIF against malicious stakeholders? — no single
    individual can effect a change."""

    def test_no_single_stakeholder_suffices(self):
        deployment = Deployment(seed=b"c3", board_members=3,
                                board_threshold=2)
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        # Compromise exactly one board member (member-0 approves anything);
        # the other two refuse updates.
        for name in ("member-1", "member-2"):
            deployment.approval_services[f"approval-{name}"].decision_rule = (
                lambda request: request.operation != "update")
        evil = deployment.make_policy()
        evil.services[0].mrenclaves = [
            build_image("ml-engine", seed=b"evil").mrenclave()]
        with pytest.raises(ApprovalDeniedError):
            deployment.client.update_policy(deployment.palaemon, evil)

    def test_f_plus_one_honest_approvals_suffice(self):
        deployment = Deployment(seed=b"c3b", board_members=3,
                                board_threshold=2)
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        # One member is down; the remaining two approve: 2 >= threshold.
        deployment.approval_services["approval-member-2"].online = False
        update = deployment.make_policy()
        prepare_application_update(
            update, "ml_app",
            build_image("ml-engine", seed=b"v2").mrenclave())
        deployment.client.update_policy(deployment.palaemon, update)


class TestChallenge4RollbackProtection:
    """How can we ensure freshness of data and code efficiently? — tags at
    PALAEMON for applications, the counter protocol for PALAEMON itself,
    negligible overhead (Fig 10/11 benches quantify it)."""

    def test_application_state_freshness(self, deployment, runtime):
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        volume = BlockStore("state-volume")
        app = runtime.launch(deployment.app_image, "ml_policy", "ml_app",
                             volume=volume)
        app.write_file("/state", b"epoch-1")
        app.exit_cleanly()
        old = volume.snapshot()
        app2 = runtime.launch(deployment.app_image, "ml_policy", "ml_app",
                              volume=volume)
        app2.write_file("/state", b"epoch-2")
        app2.exit_cleanly()
        volume.restore(old)
        with pytest.raises(TagMismatchError):
            runtime.launch(deployment.app_image, "ml_policy", "ml_app",
                           volume=volume)

    def test_palaemon_state_freshness(self, deployment):
        old = deployment.volume.snapshot()
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        deployment.stop_palaemon()
        deployment.volume.restore(old)
        reborn = PalaemonService(deployment.platform, deployment.volume,
                                 DeterministicRandom(b"reborn"),
                                 board_evaluator=deployment.evaluator)
        with pytest.raises(StaleDatabaseError):
            deployment.simulator.run_process(reborn.start())

    def test_code_freshness_via_combinations(self, deployment, runtime):
        """Freshness of *code*: a retired version cannot be re-run."""
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        new_image = build_image("ml-engine", seed=b"patched")
        policy = deployment.client.read_policy(deployment.palaemon,
                                               "ml_policy")
        prepare_application_update(policy, "ml_app", new_image.mrenclave(),
                                   keep_old=False)
        deployment.client.update_policy(deployment.palaemon, policy)
        with pytest.raises(MrenclaveNotPermittedError):
            runtime.launch(deployment.app_image, "ml_policy", "ml_app")
        runtime.launch(new_image, "ml_policy", "ml_app")


class TestChallenge5SecureUpdate:
    """How can we update applications and PALAEMON itself without
    compromising secrets? — board-gated policy updates carry the secrets
    forward; the CA allow-list gates PALAEMON versions."""

    def test_secrets_survive_application_update(self, deployment, runtime):
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        before = runtime.launch(deployment.app_image, "ml_policy",
                                "ml_app").config.secrets["API_KEY"]
        new_image = build_image("ml-engine", seed=b"v2")
        policy = deployment.client.read_policy(deployment.palaemon,
                                               "ml_policy")
        prepare_application_update(policy, "ml_app", new_image.mrenclave())
        deployment.client.update_policy(deployment.palaemon, policy)
        after = runtime.launch(new_image, "ml_policy",
                               "ml_app").config.secrets["API_KEY"]
        assert before == after  # the new version inherited the secret

    def test_data_flows_across_versions_through_volumes(self, deployment,
                                                        runtime):
        """An update keeps access to the old version's encrypted data."""
        policy = deployment.make_policy()
        policy.volumes.append(VolumeSpec(name="data", path="/data"))
        deployment.client.create_policy(deployment.palaemon, policy)
        shared = BlockStore("data-volume")
        v1_app = runtime.launch(deployment.app_image, "ml_policy", "ml_app")
        v1_data = v1_app.mount_volume("data", shared)
        v1_data.write("/data/db", b"accumulated-state")
        v1_data.sync()

        new_image = build_image("ml-engine", seed=b"v2")
        updated = deployment.client.read_policy(deployment.palaemon,
                                                "ml_policy")
        prepare_application_update(updated, "ml_app", new_image.mrenclave())
        deployment.client.update_policy(deployment.palaemon, updated)
        v2_app = runtime.launch(new_image, "ml_policy", "ml_app")
        v2_data = v2_app.mount_volume("data", shared)
        assert v2_data.read("/data/db") == b"accumulated-state"
