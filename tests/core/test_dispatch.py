"""The unified operation-dispatch layer: registry, uniform error codes
across every transport, admission control, and the in-process invoker.

The contract under test: however a request reaches a PALAEMON instance —
REST, federation, failover, or in-process — it goes through the same
registry and middleware pipeline, so malformed requests get the same
``bad_request`` code, unknown operations the same ``unknown_route`` code,
and overload the same ``overloaded`` code, and no serve loop ever
crashes.
"""

import pickle
import re

import pytest

import repro.errors
from repro.core.client import PalaemonClient
from repro.core.dispatch import (
    AUTH_PEER,
    AdmissionControl,
    Operation,
    OperationRegistry,
    RouteLimits,
    default_registry,
    error_code,
)
from repro.core.federation import FederatedInstance
from repro.crypto.primitives import DeterministicRandom, sha256
from repro.errors import (
    AttestationError,
    BadRequestError,
    CertificateRequiredError,
    PolicyNotFoundError,
    ReproError,
    ServiceOverloadedError,
    UnknownRouteError,
)
from repro.sim.network import Network, Site

from tests.core.conftest import Deployment
from tests.test_extensions import make_second_instance

TRANSPORTS = ("rest", "federation", "failover", "inprocess")


class TestRegistry:
    def test_default_registry_covers_every_transport_route(self):
        names = default_registry().names()
        for route in ("policy.create", "policy.read", "policy.update",
                      "policy.delete", "policy.list", "app.attest",
                      "tag.get", "tag.update", "volume_tag.get",
                      "volume_tag.update", "instance.describe",
                      "federation.fetch", "failover.replicate"):
            assert route in names

    def test_duplicate_registration_rejected(self):
        registry = OperationRegistry()
        registry.register(Operation(name="x", handler=lambda ctx: None))
        with pytest.raises(ValueError):
            registry.register(Operation(name="x", handler=lambda ctx: None))

    def test_unknown_auth_requirement_rejected(self):
        registry = OperationRegistry()
        with pytest.raises(ValueError):
            registry.register(Operation(name="x", handler=lambda ctx: None,
                                        auth="password"))

    def test_lookup_tolerates_non_string_routes(self):
        registry = default_registry()
        assert registry.get(None) is None
        assert registry.get(42) is None
        assert registry.get(b"tag.get") is None

    def test_every_operation_is_documented(self):
        for operation in default_registry().operations():
            assert operation.summary, f"{operation.name} has no summary"
            assert operation.transports, f"{operation.name} lists no transport"


class TestErrorCodeAudit:
    """Satellite: every ReproError subclass must map to a typed code."""

    @staticmethod
    def all_repro_error_classes():
        import repro.core.rest  # noqa: F401 - defines RemoteError

        classes, stack = [], [ReproError]
        while stack:
            for sub in stack.pop().__subclasses__():
                if sub not in classes:
                    classes.append(sub)
                    stack.append(sub)
        return classes

    @staticmethod
    def instantiate(exc_cls):
        try:
            return exc_cls("boom")
        except TypeError:
            return exc_cls("boom", "boom")  # e.g. RemoteError(kind, message)

    def test_no_subclass_falls_through_to_internal(self):
        classes = self.all_repro_error_classes()
        assert len(classes) >= 30  # the hierarchy, not a handful
        for exc_cls in classes:
            code = error_code(self.instantiate(exc_cls))
            assert code != "internal", (
                f"{exc_cls.__name__} maps to 'internal' — clients cannot "
                f"distinguish it from a crash")
            assert re.fullmatch(r"[a-z][a-z0-9_]*", code), (
                f"{exc_cls.__name__} -> {code!r} is not snake_case")

    def test_codes_are_derived_or_pinned(self):
        assert error_code(PolicyNotFoundError("x")) == "policy_not_found"
        assert error_code(UnknownRouteError("x")) == "unknown_route"
        assert error_code(BadRequestError("x")) == "bad_request"
        assert error_code(ReproError("x")) == "repro"
        # The pinned code wins over the derived 'service_overloaded'.
        assert error_code(ServiceOverloadedError("x")) == "overloaded"

    def test_foreign_exceptions_are_internal(self):
        assert error_code(ValueError("x")) == "internal"
        assert error_code(KeyError("x")) == "internal"


class TestUniformErrorsAcrossTransports:
    """Satellite: same codes over REST, federation, failover, in-process."""

    def test_unknown_route_code_is_transport_independent(self):
        deployment = Deployment()
        dispatcher = deployment.palaemon.dispatcher
        for transport in TRANSPORTS:
            reply = dispatcher.handle({"route": "no.such.op"},
                                      transport=transport)
            assert reply["code"] == "unknown_route"
            assert reply["kind"] == "UnknownRouteError"

    def test_non_mapping_request_is_bad_request_everywhere(self):
        deployment = Deployment()
        dispatcher = deployment.palaemon.dispatcher
        for transport in TRANSPORTS:
            for junk in (b"\x00\x01", ["route", "tag.get"], None, 17):
                reply = dispatcher.handle(junk, transport=transport)
                assert reply["code"] == "bad_request"
                assert reply["kind"] == "BadRequestError"

    def test_missing_fields_name_every_missing_field(self):
        deployment = Deployment()
        reply = deployment.palaemon.dispatcher.handle(
            {"route": "tag.update"}, transport="rest")
        assert reply["code"] == "bad_request"
        for field in ("policy", "service", "tag"):
            assert field in reply["error"]

    def test_dispatch_process_returns_the_same_reply_as_handle(self):
        deployment = Deployment()
        dispatcher = deployment.palaemon.dispatcher
        for request in ({"route": "no.such.op"}, {"route": "tag.update"},
                        b"garbage"):
            synchronous = dispatcher.handle(request, transport="inprocess")
            queued = deployment.simulator.run_process(
                dispatcher.dispatch(request, transport="inprocess"))
            assert queued == synchronous

    def test_invoker_raises_the_typed_errors(self):
        deployment = Deployment()
        dispatcher = deployment.palaemon.dispatcher
        with pytest.raises(UnknownRouteError):
            dispatcher.invoke("no.such.op")
        with pytest.raises(BadRequestError):
            dispatcher.invoke("tag.update")  # missing fields
        with pytest.raises(CertificateRequiredError):
            dispatcher.invoke("policy.read", name="ml_policy")

    def test_peer_operations_unreachable_without_peer_link(self):
        """AUTH_PEER routes refuse REST/in-process callers uniformly."""
        deployment = Deployment()
        dispatcher = deployment.palaemon.dispatcher
        request = {"route": "federation.fetch", "policy": "p",
                   "requesting_policy": "q", "secrets": []}
        for transport in ("rest", "inprocess"):
            reply = dispatcher.handle(request, transport=transport)
            assert reply["code"] == "peer_required"
            assert reply["kind"] == "PeerRequiredError"

    def test_describe_works_while_not_serving_but_reads_do_not(self):
        deployment = Deployment()
        deployment.stop_palaemon()
        dispatcher = deployment.palaemon.dispatcher
        described = dispatcher.handle({"route": "instance.describe"},
                                      transport="rest")
        assert described["ok"]["name"] == deployment.palaemon.name
        refused = dispatcher.handle({"route": "policy.list"},
                                    transport="rest")
        assert "not serving" in refused["error"]

    def test_error_replies_count_dispatch_error_metrics(self):
        deployment = Deployment()
        dispatcher = deployment.palaemon.dispatcher
        dispatcher.handle({"route": "nope"}, transport="federation")
        dispatcher.handle(b"junk", transport="failover")
        metrics = deployment.palaemon.telemetry.metrics
        assert metrics.counter(
            "palaemon_dispatch_errors_total", route="unknown",
            transport="federation", code="unknown_route").value == 1
        assert metrics.counter(
            "palaemon_dispatch_errors_total", route="unknown",
            transport="failover", code="bad_request").value == 1


def make_networked_pair(deployment):
    """Two CA-certified instances peered over the message fabric."""
    network = Network(deployment.simulator, deployment.rng.fork(b"fed-net"))
    local = FederatedInstance(
        deployment.palaemon, Site.SAME_RACK, deployment.ca.root_public_key,
        network=network, rng=deployment.rng.fork(b"fed-local"))
    remote_service = make_second_instance(deployment)
    remote = FederatedInstance(
        remote_service, Site.SAME_DC, deployment.ca.root_public_key,
        network=network, rng=deployment.rng.fork(b"fed-remote"))
    deployment.simulator.run_process(local.peer_with(remote))
    return local, remote, remote_service


def sealed_exchange(deployment, local, remote, request):
    """Send one raw sealed request to the peer; return the opened reply."""
    link = local._links[remote.name]

    def exchange():
        local.client_endpoint.send(
            remote.endpoint,
            {"from": local.name, "data": link.box.seal(pickle.dumps(request))},
            size_bytes=512, reply_to=local.client_endpoint)
        message = yield local.client_endpoint.receive()
        return pickle.loads(link.box.open(message.payload["data"]))

    return deployment.simulator.run_process(exchange())


class TestFederationTransportErrors:
    """Satellite: the sealed peer fabric speaks the same error codes."""

    def test_bogus_kind_gets_typed_unknown_route_reply(self):
        deployment = Deployment()
        local, remote, _ = make_networked_pair(deployment)
        reply = sealed_exchange(deployment, local, remote,
                                {"kind": "bogus", "rid": 7})
        assert reply["rid"] == 7
        assert reply["error_kind"] == "UnknownRouteError"
        assert reply["code"] == "unknown_route"

    def test_missing_fields_get_bad_request_reply(self):
        deployment = Deployment()
        local, remote, _ = make_networked_pair(deployment)
        reply = sealed_exchange(deployment, local, remote,
                                {"kind": "fetch", "rid": 8})
        assert reply["code"] == "bad_request"
        for field in ("policy", "requesting_policy", "secrets"):
            assert field in reply["message"]

    def test_serve_loop_survives_garbage_then_serves(self):
        """Byzantine senders cannot crash the loop: after a barrage of
        malformed traffic, a legitimate fetch still succeeds."""
        deployment = Deployment()
        local, remote, remote_service = make_networked_pair(deployment)
        from repro.core.policy import SecurityPolicy, ServiceSpec
        from repro.core.secrets import SecretKind, SecretSpec

        producer = SecurityPolicy(
            name="producer_policy",
            services=[ServiceSpec(name="svc", image_name="img",
                                  mrenclaves=[deployment.app_image
                                              .mrenclave()])],
            secrets=[SecretSpec(name="SHARED_KEY", kind=SecretKind.RANDOM,
                                export_to=("consumer_policy",))])
        remote_service.create_policy(producer, deployment.client.certificate)
        link = local._links[remote.name]

        def barrage():
            # Not a dict at all.
            local.client_endpoint.send(remote.endpoint, b"noise",
                                       size_bytes=64)
            # A dict without the sealed payload.
            local.client_endpoint.send(remote.endpoint,
                                       {"from": local.name}, size_bytes=64)
            # From a peer the remote never attested.
            local.client_endpoint.send(
                remote.endpoint, {"from": "stranger", "data": b"x" * 40},
                size_bytes=64)
            # AEAD garbage under a known peer name.
            local.client_endpoint.send(
                remote.endpoint, {"from": local.name, "data": b"x" * 40},
                size_bytes=64)
            # Sealed, authentic, but not a mapping.
            local.client_endpoint.send(
                remote.endpoint,
                {"from": local.name,
                 "data": link.box.seal(pickle.dumps([1, 2, 3]))},
                size_bytes=64)
            yield deployment.simulator.timeout(0.1)
            secrets = yield from local.fetch_remote_secrets(
                remote.name, "producer_policy", "consumer_policy",
                ["SHARED_KEY"])
            return secrets

        secrets = deployment.simulator.run_process(barrage())
        assert set(secrets) == {"SHARED_KEY"}

    def test_fetch_reraises_the_peer_verdict(self):
        """The client re-raises the same typed error the peer decided."""
        deployment = Deployment()
        local, remote, _ = make_networked_pair(deployment)

        def fetch():
            result = yield from local.fetch_remote_secrets(
                remote.name, "ghost_policy", "consumer_policy", ["K"])
            return result

        with pytest.raises(PolicyNotFoundError):
            deployment.simulator.run_process(fetch())


class TestAdmissionControl:
    def tight_admission(self, deployment, **overrides):
        limits = dict(max_concurrency=1, max_queue=1, queue_deadline=5.0)
        limits.update(overrides)
        admission = AdmissionControl(
            deployment.simulator, deployment.palaemon.telemetry,
            limits=RouteLimits(**limits))
        deployment.palaemon.dispatcher.admission = admission
        return admission

    def seeded_deployment(self):
        deployment = Deployment()
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        return deployment

    def burst(self, deployment, count):
        """Fire ``count`` concurrent timed tag.update dispatches."""
        simulator = deployment.simulator
        dispatcher = deployment.palaemon.dispatcher
        replies = []

        def one(index):
            reply = yield simulator.process(dispatcher.dispatch(
                {"route": "tag.update", "policy": "ml_policy",
                 "service": "ml_app", "tag": sha256(b"t%d" % index)}),
                name=f"burst-{index}")
            replies.append(reply)

        def main():
            yield simulator.all_of([
                simulator.process(one(index)) for index in range(count)])

        simulator.run_process(main())
        return replies

    def test_excess_load_is_shed_with_overloaded_while_admitted_succeed(self):
        deployment = self.seeded_deployment()
        self.tight_admission(deployment)
        replies = self.burst(deployment, 4)
        admitted = [r for r in replies if "ok" in r]
        shed = [r for r in replies if "error" in r]
        # cap 1 + queue 1: two run (one immediately, one queued), two shed.
        assert len(admitted) == 2
        assert len(shed) == 2
        assert all(r["code"] == "overloaded" for r in shed)
        assert all(r["kind"] == "ServiceOverloadedError" for r in shed)
        metrics = deployment.palaemon.telemetry.metrics
        assert metrics.counter("palaemon_admission_shed_total",
                               route="tag.update",
                               reason="queue_full").value == 2

    def test_queue_deadline_sheds_the_waiter(self):
        deployment = self.seeded_deployment()
        # The group-commit write path takes ~ms; a microsecond deadline
        # guarantees the queued request times out rather than running.
        self.tight_admission(deployment, queue_deadline=1e-6)
        replies = self.burst(deployment, 2)
        admitted = [r for r in replies if "ok" in r]
        shed = [r for r in replies if "error" in r]
        assert len(admitted) == 1
        assert len(shed) == 1
        assert shed[0]["code"] == "overloaded"
        metrics = deployment.palaemon.telemetry.metrics
        assert metrics.counter("palaemon_admission_shed_total",
                               route="tag.update",
                               reason="deadline").value == 1

    def test_sync_transports_shed_at_capacity_without_queueing(self):
        deployment = Deployment()
        admission = AdmissionControl(
            deployment.simulator, deployment.palaemon.telemetry,
            limits=RouteLimits(max_concurrency=1))
        admission.admit_instant("r")
        with pytest.raises(ServiceOverloadedError):
            admission.admit_instant("r")
        admission.release("r")
        admission.admit_instant("r")  # the freed slot is reusable
        metrics = deployment.palaemon.telemetry.metrics
        assert metrics.counter("palaemon_admission_shed_total", route="r",
                               reason="at_capacity").value == 1

    def test_released_slots_hand_off_fifo(self):
        deployment = Deployment()
        simulator = deployment.simulator
        admission = AdmissionControl(
            simulator, deployment.palaemon.telemetry,
            limits=RouteLimits(max_concurrency=1, max_queue=4,
                               queue_deadline=5.0))
        admission.admit_instant("r")
        order = []

        def waiter(index):
            yield from admission.admit("r")
            order.append(index)

        def main():
            first = simulator.process(waiter(1))
            yield simulator.timeout(0.001)
            second = simulator.process(waiter(2))
            yield simulator.timeout(0.001)
            assert admission.queue_depth("r") == 2
            admission.release("r")
            yield simulator.timeout(0.001)
            assert order == [1]
            admission.release("r")
            yield simulator.all_of([first, second])

        simulator.run_process(main())
        assert order == [1, 2]
        # One holder remains (waiter 2 was handed the slot and never
        # released); in_flight must reflect exactly that.
        assert admission.in_flight("r") == 1
        assert admission.queue_depth("r") == 0

    def test_overload_on_the_wire_uses_the_pinned_code(self):
        """A shed request surfaces to REST callers as code 'overloaded'."""
        deployment = self.seeded_deployment()
        admission = self.tight_admission(deployment)
        admission.admit_instant("tag.get")
        reply = deployment.palaemon.dispatcher.handle(
            {"route": "tag.get", "policy": "ml_policy",
             "service": "ml_app"}, transport="rest")
        assert reply["code"] == "overloaded"
        assert reply["kind"] == "ServiceOverloadedError"


class TestInProcessInvoker:
    def test_client_policy_crud_rides_the_dispatcher(self):
        deployment = Deployment()
        policy = deployment.make_policy()
        deployment.client.create_policy(deployment.palaemon, policy)
        read_back = deployment.client.read_policy(deployment.palaemon,
                                                  policy.name)
        assert read_back.name == policy.name
        metrics = deployment.palaemon.telemetry.metrics
        assert metrics.counter("palaemon_dispatch_requests_total",
                               route="policy.create",
                               transport="inprocess").value == 1
        assert metrics.counter("palaemon_dispatch_requests_total",
                               route="policy.read",
                               transport="inprocess").value == 1

    def test_invoker_raises_typed_domain_errors(self):
        deployment = Deployment()
        with pytest.raises(PolicyNotFoundError):
            deployment.client.read_policy(deployment.palaemon, "ghost")
        metrics = deployment.palaemon.telemetry.metrics
        assert metrics.counter("palaemon_dispatch_errors_total",
                               route="policy.read", transport="inprocess",
                               code="policy_not_found").value == 1

    def test_unattested_client_is_refused_before_dispatch(self):
        deployment = Deployment()
        stranger = PalaemonClient("stranger",
                                  DeterministicRandom(b"stranger"))
        with pytest.raises(AttestationError):
            stranger.read_policy(deployment.palaemon, "anything")

    def test_generic_invoke_reaches_any_registered_route(self):
        deployment = Deployment()
        names = deployment.client.invoke(deployment.palaemon, "policy.list")
        assert names == []
        described = deployment.client.invoke(deployment.palaemon,
                                             "instance.describe")
        assert described["name"] == deployment.palaemon.name


class TestOperationTableRendering:
    def test_table_has_one_row_per_operation(self):
        from repro.core.dispatch import render_operation_table

        table = render_operation_table()
        lines = table.splitlines()
        registry = default_registry()
        assert len(lines) == 2 + len(registry.names())
        for name in registry.names():
            assert f"| `{name}` |" in table

    def test_peer_routes_marked_with_peer_auth(self):
        from repro.core.dispatch import render_operation_table

        registry = default_registry()
        for name in ("federation.fetch", "failover.replicate"):
            assert registry.get(name).auth == AUTH_PEER
        assert "| peer |" in render_operation_table()
