"""Table I — how popular services obtain secrets (args / env / files).

Regenerates the survey table and verifies that every channel each service
uses is covered by a PALAEMON delivery mechanism, exercising the actual
injection code path for each channel.
"""

from repro.apps.secretconfig import (
    PALAEMON_CHANNEL_MECHANISMS,
    SECRET_CHANNEL_SURVEY,
    coverage_report,
)
from repro.benchlib.tables import format_table
from repro.fs.injection import inject_secrets

from benchmarks.conftest import run_once


def _check(flag: bool) -> str:
    return "yes" if flag else "no"


def test_table1_secret_channels(benchmark):
    def experiment():
        # Exercise each channel's actual mechanism once.
        secrets = {"DB_PASSWORD": b"hunter2"}
        file_injected = inject_secrets(
            b"password = $$PALAEMON$DB_PASSWORD$$", secrets)
        env_injected = inject_secrets(
            b"$$PALAEMON$DB_PASSWORD$$", secrets).decode()
        arg_injected = inject_secrets(
            b"--password=$$PALAEMON$DB_PASSWORD$$", secrets).decode()
        return file_injected, env_injected, arg_injected

    file_injected, env_injected, arg_injected = run_once(benchmark,
                                                         experiment)
    assert file_injected == b"password = hunter2"
    assert env_injected == "hunter2"
    assert arg_injected == "--password=hunter2"

    rows = [[service.program, service.version, service.language,
             _check(service.args), _check(service.env),
             _check(service.files),
             "*" if service.evaluated else ""]
            for service in SECRET_CHANNEL_SURVEY]
    print()
    print(format_table(
        ["Program", "Version", "Lang.", "Args.", "Env.", "Files", "§V"],
        rows, title="Table I: how popular services obtain secrets"))

    # Every used channel is covered by a PALAEMON mechanism.
    for program, channels, covered in coverage_report():
        assert covered, f"{program}: uncovered channel"
    assert set(PALAEMON_CHANNEL_MECHANISMS) == {"args", "env", "files"}

    # Spot-check rows against the paper's table.
    by_name = {s.program: s for s in SECRET_CHANNEL_SURVEY}
    assert by_name["MariaDB"].channels == ("args", "env", "files")
    assert by_name["Redis"].channels == ("files",)
    assert by_name["Memcached"].channels == ()
