"""End-to-end tests for the PALAEMON service: CRUD, attestation, secrets,
tags, strict mode, imports, and the main attack scenarios."""

import pytest

from repro.core.attestation import AttestationEvidence
from repro.core.policy import ImportSpec
from repro.core.secrets import SecretKind, SecretSpec
from repro.core.service import PalaemonService
from repro.crypto.primitives import DeterministicRandom, sha256
from repro.crypto.signatures import KeyPair
from repro.errors import (
    AccessDeniedError,
    AttestationError,
    MrenclaveNotPermittedError,
    PlatformNotPermittedError,
    PolicyError,
    PolicyExistsError,
    PolicyNotFoundError,
    StrictModeError,
)
from repro.fs.blockstore import BlockStore
from repro.tee.image import build_image
from repro.tee.platform import SGXPlatform

from tests.core.conftest import Deployment


class TestPolicyCrud:
    def test_create_and_read(self, deployment):
        policy = deployment.make_policy()
        deployment.client.create_policy(deployment.palaemon, policy)
        fetched = deployment.client.read_policy(deployment.palaemon,
                                                "ml_policy")
        assert fetched.name == "ml_policy"

    def test_duplicate_name_rejected(self, deployment):
        policy = deployment.make_policy()
        deployment.client.create_policy(deployment.palaemon, policy)
        with pytest.raises(PolicyExistsError):
            deployment.client.create_policy(deployment.palaemon, policy)

    def test_read_missing_policy(self, deployment):
        with pytest.raises(PolicyNotFoundError):
            deployment.client.read_policy(deployment.palaemon, "ghost")

    def test_wrong_certificate_denied(self, deployment):
        """Only the creating certificate can access a policy (§IV-E)."""
        from repro.core.client import PalaemonClient

        policy = deployment.make_policy()
        deployment.client.create_policy(deployment.palaemon, policy)
        intruder = PalaemonClient("intruder",
                                  DeterministicRandom(b"intruder"))
        intruder.attest_instance_via_ca(deployment.palaemon,
                                        deployment.ca.root_public_key,
                                        now=deployment.simulator.now)
        with pytest.raises(AccessDeniedError):
            intruder.read_policy(deployment.palaemon, "ml_policy")

    def test_update_policy(self, deployment):
        policy = deployment.make_policy()
        deployment.client.create_policy(deployment.palaemon, policy)
        policy.secrets.append(SecretSpec(name="EXTRA",
                                         kind=SecretKind.RANDOM))
        deployment.client.update_policy(deployment.palaemon, policy)
        fetched = deployment.client.read_policy(deployment.palaemon,
                                                "ml_policy")
        assert any(s.name == "EXTRA" for s in fetched.secrets)

    def test_update_preserves_existing_secret_values(self, deployment):
        policy = deployment.make_policy()
        deployment.client.create_policy(deployment.palaemon, policy)
        before = deployment.palaemon.store.get("secrets",
                                               "ml_policy")["API_KEY"].value
        policy.secrets.append(SecretSpec(name="EXTRA",
                                         kind=SecretKind.RANDOM))
        deployment.client.update_policy(deployment.palaemon, policy)
        after = deployment.palaemon.store.get("secrets",
                                              "ml_policy")["API_KEY"].value
        assert before == after

    def test_delete_policy(self, deployment):
        policy = deployment.make_policy()
        deployment.client.create_policy(deployment.palaemon, policy)
        deployment.client.delete_policy(deployment.palaemon, "ml_policy")
        assert deployment.palaemon.list_policies() == []

    def test_unattested_client_refused_locally(self, deployment):
        from repro.core.client import PalaemonClient

        stranger = PalaemonClient("stranger", DeterministicRandom(b"s"))
        with pytest.raises(AttestationError, match="has not attested"):
            stranger.create_policy(deployment.palaemon,
                                   deployment.make_policy())

    def test_not_serving_rejected(self, deployment):
        deployment.stop_palaemon()
        with pytest.raises(PolicyError, match="not serving"):
            deployment.client.create_policy(deployment.palaemon,
                                            deployment.make_policy())


class TestBoardGovernance:
    def test_rejecting_board_blocks_create(self):
        deployment = Deployment(seed=b"board-reject")
        for service in deployment.approval_services.values():
            service.decision_rule = lambda _request: False
        from repro.errors import ApprovalDeniedError

        with pytest.raises(ApprovalDeniedError):
            deployment.client.create_policy(deployment.palaemon,
                                            deployment.make_policy())

    def test_veto_blocks_update(self):
        deployment = Deployment(seed=b"veto", veto_members=("member-0",))
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        # The veto member turns against further changes.
        deployment.approval_services["approval-member-0"].decision_rule = (
            lambda _request: False)
        from repro.errors import VetoError

        policy = deployment.make_policy()
        with pytest.raises(VetoError):
            deployment.client.update_policy(deployment.palaemon, policy)

    def test_policy_without_board_needs_no_approval(self, deployment):
        policy = deployment.make_policy(with_board=False)
        for service in deployment.approval_services.values():
            service.decision_rule = lambda _request: False
        deployment.client.create_policy(deployment.palaemon, policy)


class TestAttestation:
    def create(self, deployment, **kwargs):
        policy = deployment.make_policy(**kwargs)
        deployment.client.create_policy(deployment.palaemon, policy)
        return policy

    def test_valid_application_gets_config(self, deployment):
        self.create(deployment)
        evidence = deployment.evidence_for("ml_policy")
        config = deployment.palaemon.attest_application(evidence)
        assert config.command == ["python", "/app.py"]
        assert config.environment == {"MODE": "production"}
        assert len(config.fs_key) == 32
        assert "API_KEY" in config.secrets

    def test_wrong_mrenclave_rejected(self, deployment):
        """A tampered application binary never receives secrets."""
        self.create(deployment)
        tampered = build_image("ml-engine", seed=b"evil")
        evidence = deployment.evidence_for("ml_policy", image=tampered)
        with pytest.raises(MrenclaveNotPermittedError):
            deployment.palaemon.attest_application(evidence)

    def test_unknown_policy_rejected(self, deployment):
        evidence = deployment.evidence_for("ghost_policy")
        with pytest.raises(AttestationError, match="no policy"):
            deployment.palaemon.attest_application(evidence)

    def test_wrong_platform_rejected(self, deployment):
        self.create(deployment, platforms=[b"\x99" * 16])
        evidence = deployment.evidence_for("ml_policy")
        with pytest.raises(PlatformNotPermittedError):
            deployment.palaemon.attest_application(evidence)

    def test_unenrolled_platform_rejected(self, deployment):
        self.create(deployment)
        rogue = SGXPlatform(deployment.simulator, "rogue",
                            DeterministicRandom(b"rogue"))
        evidence = deployment.evidence_for("ml_policy", platform=rogue)
        with pytest.raises(AttestationError, match="unenrolled"):
            deployment.palaemon.attest_application(evidence)

    def test_tls_key_binding_enforced(self, deployment):
        """Evidence must bind the TLS key: a MITM swapping keys fails."""
        self.create(deployment)
        honest = deployment.evidence_for("ml_policy")
        mitm_keys = KeyPair.generate(DeterministicRandom(b"mitm"), bits=512)
        swapped = AttestationEvidence(
            quote=honest.quote, policy_name=honest.policy_name,
            service_name=honest.service_name,
            tls_public_key=mitm_keys.public)
        with pytest.raises(AttestationError, match="TLS public key"):
            deployment.palaemon.attest_application(swapped)

    def test_random_secrets_distinct_per_policy(self, deployment):
        self.create(deployment, name="policy_a")
        self.create(deployment, name="policy_b")
        config_a = deployment.palaemon.attest_application(
            deployment.evidence_for("policy_a"))
        config_b = deployment.palaemon.attest_application(
            deployment.evidence_for("policy_b"))
        assert config_a.secrets["API_KEY"] != config_b.secrets["API_KEY"]

    def test_execution_count_tracks_attestations(self, deployment):
        """The ML metering use case: the provider can count executions."""
        self.create(deployment)
        for _ in range(3):
            deployment.palaemon.attest_application(
                deployment.evidence_for("ml_policy"))
        assert deployment.palaemon.execution_count("ml_policy",
                                                   "ml_app") == 3

    def test_secret_injection_into_files(self, deployment):
        self.create(deployment, injection_files={
            "/etc/app.conf": b"api_key = $$PALAEMON$API_KEY$$\n"})
        config = deployment.palaemon.attest_application(
            deployment.evidence_for("ml_policy"))
        injected = config.injected_files["/etc/app.conf"]
        assert injected.startswith(b"api_key = ")
        assert b"$$PALAEMON$" not in injected
        assert config.secrets["API_KEY"] in injected

    def test_secret_injection_into_env_and_args(self, deployment):
        policy = deployment.make_policy()
        policy.services[0].environment["TOKEN"] = "$$PALAEMON$API_KEY$$"
        policy.services[0].command = ["app", "--key=$$PALAEMON$API_KEY$$"]
        deployment.client.create_policy(deployment.palaemon, policy)
        config = deployment.palaemon.attest_application(
            deployment.evidence_for("ml_policy"))
        assert "$$PALAEMON$" not in config.environment["TOKEN"]
        assert "$$PALAEMON$" not in config.command[1]


class TestTagsAndStrictMode:
    def setup_policy(self, deployment, strict=False):
        policy = deployment.make_policy(strict_mode=strict)
        deployment.client.create_policy(deployment.palaemon, policy)
        return policy

    def test_tag_round_trip(self, deployment):
        self.setup_policy(deployment)
        deployment.palaemon.update_tag_instant("ml_policy", "ml_app",
                                               b"\x01" * 32)
        assert deployment.palaemon.get_tag_instant(
            "ml_policy", "ml_app") == b"\x01" * 32

    def test_tag_delivered_in_config(self, deployment):
        self.setup_policy(deployment)
        deployment.palaemon.update_tag_instant("ml_policy", "ml_app",
                                               b"\x02" * 32)
        config = deployment.palaemon.attest_application(
            deployment.evidence_for("ml_policy"))
        assert config.fs_tag == b"\x02" * 32

    def test_strict_mode_blocks_restart_after_unclean_exit(self, deployment):
        self.setup_policy(deployment, strict=True)
        deployment.palaemon.attest_application(
            deployment.evidence_for("ml_policy"))
        # No clean-exit tag push happened; a second attestation must fail.
        with pytest.raises(StrictModeError):
            deployment.palaemon.attest_application(
                deployment.evidence_for("ml_policy"))

    def test_strict_mode_allows_restart_after_clean_exit(self, deployment):
        self.setup_policy(deployment, strict=True)
        deployment.palaemon.attest_application(
            deployment.evidence_for("ml_policy"))
        deployment.palaemon.update_tag_instant("ml_policy", "ml_app",
                                               b"\x03" * 32, clean_exit=True)
        deployment.palaemon.attest_application(
            deployment.evidence_for("ml_policy"))

    def test_non_strict_mode_allows_unclean_restart(self, deployment):
        self.setup_policy(deployment, strict=False)
        deployment.palaemon.attest_application(
            deployment.evidence_for("ml_policy"))
        deployment.palaemon.attest_application(
            deployment.evidence_for("ml_policy"))

    def test_tag_update_latency_6x_read(self, deployment):
        """Fig 11 left: updates commit to disk, reads do not."""
        self.setup_policy(deployment)
        sim = deployment.simulator

        def timed_update():
            start = sim.now
            yield sim.process(deployment.palaemon.update_tag(
                "ml_policy", "ml_app", b"\x04" * 32))
            return sim.now - start

        def timed_read():
            start = sim.now
            yield sim.process(deployment.palaemon.get_tag(
                "ml_policy", "ml_app"))
            return sim.now - start

        update_latency = sim.run_process(timed_update())
        read_latency = sim.run_process(timed_read())
        assert 4 <= update_latency / read_latency <= 8

    def test_unknown_service_state(self, deployment):
        with pytest.raises(PolicyNotFoundError):
            deployment.palaemon.get_tag_instant("nope", "nope")


class TestSecretImportExport:
    def test_cross_policy_import(self, deployment):
        """§III-A(g): exports flow between policies under access control."""
        producer = deployment.make_policy(
            name="producer", secrets=[SecretSpec(
                name="MODEL_KEY", kind=SecretKind.RANDOM,
                export_to=("consumer",))])
        deployment.client.create_policy(deployment.palaemon, producer)
        consumer = deployment.make_policy(
            name="consumer", secrets=[],
            imports=[ImportSpec(from_policy="producer",
                                secret_name="MODEL_KEY")])
        deployment.client.create_policy(deployment.palaemon, consumer)
        config = deployment.palaemon.attest_application(
            deployment.evidence_for("consumer"))
        producer_value = deployment.palaemon.store.get(
            "secrets", "producer")["MODEL_KEY"].value
        assert config.secrets["MODEL_KEY"] == producer_value

    def test_unexported_secret_denied(self, deployment):
        producer = deployment.make_policy(
            name="producer", secrets=[SecretSpec(
                name="MODEL_KEY", kind=SecretKind.RANDOM)])  # no export
        deployment.client.create_policy(deployment.palaemon, producer)
        thief = deployment.make_policy(
            name="thief", secrets=[],
            imports=[ImportSpec(from_policy="producer",
                                secret_name="MODEL_KEY")])
        deployment.client.create_policy(deployment.palaemon, thief)
        with pytest.raises(AccessDeniedError, match="does not export"):
            deployment.palaemon.attest_application(
                deployment.evidence_for("thief"))

    def test_export_is_per_destination(self, deployment):
        producer = deployment.make_policy(
            name="producer", secrets=[SecretSpec(
                name="MODEL_KEY", kind=SecretKind.RANDOM,
                export_to=("friend",))])
        deployment.client.create_policy(deployment.palaemon, producer)
        stranger = deployment.make_policy(
            name="stranger", secrets=[],
            imports=[ImportSpec(from_policy="producer",
                                secret_name="MODEL_KEY")])
        deployment.client.create_policy(deployment.palaemon, stranger)
        with pytest.raises(AccessDeniedError):
            deployment.palaemon.attest_application(
                deployment.evidence_for("stranger"))

    def test_import_alias(self, deployment):
        producer = deployment.make_policy(
            name="producer", secrets=[SecretSpec(
                name="MODEL_KEY", kind=SecretKind.RANDOM,
                export_to=("consumer",))])
        deployment.client.create_policy(deployment.palaemon, producer)
        consumer = deployment.make_policy(
            name="consumer", secrets=[],
            imports=[ImportSpec(from_policy="producer",
                                secret_name="MODEL_KEY",
                                local_name="UPSTREAM_KEY")])
        deployment.client.create_policy(deployment.palaemon, consumer)
        config = deployment.palaemon.attest_application(
            deployment.evidence_for("consumer"))
        assert "UPSTREAM_KEY" in config.secrets

    def test_import_from_unknown_policy(self, deployment):
        consumer = deployment.make_policy(
            name="consumer", secrets=[],
            imports=[ImportSpec(from_policy="ghost", secret_name="K")])
        deployment.client.create_policy(deployment.palaemon, consumer)
        with pytest.raises(PolicyError, match="unknown policy"):
            deployment.palaemon.attest_application(
                deployment.evidence_for("consumer"))


class TestInstanceIdentity:
    def test_identity_survives_restart(self):
        """§IV-B: the key pair is sealed; restarts keep the public key."""
        deployment = Deployment(seed=b"identity")
        first_key = deployment.palaemon.public_key
        deployment.stop_palaemon()
        restarted = PalaemonService(
            deployment.platform, deployment.volume,
            DeterministicRandom(b"different-runtime-rng"),
            board_evaluator=deployment.evaluator)
        assert restarted.public_key == first_key

    def test_restarted_instance_reads_policies(self):
        deployment = Deployment(seed=b"restart-read")
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        deployment.stop_palaemon()
        restarted = PalaemonService(
            deployment.platform, deployment.volume,
            DeterministicRandom(b"other"),
            board_evaluator=deployment.evaluator)
        deployment.simulator.run_process(restarted.start())
        assert restarted.list_policies() == ["ml_policy"]

    def test_different_platform_cannot_steal_identity(self):
        """The sealed identity is bound to the platform."""
        from repro.errors import SealingError

        deployment = Deployment(seed=b"steal")
        stolen_volume = BlockStore()
        stolen_volume.restore(deployment.volume.snapshot())
        thief_platform = SGXPlatform(deployment.simulator, "thief",
                                     DeterministicRandom(b"thief"))
        with pytest.raises(SealingError):
            PalaemonService(thief_platform, stolen_volume,
                            DeterministicRandom(b"thief-rng"))

    def test_secrets_encrypted_on_volume(self):
        deployment = Deployment(seed=b"at-rest")
        deployment.client.create_policy(deployment.palaemon,
                                        deployment.make_policy())
        config = deployment.palaemon.attest_application(
            deployment.evidence_for("ml_policy"))
        secret = config.secrets["API_KEY"]
        assert deployment.volume.scan_for(secret) == []
