"""Queueing primitives: resources, locks, and stores.

These model contended hardware and software: CPU thread pools, the SGX
driver's global EPC lock, disk commit queues, and mailboxes. Queueing
discipline is FIFO, which is what makes the throughput/latency hockey-stick
curves in the paper's figures emerge naturally under open-loop load.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator

from repro.errors import StorageFaultError
from repro.sim.core import Event, Simulator


class Resource:
    """A counted resource with FIFO waiting (like a thread pool).

    Usage inside a process::

        grant = yield resource.acquire()
        try:
            yield simulator.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, simulator: Simulator, capacity: int,
                 name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.simulator = simulator
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self._peak_queue_length = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    @property
    def peak_queue_length(self) -> int:
        return self._peak_queue_length

    def acquire(self) -> Event:
        """Return an event that fires when a slot is granted."""
        grant = self.simulator.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.succeed(self)
        else:
            self._waiters.append(grant)
            self._peak_queue_length = max(self._peak_queue_length,
                                          len(self._waiters))
        return grant

    def release(self) -> None:
        """Release a slot; the oldest waiter (if any) is granted next."""
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self._in_use -= 1

    def use(self, duration: float) -> Generator[Event, Any, None]:
        """A sub-process that acquires, holds for ``duration``, releases."""
        yield self.acquire()
        try:
            yield self.simulator.timeout(duration)
        finally:
            self.release()


class SimLock(Resource):
    """A mutex: a resource with capacity one.

    Models e.g. the SGX driver's global EPC allocation lock that serializes
    enclave startups (Fig 9's "SGX w/o" bottleneck).
    """

    def __init__(self, simulator: Simulator, name: str = "lock") -> None:
        super().__init__(simulator, capacity=1, name=name)


class Store:
    """An unbounded FIFO mailbox of items (message queue).

    ``get`` returns an event that fires with the oldest item once one is
    available; ``put`` never blocks.
    """

    def __init__(self, simulator: Simulator, name: str = "store") -> None:
        self.simulator = simulator
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._closed:
            raise RuntimeError(f"put on closed store {self.name!r}")
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = self.simulator.event()
        if self._items:
            event.succeed(self._items.popleft())
        elif self._closed:
            event.fail(StoreClosed(self.name))
        else:
            self._getters.append(event)
        return event

    def cancel(self, event: Event) -> bool:
        """Withdraw a pending ``get`` event from the waiter queue.

        A getter abandoned by a timed-out caller would otherwise consume
        the next item put into the store — stealing the message a retry
        is waiting for. Returns True if the event was still queued.
        """
        try:
            self._getters.remove(event)
        except ValueError:
            return False
        return True

    def close(self) -> None:
        """Close the store; pending and future getters fail."""
        self._closed = True
        while self._getters:
            self._getters.popleft().fail(StoreClosed(self.name))


class StoreClosed(Exception):
    """Raised into getters of a closed :class:`Store`."""

    def __init__(self, name: str) -> None:
        super().__init__(f"store {name!r} closed")
        self.store_name = name


class DiskModel:
    """A single-spindle disk: serialized commits with fixed latency.

    PALAEMON's policy database commits to disk on every tag *update* but not
    on reads — the source of the ~6x read/update latency gap in Fig 11.
    """

    def __init__(self, simulator: Simulator, commit_latency: float,
                 name: str = "disk") -> None:
        self.simulator = simulator
        self.commit_latency = commit_latency
        self.name = name
        self._queue = SimLock(simulator, name=f"{name}-queue")
        self.commits = 0
        self.failed_commits = 0
        #: Optional fault injection (:class:`repro.sim.faults.FaultPlan`);
        #: attached via ``FaultPlan.attach_disk``, never set on hot paths.
        self.fault_plan = None

    def commit(self) -> Generator[Event, Any, None]:
        """A sub-process performing one durable commit.

        With a fault plan attached, a commit falling in a scheduled disk
        fault window still pays the latency (the drive spun, the write
        failed) and then raises :class:`StorageFaultError`.
        """
        yield self._queue.acquire()
        try:
            yield self.simulator.timeout(self.commit_latency)
            if (self.fault_plan is not None
                    and self.fault_plan.disk_faulty(self.name)):
                self.failed_commits += 1
                raise StorageFaultError(
                    f"disk {self.name!r}: injected commit failure")
            self.commits += 1
        finally:
            self._queue.release()


class CpuPool(Resource):
    """A pool of hyper-threads; ``execute`` runs a CPU burst on one."""

    def __init__(self, simulator: Simulator, threads: int,
                 name: str = "cpu") -> None:
        super().__init__(simulator, capacity=threads, name=name)
        self.busy_seconds = 0.0

    def execute(self, cpu_seconds: float) -> Generator[Event, Any, None]:
        """Consume ``cpu_seconds`` of one hyper-thread."""
        yield self.acquire()
        try:
            yield self.simulator.timeout(cpu_seconds)
            self.busy_seconds += cpu_seconds
        finally:
            self.release()

    def utilization(self, elapsed: float) -> float:
        """Average utilization over ``elapsed`` seconds of virtual time."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (elapsed * self.capacity))
