"""The finding model: what every lint rule produces.

A :class:`Finding` is one defect at one location — a rule code, a
severity, the subject (a policy name or a repo-relative file path), an
optional line, the human message, and a fix hint.  Findings order on a
stable key so reports are byte-identical across runs regardless of rule
execution order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class Severity(enum.IntEnum):
    """How bad a finding is; ordered so comparisons read naturally."""

    INFO = 10
    WARNING = 20
    ERROR = 30
    #: CRITICAL findings are rejected outright by the service gate
    #: (``create_policy(..., analyze=True)``) before board submission.
    CRITICAL = 40

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None


@dataclass(frozen=True)
class Finding:
    """One defect reported by one rule at one location."""

    code: str
    severity: Severity
    #: Policy name (policy/document rules) or repo-relative posix path
    #: (source rules).
    subject: str
    message: str
    line: Optional[int] = None
    hint: str = ""

    @property
    def location(self) -> str:
        if self.line is None:
            return self.subject
        return f"{self.subject}:{self.line}"

    def identity(self) -> str:
        """The stable key a baseline file suppresses findings by."""
        return f"{self.code} {self.location}"

    def sort_key(self) -> Tuple[str, int, str, str]:
        return (self.subject, self.line or 0, self.code, self.message)

    def to_dict(self) -> dict:
        document = {
            "code": self.code,
            "severity": self.severity.name,
            "subject": self.subject,
            "message": self.message,
        }
        if self.line is not None:
            document["line"] = self.line
        if self.hint:
            document["hint"] = self.hint
        return document


def sort_findings(findings) -> list:
    """Deterministic ordering: subject, line, code, message (deduped)."""
    return sorted(set(findings), key=Finding.sort_key)
