"""Reporters: human-readable text and machine-readable JSON.

Neither embeds timestamps, absolute paths, or environment details —
output is a pure function of the findings, so CI can diff it and the
test suite can assert byte-identical reruns.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.analysis.findings import Finding, Severity

_SEVERITY_TAGS = {
    Severity.INFO: "info",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
    Severity.CRITICAL: "CRITICAL",
}


def render_text(findings: Iterable[Finding], suppressed: int = 0) -> str:
    """One line per finding plus a summary, sorted and stable."""
    findings = list(findings)
    lines: List[str] = []
    for finding in findings:
        tag = _SEVERITY_TAGS[finding.severity]
        lines.append(
            f"{finding.location}: {tag} [{finding.code}] "
            f"{finding.message}")
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    lines.append(_summary_line(findings, suppressed))
    return "\n".join(lines) + "\n"


def render_json(findings: Iterable[Finding], suppressed: int = 0) -> str:
    """Stable JSON: sorted keys, sorted findings, trailing newline."""
    findings = list(findings)
    document = {
        "findings": [finding.to_dict() for finding in findings],
        "summary": {
            "total": len(findings),
            "suppressed": suppressed,
            "by_severity": {
                severity.name: count
                for severity in Severity
                if (count := sum(1 for finding in findings
                                 if finding.severity is severity))},
        },
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def _summary_line(findings: List[Finding], suppressed: int) -> str:
    if not findings and not suppressed:
        return "palint: clean (0 findings)"
    counts = []
    for severity in (Severity.CRITICAL, Severity.ERROR, Severity.WARNING,
                     Severity.INFO):
        count = sum(1 for finding in findings
                    if finding.severity is severity)
        if count:
            counts.append(f"{count} {severity.name.lower()}")
    rendered = ", ".join(counts) if counts else "0 findings"
    if suppressed:
        rendered += f" ({suppressed} suppressed by baseline)"
    return f"palint: {rendered}"
