"""Fig 17d — MariaDB TPC-C throughput vs buffer-pool size.

The sweep over 8-512 MB pools in native / EMU / HW. The reproduced shape:
below ~128 MB all configurations behave similarly (disk I/O dominates);
beyond it, more buffer cache helps native and EMU but *hurts* hardware mode
as the pool overflows the EPC and pages against the MEE.
"""

from repro import calibration
from repro.apps.mariadb import MariaDBServer
from repro.benchlib.harness import concurrency_sweep
from repro.benchlib.tables import format_table
from repro.tee.enclave import ExecutionMode

from benchmarks.conftest import run_once

_MODES = {
    "Native": ExecutionMode.NATIVE,
    "EMU": ExecutionMode.EMULATED,
    "HW": ExecutionMode.HARDWARE,
}


def _setup(pool_mb, mode):
    def setup(simulator):
        server = MariaDBServer(simulator, buffer_pool_mb=pool_mb, mode=mode)
        server.put_row("warehouse:1", b"stock-levels")

        def factory(_request_id):
            yield simulator.process(server.handle_transaction())
            assert server.get_row("warehouse:1") == b"stock-levels"

        return factory

    return setup


def _sweep_all():
    results = {}
    for pool_mb in calibration.MARIADB_BUFFER_POOL_SIZES_MB:
        for name, mode in _MODES.items():
            result = concurrency_sweep(
                f"{name}@{pool_mb}MB", _setup(pool_mb, mode),
                concurrencies=(16,), duration=2.0)
            results[(name, pool_mb)] = result.peak_rate()
    return results


def test_fig17d_mariadb(benchmark):
    tps = run_once(benchmark, _sweep_all)

    rows = [[pool_mb] + [tps[(name, pool_mb)] for name in _MODES]
            for pool_mb in calibration.MARIADB_BUFFER_POOL_SIZES_MB]
    print()
    print(format_table(
        ["pool (MB)"] + [f"{name} (tx/s)" for name in _MODES],
        rows, title="Fig 17d: MariaDB TPC-C vs buffer-pool size"))

    pools = calibration.MARIADB_BUFFER_POOL_SIZES_MB

    # Below 128 MB all configurations behave similarly (hardware I/O
    # dominates): every mode within 20% of native.
    for pool_mb in (8, 64):
        native = tps[("Native", pool_mb)]
        for name in _MODES:
            assert tps[(name, pool_mb)] / native > 0.80, (name, pool_mb)

    # Native and EMU improve monotonically with pool size.
    for name in ("Native", "EMU"):
        series = [tps[(name, pool_mb)] for pool_mb in pools]
        assert series == sorted(series), name

    # Hardware mode: throughput *decreases* past the EPC knee.
    assert tps[("HW", 512)] < tps[("HW", 256)] < tps[("HW", 128)]

    # The divergence at 512 MB is substantial: native >> HW.
    assert tps[("Native", 512)] / tps[("HW", 512)] > 1.5

    # Native peak in the paper's low-thousands band.
    assert 1_500 <= tps[("Native", 512)] <= 4_000
