"""The SCONE-like application runtime.

The runtime is the glue between applications and PALAEMON (§IV-A): it loads
the application into an enclave, performs the attestation handshake,
receives the configuration (arguments, environment, FS keys/tags, injected
files), mounts the shielded file system against the expected tag, and pushes
tag updates back to PALAEMON on close/sync/exit.
"""

from repro.runtime.scone import SconeRuntime
from repro.runtime.application import RunningApplication
from repro.runtime.startup import AttestationVariant, StartupModel, startup_process

from repro.tee.enclave import ExecutionMode

__all__ = [
    "AttestationVariant",
    "ExecutionMode",
    "RunningApplication",
    "SconeRuntime",
    "StartupModel",
    "startup_process",
]
