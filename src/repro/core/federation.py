"""Decentralized PALAEMON: secret sharing between service instances.

The paper evaluates "the retrieval of keys from remote PALAEMON services
... when using PALAEMON in a decentralized fashion" (Fig 12) and lists
"secret sharing between service instances" among the features absent from
other KMSs (§VII). This module implements that federation layer:

- instances *peer* after mutually attesting (each verifies the other's
  CA certificate, so only genuine PALAEMON builds join the mesh);
- a policy's secrets can be fetched from a peer when the local instance
  does not hold the policy, subject to the same export rules that govern
  cross-policy imports;
- all peer traffic is modelled over TLS, so the Fig 12 benchmark's
  geography sensitivity comes from connection establishment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.core.service import PalaemonService
from repro.crypto.signatures import PublicKey
from repro.errors import AccessDeniedError, AttestationError, PolicyNotFoundError
from repro.sim.core import Event, Simulator
from repro.sim.network import Site, rtt_between
from repro.tls.handshake import handshake_latency


@dataclass
class PeerLink:
    """An attested, long-lived connection to a remote instance."""

    peer: "FederatedInstance"
    established: bool = False
    requests: int = 0


class FederatedInstance:
    """A PALAEMON instance participating in a federation mesh."""

    def __init__(self, service: PalaemonService, site: Site,
                 ca_root: PublicKey) -> None:
        self.service = service
        self.site = site
        self.ca_root = ca_root
        self._links: Dict[str, PeerLink] = {}

    @property
    def simulator(self) -> Simulator:
        return self.service.simulator

    @property
    def name(self) -> str:
        return self.service.name

    # -- peering ---------------------------------------------------------

    def peer_with(self, other: "FederatedInstance",
                  ) -> Generator[Event, Any, None]:
        """Mutually attest and establish a persistent TLS link."""
        for side, counterpart in ((self, other), (other, self)):
            certificate = counterpart.service.certificate
            if certificate is None:
                raise AttestationError(
                    f"instance {counterpart.name!r} has no CA certificate")
            certificate.verify(now=self.simulator.now,
                               trusted_root=side.ca_root)
            if certificate.public_key != counterpart.service.public_key:
                raise AttestationError(
                    f"instance {counterpart.name!r} presented a certificate "
                    f"for a different key")
        yield self.simulator.timeout(
            handshake_latency(self.site, other.site))
        self._links[other.name] = PeerLink(peer=other, established=True)
        other._links[self.name] = PeerLink(peer=self, established=True)
        for side, counterpart in ((self, other), (other, self)):
            side.service.telemetry.inc("palaemon_federation_peers_total")
            side.service.telemetry.gauge("palaemon_federation_peer_links",
                                         len(side._links))
            side.service.telemetry.audit("federation.peer",
                                         peer=counterpart.name,
                                         site=counterpart.site.value)

    def peers(self) -> List[str]:
        return sorted(self._links)

    # -- remote secret retrieval ----------------------------------------------

    def fetch_remote_secrets(self, peer_name: str, policy_name: str,
                             requesting_policy: str,
                             secret_names: List[str],
                             ) -> Generator[Event, Any, Dict[str, bytes]]:
        """Retrieve exported secrets of a policy held by a peer.

        The peer enforces the owning policy's export list against the
        *requesting* policy's name — federation does not widen access, it
        only moves it across instances. One request fetches any number of
        secrets (the Fig 12 flatness).
        """
        link = self._links.get(peer_name)
        if link is None or not link.established:
            raise AttestationError(f"no attested link to {peer_name!r}")
        telemetry = self.service.telemetry
        with telemetry.span("federation.fetch", peer=peer_name,
                            policy=policy_name):
            round_trip = rtt_between(self.site, link.peer.site)
            yield self.simulator.timeout(round_trip)
            link.requests += 1
            secrets = link.peer._serve_secret_request(policy_name,
                                                      requesting_policy,
                                                      secret_names)
        telemetry.inc("palaemon_federation_fetches_total")
        telemetry.audit("federation.fetch", peer=peer_name,
                        policy=policy_name,
                        requesting_policy=requesting_policy,
                        secrets=len(secrets))
        return secrets

    def _serve_secret_request(self, policy_name: str, requesting_policy: str,
                              secret_names: List[str]) -> Dict[str, bytes]:
        policy = self.service.store.get("policies", policy_name)
        if policy is None:
            raise PolicyNotFoundError(
                f"peer {self.name!r} has no policy {policy_name!r}")
        secrets = self.service.store.get("secrets", policy_name)
        result: Dict[str, bytes] = {}
        for name in secret_names:
            if not policy.exports_secret_to(name, requesting_policy):
                self.service.telemetry.audit(
                    "federation.serve", policy=policy_name,
                    requesting_policy=requesting_policy, secret=name,
                    result="denied")
                raise AccessDeniedError(
                    f"policy {policy_name!r} does not export {name!r} to "
                    f"{requesting_policy!r}")
            result[name] = secrets[name].value
        self.service.telemetry.audit(
            "federation.serve", policy=policy_name,
            requesting_policy=requesting_policy, secrets=len(result),
            result="served")
        return result


class Federation:
    """Convenience wrapper: a fully-meshed set of federated instances."""

    def __init__(self) -> None:
        self.instances: Dict[str, FederatedInstance] = {}

    def add(self, instance: FederatedInstance) -> None:
        self.instances[instance.name] = instance

    def connect_all(self) -> Generator[Event, Any, None]:
        """Peer every pair of instances (sequentially, for determinism)."""
        names = sorted(self.instances)
        for i, left in enumerate(names):
            for right in names[i + 1:]:
                yield self.instances[left].simulator.process(
                    self.instances[left].peer_with(self.instances[right]))

    def locate_policy(self, policy_name: str) -> Optional[str]:
        """Name of an instance holding the policy, if any."""
        for name in sorted(self.instances):
            instance = self.instances[name]
            if instance.service.store.get("policies", policy_name) is not None:
                return name
        return None
