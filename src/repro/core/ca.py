"""The PALAEMON certification authority (§III-B).

The CA enables TLS-based attestation of managed PALAEMON instances: it first
attests a candidate instance explicitly (quote -> IAS report), checks the
instance's MRENCLAVE against the allow-list of *correct PALAEMON versions
baked into the CA binary*, and only then signs a TLS certificate for the
instance's public key. Clients that trust the CA root can attest any
instance simply by checking its TLS certificate chain.

Because the MRE set lives inside the CA image, changing it means shipping a
new CA image with a new MRENCLAVE — which is exactly how PALAEMON updates are
governed: the CA's own update requires policy-board approval (§III-E), and
certificate lifetimes are kept short so retired PALAEMON versions age out.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.crypto.certificates import Certificate, CertificateAuthority
from repro.crypto.primitives import DeterministicRandom
from repro.crypto.signatures import PublicKey
from repro.errors import AttestationError, QuoteError
from repro.tee.enclave import Enclave
from repro.tee.ias import IntelAttestationService
from repro.tee.image import EnclaveImage, build_image
from repro.tee.platform import SGXPlatform
from repro.tee.quoting import Quote


def build_ca_image(approved_palaemon_mrenclaves: FrozenSet[bytes],
                   version: str = "1.0") -> EnclaveImage:
    """Build a CA image with the MRE allow-list embedded in its binary.

    The allow-list is concatenated into the image's initialized data, so any
    tampering with it changes the CA's own MRENCLAVE.
    """
    embedded = b"".join(sorted(approved_palaemon_mrenclaves))
    return EnclaveImage(name="palaemon-ca",
                        code=build_image("palaemon-ca-code",
                                         version=version).code,
                        initialized_data=embedded,
                        heap_bytes=4 * 1024 * 1024,
                        version=version)


class PalaemonCA:
    """The CA service, running inside its own enclave."""

    #: Default certificate lifetime: short, to force timely upgrades.
    DEFAULT_CERT_LIFETIME_SECONDS = 7 * 24 * 3600.0

    def __init__(self, platform: SGXPlatform,
                 ias: IntelAttestationService,
                 approved_mrenclaves: FrozenSet[bytes],
                 rng: DeterministicRandom,
                 version: str = "1.0",
                 cert_lifetime: float = DEFAULT_CERT_LIFETIME_SECONDS) -> None:
        self.platform = platform
        self.ias = ias
        self.approved_mrenclaves = frozenset(approved_mrenclaves)
        self.cert_lifetime = cert_lifetime
        self.image = build_ca_image(self.approved_mrenclaves, version=version)
        self.enclave: Enclave = platform.launch_instant(self.image)
        self._authority = CertificateAuthority.create(
            f"palaemon-ca-{version}", rng.fork(b"ca-root"))
        self.certificates_issued = 0

    @property
    def mrenclave(self) -> bytes:
        """The CA's own identity (clients attest the CA by this)."""
        return self.enclave.mrenclave

    @property
    def root_public_key(self) -> PublicKey:
        return self._authority.root_public_key

    def issue_instance_certificate(self, quote: Quote,
                                   instance_public_key: PublicKey,
                                   subject: str) -> Certificate:
        """Attest a PALAEMON instance and issue its TLS certificate.

        The instance must present a quote whose report data binds
        ``instance_public_key`` and whose MRENCLAVE is in the allow-list.
        The quote is verified through IAS (the CA's one place where IAS
        latency is paid — once per instance, not per client connection).
        """
        from repro.crypto.primitives import sha256

        report = self.ias.verify_quote_local(quote)
        try:
            report.verify(self.ias.public_key)
        except QuoteError as exc:
            raise AttestationError(
                f"IAS rejected the instance quote: {exc}") from exc
        if report.report_data != sha256(instance_public_key.to_bytes()):
            raise AttestationError(
                "instance quote does not bind the instance public key")
        if report.mrenclave not in self.approved_mrenclaves:
            raise AttestationError(
                f"MRENCLAVE {report.mrenclave.hex()[:16]}... is not an "
                f"approved PALAEMON version")
        now = self.platform.simulator.now
        certificate = self._authority.issue(
            subject=subject,
            public_key=instance_public_key,
            not_before=now,
            not_after=now + self.cert_lifetime,
            attributes={"mrenclave": report.mrenclave.hex(),
                        "role": "palaemon-instance"},
        )
        self.certificates_issued += 1
        return certificate

    def updated(self, new_approved_mrenclaves: FrozenSet[bytes],
                rng: DeterministicRandom, version: str) -> "PalaemonCA":
        """Build the successor CA with a new allow-list (a CA update).

        Deploying it is governed by the PALAEMON policy board — see
        :mod:`repro.core.update`. The successor has a fresh root key, so
        certificates from a retired CA do not chain to the new root.
        """
        return PalaemonCA(self.platform, self.ias, new_approved_mrenclaves,
                          rng, version=version,
                          cert_lifetime=self.cert_lifetime)
