"""Table I: how popular services obtain secrets, and PALAEMON's coverage.

The paper surveys ten services for which channels they accept secrets
through — command-line arguments, environment variables, and files — to
motivate supporting all three transparently. This module encodes that
survey and maps every channel to the PALAEMON mechanism that serves it,
so the Table I benchmark can verify coverage mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class SecretChannels:
    """One surveyed service's secret-acquisition channels."""

    program: str
    version: str
    language: str
    args: bool
    env: bool
    files: bool
    #: Evaluated as a macro-benchmark in §V of the paper.
    evaluated: bool = False

    @property
    def channels(self) -> Tuple[str, ...]:
        present = []
        if self.args:
            present.append("args")
        if self.env:
            present.append("env")
        if self.files:
            present.append("files")
        return tuple(present)


#: The survey rows of Table I, verbatim from the paper.
SECRET_CHANNEL_SURVEY: List[SecretChannels] = [
    SecretChannels("Consul", "1.2.3", "Go", False, True, True),
    SecretChannels("MariaDB", "10.1.26", "C/C++", True, True, True,
                   evaluated=True),
    SecretChannels("Memcached", "1.5.6", "C", False, False, False,
                   evaluated=True),
    SecretChannels("MongoDB", "4.0", "C++", True, True, True),
    SecretChannels("Nginx", "2.4", "C", True, True, True, evaluated=True),
    SecretChannels("PostgreSQL", "10.5", "C", True, True, True),
    SecretChannels("Redis", "4.0.11", "C", False, False, True),
    SecretChannels("Vault", "0.8.1", "Go", True, False, True,
                   evaluated=True),
    SecretChannels("WordPress", "4.9.x", "PHP", False, False, True),
    SecretChannels("ZooKeeper", "3.4.11", "Java", False, False, True,
                   evaluated=True),
]

#: Which PALAEMON mechanism covers each channel (§III-A / §IV-A).
PALAEMON_CHANNEL_MECHANISMS: Dict[str, str] = {
    "args": "command-line arguments delivered in the attested AppConfig",
    "env": "environment variables delivered in the attested AppConfig",
    "files": "transparent $$PALAEMON$VAR$$ injection into config files",
}


def coverage_report() -> List[Tuple[str, Tuple[str, ...], bool]]:
    """(program, channels, fully-covered) for every surveyed service.

    Coverage is full for every service: each used channel has a PALAEMON
    mechanism; memcached (no channel at all — it takes TLS keys via its
    started configuration) is covered through injected startup arguments.
    """
    rows = []
    for service in SECRET_CHANNEL_SURVEY:
        covered = all(channel in PALAEMON_CHANNEL_MECHANISMS
                      for channel in service.channels)
        rows.append((service.program, service.channels, covered))
    return rows
