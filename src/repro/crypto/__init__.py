"""Cryptographic primitives for the PALAEMON reproduction.

Everything in this package is *functionally real* inside the simulation:
encryption actually hides plaintext, MACs actually detect tampering, and
signatures verify with nothing but the public key. The primitives are
deliberately textbook (SHA-256 keystream AEAD, RSA-FDH signatures) because
the paper's security argument depends on the *protocols* built on top, not
on the specific ciphers; a production deployment would swap in AES-GCM and
Ed25519.
"""

from repro.crypto.primitives import (
    DeterministicRandom,
    constant_time_equal,
    hkdf,
    hmac_sha256,
    sha256,
)
from repro.crypto.symmetric import AEADCipher, SecretBox
from repro.crypto.signatures import KeyPair, PublicKey, SigningKey, verify_signature
from repro.crypto.certificates import Certificate, CertificateAuthority
from repro.crypto.merkle import MerkleTree

__all__ = [
    "AEADCipher",
    "Certificate",
    "CertificateAuthority",
    "DeterministicRandom",
    "KeyPair",
    "MerkleTree",
    "PublicKey",
    "SecretBox",
    "SigningKey",
    "constant_time_equal",
    "hkdf",
    "hmac_sha256",
    "sha256",
    "verify_signature",
]
