"""Tests for the extension features: DCAP, federation, and fail-over."""

import pytest

from repro import calibration
from repro.core.failover import FailoverCoordinator
from repro.core.federation import FederatedInstance, Federation
from repro.core.policy import SecurityPolicy, ServiceSpec
from repro.core.secrets import SecretKind, SecretSpec
from repro.core.service import PalaemonService
from repro.crypto.primitives import DeterministicRandom, sha256
from repro.errors import (
    AccessDeniedError,
    AttestationError,
    PolicyError,
    PolicyNotFoundError,
    QuoteError,
)
from repro.fs.blockstore import BlockStore
from repro.sim.network import Site
from repro.tee.dcap import DCAPVerifier, ProvisioningAuthority
from repro.tee.image import build_image
from repro.tee.platform import SGXPlatform

from tests.core.conftest import Deployment


@pytest.fixture()
def deployment():
    return Deployment(seed=b"extensions")


class TestDCAP:
    def make_verifier(self, deployment, minimum_tcb=0):
        authority = ProvisioningAuthority(DeterministicRandom(b"intel"))
        pck = authority.certify_platform(deployment.platform)
        verifier = DCAPVerifier(authority.root_public_key,
                                minimum_tcb=minimum_tcb)
        verifier.install_certificate(pck)
        return authority, verifier

    def quote_from(self, deployment, image=None):
        image = image or deployment.app_image
        enclave = deployment.platform.launch_instant(image)
        return deployment.platform.quoting_enclave.quote(enclave, b"data")

    def test_offline_verification_succeeds(self, deployment):
        _, verifier = self.make_verifier(deployment)
        verifier.verify_quote(self.quote_from(deployment))
        assert verifier.quotes_verified == 1

    def test_unknown_platform_rejected(self, deployment):
        authority = ProvisioningAuthority(DeterministicRandom(b"intel"))
        verifier = DCAPVerifier(authority.root_public_key)
        with pytest.raises(QuoteError, match="no cached platform"):
            verifier.verify_quote(self.quote_from(deployment))

    def test_wrong_root_rejected(self, deployment):
        authority = ProvisioningAuthority(DeterministicRandom(b"intel"))
        pck = authority.certify_platform(deployment.platform)
        evil = ProvisioningAuthority(DeterministicRandom(b"evil"))
        verifier = DCAPVerifier(evil.root_public_key)
        from repro.errors import CertificateError

        with pytest.raises(CertificateError):
            verifier.install_certificate(pck)

    def test_tcb_pinning(self, deployment):
        """A pre-Spectre platform fails a post-Foreshadow TCB floor."""
        sim = deployment.simulator
        old_platform = SGXPlatform(sim, "old-node",
                                   DeterministicRandom(b"old"),
                                   microcode=calibration.MICROCODE_PRE_SPECTRE)
        authority = ProvisioningAuthority(DeterministicRandom(b"intel"))
        pck = authority.certify_platform(old_platform)
        verifier = DCAPVerifier(
            authority.root_public_key,
            minimum_tcb=calibration.MICROCODE_POST_FORESHADOW.revision)
        verifier.install_certificate(pck)
        enclave = old_platform.launch_instant(build_image("app"))
        quote = old_platform.quoting_enclave.quote(enclave, b"d")
        with pytest.raises(QuoteError, match="TCB"):
            verifier.verify_quote(quote)

    def test_key_substitution_rejected(self, deployment):
        """A quote signed by a non-certified key fails even if cached."""
        _, verifier = self.make_verifier(deployment)
        rogue = SGXPlatform(deployment.simulator, "rogue",
                            DeterministicRandom(b"rogue"))
        # The rogue claims the genuine platform's id in its report.
        rogue.quoting_enclave.platform_id = deployment.platform.platform_id
        enclave = rogue.launch_instant(build_image("app"))
        quote = rogue.quoting_enclave.quote(enclave, b"d")
        with pytest.raises(QuoteError, match="other than the certified"):
            verifier.verify_quote(quote)

    def test_lookup_serves_cached_certificates(self, deployment):
        authority, _ = self.make_verifier(deployment)
        pck = authority.lookup(deployment.platform.platform_id)
        assert pck is not None
        assert pck.tcb_revision == deployment.platform.microcode.revision
        assert authority.lookup(b"\x00" * 16) is None


def make_second_instance(deployment, name="palaemon-2", site=Site.SAME_DC):
    """A second genuine PALAEMON on its own platform, CA-certified."""
    rng = DeterministicRandom(name.encode())
    platform = SGXPlatform(deployment.simulator, f"{name}-node",
                           rng.fork(b"platform"))
    deployment.ias.register_platform(
        platform.quoting_enclave.attestation_public_key,
        platform.microcode.revision)
    service = PalaemonService(platform, BlockStore(f"{name}-volume"),
                              rng.fork(b"service"), name=name,
                              board_evaluator=deployment.evaluator)
    service.platform_registry.enroll(
        platform.platform_id,
        platform.quoting_enclave.attestation_public_key)
    deployment.simulator.run_process(service.start())
    service.obtain_certificate(deployment.ca)
    return service


class TestFederation:
    def make_pair(self, deployment):
        local = FederatedInstance(deployment.palaemon, Site.SAME_RACK,
                                  deployment.ca.root_public_key)
        remote_service = make_second_instance(deployment)
        remote = FederatedInstance(remote_service,
                                   Site.CONTINENTAL_7000KM,
                                   deployment.ca.root_public_key)
        deployment.simulator.run_process(local.peer_with(remote))
        return local, remote, remote_service

    def seed_remote_policy(self, deployment, remote_service,
                           export_to=("consumer_policy",)):
        policy = SecurityPolicy(
            name="producer_policy",
            services=[ServiceSpec(name="svc", image_name="img",
                                  mrenclaves=[deployment.app_image
                                              .mrenclave()])],
            secrets=[SecretSpec(name="SHARED_KEY", kind=SecretKind.RANDOM,
                                export_to=tuple(export_to))])
        remote_service.create_policy(policy, deployment.client.certificate)
        return policy

    def test_peering_establishes_links(self, deployment):
        local, remote, _ = self.make_pair(deployment)
        assert remote.name in local.peers()
        assert local.name in remote.peers()

    def test_uncertified_peer_rejected(self, deployment):
        local = FederatedInstance(deployment.palaemon, Site.SAME_RACK,
                                  deployment.ca.root_public_key)
        rng = DeterministicRandom(b"rogue-fed")
        rogue_platform = SGXPlatform(deployment.simulator, "rogue-node",
                                     rng.fork(b"p"))
        rogue = PalaemonService(rogue_platform, BlockStore("rv"),
                                rng.fork(b"s"), name="rogue",
                                version="tampered")
        deployment.simulator.run_process(rogue.start())
        rogue_fed = FederatedInstance(rogue, Site.SAME_DC,
                                      deployment.ca.root_public_key)
        with pytest.raises(AttestationError):
            deployment.simulator.run_process(local.peer_with(rogue_fed))
        assert rogue_fed.name not in local.peers()

    def test_remote_secret_retrieval(self, deployment):
        local, remote, remote_service = self.make_pair(deployment)
        self.seed_remote_policy(deployment, remote_service)

        def main():
            secrets = yield deployment.simulator.process(
                local.fetch_remote_secrets(
                    remote.name, "producer_policy", "consumer_policy",
                    ["SHARED_KEY"]))
            return secrets

        secrets = deployment.simulator.run_process(main())
        expected = remote_service.store.get(
            "secrets", "producer_policy")["SHARED_KEY"].value
        assert secrets["SHARED_KEY"] == expected

    def test_export_rules_enforced_across_instances(self, deployment):
        local, remote, remote_service = self.make_pair(deployment)
        self.seed_remote_policy(deployment, remote_service,
                                export_to=("someone_else",))

        def main():
            yield deployment.simulator.process(
                local.fetch_remote_secrets(
                    remote.name, "producer_policy", "consumer_policy",
                    ["SHARED_KEY"]))

        with pytest.raises(AccessDeniedError):
            deployment.simulator.run_process(main())

    def test_unknown_policy_on_peer(self, deployment):
        local, remote, _ = self.make_pair(deployment)

        def main():
            yield deployment.simulator.process(
                local.fetch_remote_secrets(remote.name, "ghost", "c", ["K"]))

        with pytest.raises(PolicyNotFoundError):
            deployment.simulator.run_process(main())

    def test_fetch_without_link_rejected(self, deployment):
        local = FederatedInstance(deployment.palaemon, Site.SAME_RACK,
                                  deployment.ca.root_public_key)

        def main():
            yield deployment.simulator.process(
                local.fetch_remote_secrets("nobody", "p", "c", ["K"]))

        with pytest.raises(AttestationError, match="no attested link"):
            deployment.simulator.run_process(main())

    def test_remote_fetch_latency_dominated_by_distance(self, deployment):
        local, remote, remote_service = self.make_pair(deployment)
        self.seed_remote_policy(deployment, remote_service)
        sim = deployment.simulator

        def main():
            start = sim.now
            yield sim.process(local.fetch_remote_secrets(
                remote.name, "producer_policy", "consumer_policy",
                ["SHARED_KEY"]))
            return sim.now - start

        elapsed = sim.run_process(main())
        assert elapsed >= calibration.RTT_7000_KM

    def test_federation_mesh_and_lookup(self, deployment):
        federation = Federation()
        local = FederatedInstance(deployment.palaemon, Site.SAME_RACK,
                                  deployment.ca.root_public_key)
        second = FederatedInstance(make_second_instance(deployment),
                                   Site.SAME_DC,
                                   deployment.ca.root_public_key)
        third = FederatedInstance(
            make_second_instance(deployment, name="palaemon-3"),
            Site.REGIONAL_300KM, deployment.ca.root_public_key)
        for instance in (local, second, third):
            federation.add(instance)
        deployment.simulator.run_process(federation.connect_all())
        assert len(local.peers()) == 2
        self.seed_remote_policy(deployment, second.service)
        assert federation.locate_policy("producer_policy") == second.name
        assert federation.locate_policy("nowhere") is None


class TestFailover:
    def make_coordinator(self, deployment):
        backup = make_second_instance(deployment, name="palaemon-backup")
        return FailoverCoordinator(deployment.palaemon, backup)

    def test_same_platform_backup_rejected(self, deployment):
        twin = PalaemonService(deployment.platform, BlockStore("twin"),
                               DeterministicRandom(b"twin"), name="twin")
        with pytest.raises(PolicyError, match="different platform"):
            FailoverCoordinator(deployment.palaemon, twin)

    def test_replication_flows(self, deployment):
        coordinator = self.make_coordinator(deployment)

        def main():
            sequence = yield deployment.simulator.process(
                coordinator.replicate("tags", "app", b"\x01" * 32))
            return sequence

        assert deployment.simulator.run_process(main()) == 1
        assert coordinator.replication_lag() == 0

    def test_promotion_exposes_replicated_state(self, deployment):
        coordinator = self.make_coordinator(deployment)

        def run():
            yield deployment.simulator.process(
                coordinator.replicate("tags", "app", b"\x02" * 32))
            coordinator.primary_crashed()
            promoted = yield deployment.simulator.process(
                coordinator.promote_backup())
            return promoted

        promoted = deployment.simulator.run_process(run())
        assert promoted is coordinator.backup
        assert promoted.store.get("tags", "app") == b"\x02" * 32
        assert coordinator.epoch == 2

    def test_promotion_refused_while_primary_serves(self, deployment):
        coordinator = self.make_coordinator(deployment)

        def main():
            yield deployment.simulator.process(coordinator.promote_backup())

        with pytest.raises(PolicyError, match="primary is serving"):
            deployment.simulator.run_process(main())

    def test_fenced_primary_cannot_restart(self, deployment):
        coordinator = self.make_coordinator(deployment)

        def run():
            yield deployment.simulator.process(
                coordinator.replicate("tags", "app", b"\x03" * 32))
            coordinator.primary_crashed()
            yield deployment.simulator.process(coordinator.promote_backup())

        deployment.simulator.run_process(run())
        assert coordinator.verify_primary_fenced()

    def test_no_writes_after_promotion_via_old_path(self, deployment):
        coordinator = self.make_coordinator(deployment)

        def run():
            coordinator.primary_crashed()
            yield deployment.simulator.process(coordinator.promote_backup())
            yield deployment.simulator.process(
                coordinator.replicate("tags", "app", b"\x04" * 32))

        with pytest.raises(PolicyError, match="before promotion"):
            deployment.simulator.run_process(run())
