"""The §VI production use case: handwriting-to-digital ML inference.

A company serves handwriting-recognition inference. The assets and their
owners: input images (customers), the Python inference engine and models
(the company). Nobody shares keys: the customer encrypts inputs with its
file-system key; the company encrypts code and models with its own; a
dedicated security policy in PALAEMON gives the *attested engine* — and only
it — access to both.

The measured numbers: 323 ms per image natively, 1202 ms under PALAEMON
(a 3.7x slowdown the customer accepted because results stay under 1.5 s).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro import calibration
from repro.crypto.primitives import DeterministicRandom, sha256
from repro.fs.blockstore import BlockStore
from repro.fs.shield import ProtectedFileSystem
from repro.sim.core import Event, Simulator
from repro.sim.resources import Resource
from repro.tee.enclave import ExecutionMode


class InferenceService:
    """The handwriting-inference pipeline over shielded volumes."""

    def __init__(self, simulator: Simulator,
                 mode: ExecutionMode = ExecutionMode.HARDWARE,
                 rng: Optional[DeterministicRandom] = None,
                 threads: int = 4) -> None:
        self.simulator = simulator
        self.mode = mode
        self._rng = rng or DeterministicRandom(b"ml-service")
        self.workers = Resource(simulator, capacity=threads,
                                name="inference-workers")
        # Two separately keyed shielded volumes: the company's (code +
        # models) and the customer's (input images, output text).
        self.company_volume = BlockStore("company-volume")
        self.company_key = self._rng.fork(b"company-key").bytes(32)
        self.company_fs = ProtectedFileSystem(
            self.company_volume, self.company_key,
            self._rng.fork(b"company-fs"))
        self.customer_volume = BlockStore("customer-volume")
        self.customer_key = self._rng.fork(b"customer-key").bytes(32)
        self.customer_fs = ProtectedFileSystem(
            self.customer_volume, self.customer_key,
            self._rng.fork(b"customer-fs"))
        self.images_processed = 0

    def install_model(self, name: str, weights: bytes) -> bytes:
        """The company ships an (encrypted) model; returns the FS tag."""
        self.company_fs.write(f"/models/{name}", weights)
        return self.company_fs.sync()

    def submit_image(self, image_id: str, pixels: bytes) -> bytes:
        """The customer uploads an (encrypted) input image."""
        self.customer_fs.write(f"/inbox/{image_id}", pixels)
        return self.customer_fs.sync()

    def inference_seconds(self) -> float:
        if self.mode is ExecutionMode.NATIVE:
            return calibration.ML_NATIVE_INFERENCE_SECONDS
        if self.mode is ExecutionMode.HARDWARE:
            return calibration.ML_PALAEMON_INFERENCE_SECONDS
        # EMU: shields without SGX costs — between the two.
        return calibration.ML_NATIVE_INFERENCE_SECONDS * 1.4

    def process_image(self, image_id: str, model: str,
                      ) -> Generator[Event, Any, str]:
        """Run inference on one image; returns the recognized text.

        The "model" is applied as a deterministic digest over weights and
        pixels — a stand-in with real data dependence: wrong weights or a
        tampered image change (or fail) the result.
        """
        pixels = self.customer_fs.read(f"/inbox/{image_id}")
        weights = self.company_fs.read(f"/models/{model}")
        yield self.workers.acquire()
        try:
            yield self.simulator.timeout(self.inference_seconds())
        finally:
            self.workers.release()
        text = "text:" + sha256(weights, pixels).hex()[:24]
        self.customer_fs.write(f"/outbox/{image_id}", text.encode())
        self.customer_fs.sync()
        self.images_processed += 1
        return text

    def fetch_result(self, image_id: str) -> bytes:
        return self.customer_fs.read(f"/outbox/{image_id}")

    def slowdown_vs_native(self) -> float:
        return (self.inference_seconds()
                / calibration.ML_NATIVE_INFERENCE_SECONDS)
