"""TLS handshake simulation with perfect forward secrecy shape.

The handshake model: the client and server exchange ephemeral contributions
(two network round trips), optionally verify the server's certificate
against a trusted root, and derive a fresh session key via HKDF over both
contributions. Session keys are never reused across connections, mirroring
the PFS-only cipher policy the paper's security analysis mandates (§V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro import calibration
from repro.crypto.certificates import Certificate
from repro.crypto.primitives import DeterministicRandom, hkdf
from repro.crypto.signatures import PublicKey
from repro.crypto.symmetric import SecretBox
from repro.errors import CertificateError
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.core import Event, Simulator
from repro.sim.network import Site, rtt_between


@dataclass
class TLSSession:
    """An established TLS session: shared key plus peer identity."""

    session_id: bytes
    client_box: SecretBox
    server_box: SecretBox
    server_certificate: Optional[Certificate]
    client_certificate: Optional[Certificate]
    established_at: float


def handshake_latency(client_site: Site, server_site: Site) -> float:
    """Closed-form handshake cost (used by latency-only models)."""
    rtt = rtt_between(client_site, server_site)
    return (calibration.TLS_HANDSHAKE_ROUND_TRIPS * rtt
            + calibration.TLS_HANDSHAKE_CRYPTO_SECONDS)


def perform_handshake(simulator: Simulator,
                      rng: DeterministicRandom,
                      client_site: Site,
                      server_site: Site,
                      server_certificate: Optional[Certificate] = None,
                      trusted_root: Optional[PublicKey] = None,
                      client_certificate: Optional[Certificate] = None,
                      telemetry: Optional[Telemetry] = None,
                      ) -> Generator[Event, Any, TLSSession]:
    """Establish a TLS session; a process returning :class:`TLSSession`.

    If ``trusted_root`` is given, the server certificate is verified against
    it *during* the handshake — this is how clients of a managed PALAEMON
    instance attest it via the PALAEMON CA (§III-B): a provider-run instance
    without a CA-signed certificate fails here, before any request is sent.

    ``telemetry`` (typically the serving instance's) counts and times the
    handshake; verification failures land in its error counter before the
    exception propagates.
    """
    telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
    with telemetry.span("tls.handshake", client_site=client_site.value,
                        server_site=server_site.value):
        started = simulator.now
        yield simulator.timeout(handshake_latency(client_site, server_site))
        try:
            if trusted_root is not None:
                if server_certificate is None:
                    raise CertificateError("server presented no certificate")
                server_certificate.verify(now=simulator.now,
                                          trusted_root=trusted_root)
        except CertificateError:
            telemetry.inc("palaemon_tls_handshakes_total", result="failed")
            raise
        telemetry.inc("palaemon_tls_handshakes_total", result="established")
        telemetry.observe("palaemon_tls_handshake_seconds",
                          simulator.now - started)
    client_random = rng.bytes(32)
    server_random = rng.bytes(32)
    master = hkdf(client_random + server_random, b"tls-master-secret")
    session_id = rng.bytes(16)
    # Directional keys, like real TLS key blocks.
    client_key = hkdf(master, b"client-write")
    server_key = hkdf(master, b"server-write")
    return TLSSession(
        session_id=session_id,
        client_box=SecretBox(client_key, rng.fork(b"client" + session_id)),
        server_box=SecretBox(server_key, rng.fork(b"server" + session_id)),
        server_certificate=server_certificate,
        client_certificate=client_certificate,
        established_at=simulator.now,
    )
