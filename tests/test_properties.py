"""Property-based and stateful tests on core invariants.

- YAML-subset round trip: ``loads(dumps(x)) == x`` for generated documents.
- Shielded file system vs a plain dict model under random operation
  sequences (hypothesis stateful testing), including random sync points.
- The rollback protocol as a state machine: no interleaving of
  start/stop/crash/snapshot/restore operations ever lets a rolled-back
  database serve.
"""

import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core import yamlish
from repro.core.rollback import RollbackGuard
from repro.core.store import PolicyStore
from repro.crypto.primitives import DeterministicRandom
from repro.errors import RollbackDetectedError
from repro.fs.blockstore import BlockStore
from repro.fs.shield import ProtectedFileSystem
from repro.sim.core import Simulator
from repro.tee.counters import PlatformCounterService

# --- yamlish round trip -------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-10**6, 10**6),
    st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                                   whitelist_characters=" _-./"),
            max_size=20),
)

_keys = st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1,
                max_size=12)


def _documents(depth=3):
    if depth == 0:
        return _scalars
    return st.one_of(
        _scalars,
        st.lists(st.one_of(_scalars,
                           st.dictionaries(_keys, _documents(depth - 1),
                                           min_size=1, max_size=3)),
                 max_size=4),
        st.dictionaries(_keys, _documents(depth - 1), min_size=1,
                        max_size=4),
    )


class TestYamlishRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(st.dictionaries(_keys, _documents(), min_size=1, max_size=5))
    def test_loads_dumps_round_trip(self, document):
        # Top-level documents are mappings, as every PALAEMON policy is.
        try:
            text = yamlish.dumps(document)
        except yamlish.YamlishError:
            return  # documents outside the dumpable subset are fine to skip
        assert yamlish.loads(text) == document

    def test_known_document(self):
        document = {"name": "p", "services": [{"name": "app", "count": 3}],
                    "flag": True, "note": None}
        assert yamlish.loads(yamlish.dumps(document)) == document


# --- shielded FS vs dict model -------------------------------------------


class ShieldedFsMachine(RuleBasedStateMachine):
    """The shield must behave exactly like a dict, plus survive remounts."""

    def __init__(self):
        super().__init__()
        self.store = BlockStore()
        self.rng = DeterministicRandom(b"stateful-fs")
        self.key = self.rng.fork(b"key").bytes(32)
        self.fs = ProtectedFileSystem(self.store, self.key,
                                      self.rng.fork(b"fs"))
        self.model = {}
        self.mounts = 0

    paths = st.sampled_from(["/a", "/b", "/dir/c", "/dir/d", "/e"])

    @rule(path=paths, content=st.binary(max_size=128))
    def write(self, path, content):
        self.fs.write(path, content)
        self.model[path] = content

    @rule(path=paths)
    def read(self, path):
        if path in self.model:
            assert self.fs.read(path) == self.model[path]
        else:
            with pytest.raises(FileNotFoundError):
                self.fs.read(path)

    @rule(path=paths)
    def delete(self, path):
        if path in self.model:
            self.fs.delete(path)
            del self.model[path]
        else:
            with pytest.raises(FileNotFoundError):
                self.fs.delete(path)

    @rule()
    def sync(self):
        self.fs.sync()

    @rule()
    def remount(self):
        """Persist, drop the in-memory state, mount fresh."""
        self.fs.sync()
        self.fs = ProtectedFileSystem(
            self.store, self.key,
            self.rng.fork(b"remount%d" % self.mounts))
        self.mounts += 1

    @invariant()
    def listing_matches_model(self):
        assert self.fs.list() == sorted(self.model)

    @invariant()
    def no_plaintext_in_store(self):
        for path, content in self.model.items():
            if len(content) >= 8:  # short strings collide by chance
                assert self.store.scan_for(content) == []


TestShieldedFsStateful = ShieldedFsMachine.TestCase
TestShieldedFsStateful.settings = settings(max_examples=30,
                                           stateful_step_count=30,
                                           deadline=None)


# --- rollback protocol state machine ---------------------------------------


class RollbackProtocolMachine(RuleBasedStateMachine):
    """Model: whatever the attacker does with snapshots, a *stale* database
    never serves. The model tracks the data the current store should hold
    if it is fresh; a successful startup must always see fresh data."""

    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.counters = PlatformCounterService(self.sim)
        self.backing = BlockStore()
        self.rng_counter = 0
        self.guard = self._make_guard()
        self.running = False
        self.writes = 0
        self.committed_writes = 0
        self.snapshots = []  # (backing snapshot, committed_writes at capture)

    def _make_guard(self):
        self.rng_counter += 1
        rng = DeterministicRandom(b"rb%d" % self.rng_counter)
        store = PolicyStore(self.sim, self.backing,
                            DeterministicRandom(b"db-key").bytes(32), rng)
        guard = RollbackGuard(store, self.counters, "c")
        guard.ensure_counter()
        return guard

    @precondition(lambda self: not self.running)
    @rule()
    def start(self):
        try:
            self.sim.run_process(self.guard.startup())
        except RollbackDetectedError:
            # Startup refused: the store must indeed be stale or crashed.
            assert (self.committed_writes != self.writes
                    or self.guard.store.version != self.counters.read("c"))
            return
        # Startup succeeded: the database must be fresh.
        assert self.guard.store.get("log", "count", 0) == self.committed_writes
        self.running = True

    @precondition(lambda self: self.running)
    @rule()
    def write(self):
        self.writes += 1
        self.guard.store.put("log", "count", self.writes)
        self.guard.store.commit_instant()
        self.committed_writes = self.writes

    @precondition(lambda self: self.running)
    @rule()
    def stop_cleanly(self):
        self.sim.run_process(self.guard.shutdown())
        self.running = False
        self.guard = self._make_guard()

    @precondition(lambda self: self.running)
    @rule()
    def crash(self):
        self.guard.crash()
        self.running = False
        self.guard = self._make_guard()

    @precondition(lambda self: not self.running)
    @rule()
    def attacker_snapshot(self):
        self.snapshots.append((self.backing.snapshot(),
                               self.committed_writes))

    @precondition(lambda self: bool(self.snapshots) and not self.running)
    @rule(index=st.integers(0, 4))
    def attacker_restore(self, index):
        snapshot, snapshot_writes = self.snapshots[index % len(self.snapshots)]
        self.backing.restore(snapshot)
        # The model: the store now holds the old state; if it is genuinely
        # stale (fewer writes than reality), startup must refuse — which
        # start() asserts via committed_writes.
        self.committed_writes = snapshot_writes
        # writes stays: it is the ground truth the attacker wants to hide.
        self.guard = self._make_guard()

    @invariant()
    def stale_never_serves(self):
        if self.running:
            assert self.guard.store.get("log", "count", 0) == self.writes


TestRollbackProtocolStateful = RollbackProtocolMachine.TestCase
TestRollbackProtocolStateful.settings = settings(max_examples=40,
                                                 stateful_step_count=25,
                                                 deadline=None)
