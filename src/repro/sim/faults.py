"""Deterministic fault injection: the chaos harness's ground truth.

The paper's stance is *crash-as-attack* (§IV-D): PALAEMON trades
availability for freshness and defers availability to fail-over and
federation. Exercising those recovery paths honestly requires injecting
partial failure — dropped and duplicated messages, endpoint blackouts,
disk-commit failures, counter-service outages — and observing *bounded*
recovery rather than a deadlocked simulation.

A :class:`FaultPlan` is a declarative, seed-driven schedule of faults:

- **link faults** — per-link message drop/duplication/extra delay,
  consulted by :meth:`repro.sim.network.Network.deliver`;
- **endpoint blackouts** — windows during which a named endpoint neither
  sends nor receives (a crashed or wedged front-end);
- **disk faults** — windows during which a named
  :class:`~repro.sim.resources.DiskModel` fails commits;
- **counter outages** — windows during which a named counter service
  raises :class:`~repro.errors.CounterUnavailableError`;
- **block-store faults** — windows during which a named
  :class:`~repro.fs.blockstore.BlockStore` fails reads or writes.

Determinism: all probabilistic decisions draw from one
:class:`~repro.crypto.primitives.DeterministicRandom` forked off the
plan's seed, and all windows are in virtual time, so the same seed and
the same event order produce the same faults — byte-identical recovery
summaries across runs (the chaos CLI's ``--check`` asserts exactly
this). Every injected fault is counted in :attr:`FaultPlan.injected`
and, when a telemetry domain is attached, in the
``palaemon_faults_injected_total`` metric by ``kind``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto.primitives import DeterministicRandom
from repro.errors import StorageFaultError
from repro.sim.core import Simulator


@dataclass(frozen=True)
class Window:
    """A half-open interval of virtual time [start, end)."""

    start: float = 0.0
    end: float = math.inf

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class LinkFault:
    """A fault on the (undirected) link between two endpoints."""

    a: str
    b: str
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    extra_delay: float = 0.0
    window: Window = Window()

    def matches(self, source: str, destination: str) -> bool:
        return {source, destination} == {self.a, self.b}


class FaultPlan:
    """A seeded, declarative schedule of faults for one simulation run."""

    def __init__(self, simulator: Simulator, seed: bytes = b"fault-plan",
                 telemetry=None) -> None:
        self.simulator = simulator
        self._rng = DeterministicRandom(b"fault-plan:" + seed)
        if telemetry is None:
            # Imported lazily: repro.obs imports repro.sim.metrics, so a
            # module-level import here would be circular.
            from repro.obs.telemetry import NULL_TELEMETRY
            telemetry = NULL_TELEMETRY
        self.telemetry = telemetry
        self._link_faults: List[LinkFault] = []
        self._blackouts: Dict[str, List[Window]] = {}
        self._disk_faults: Dict[str, List[Window]] = {}
        self._counter_outages: Dict[str, List[Window]] = {}
        self._store_faults: Dict[Tuple[str, str], List[Window]] = {}
        #: Injected fault counts by kind (drop/duplicate/delay/blackout/
        #: disk_fault/counter_outage/store_fault) — the chaos summary.
        self.injected: Dict[str, int] = {}

    # -- authoring ---------------------------------------------------------

    def add_link_fault(self, fault: LinkFault) -> "FaultPlan":
        self._link_faults.append(fault)
        return self

    def drop_link(self, a: str, b: str, start: float = 0.0,
                  end: float = math.inf,
                  probability: float = 1.0) -> "FaultPlan":
        """Drop traffic between ``a`` and ``b`` during the window."""
        return self.add_link_fault(LinkFault(
            a=a, b=b, drop_probability=probability,
            window=Window(start, end)))

    def duplicate_link(self, a: str, b: str, probability: float,
                       start: float = 0.0,
                       end: float = math.inf) -> "FaultPlan":
        """Deliver some messages twice (retransmission storms)."""
        return self.add_link_fault(LinkFault(
            a=a, b=b, duplicate_probability=probability,
            window=Window(start, end)))

    def delay_link(self, a: str, b: str, extra_delay: float,
                   start: float = 0.0,
                   end: float = math.inf) -> "FaultPlan":
        """Add fixed extra one-way delay on a link (congestion)."""
        return self.add_link_fault(LinkFault(
            a=a, b=b, extra_delay=extra_delay, window=Window(start, end)))

    def blackout_endpoint(self, name: str, start: float = 0.0,
                          end: float = math.inf) -> "FaultPlan":
        """The endpoint neither sends nor receives during the window."""
        self._blackouts.setdefault(name, []).append(Window(start, end))
        return self

    def fail_disk(self, disk_name: str, start: float = 0.0,
                  end: float = math.inf) -> "FaultPlan":
        """Commits on the named disk fail during the window."""
        self._disk_faults.setdefault(disk_name, []).append(Window(start, end))
        return self

    def counter_outage(self, service_name: str, start: float = 0.0,
                       end: float = math.inf) -> "FaultPlan":
        """The named counter service is unreachable during the window."""
        self._counter_outages.setdefault(service_name, []).append(
            Window(start, end))
        return self

    def fail_store(self, store_name: str, operation: str = "write",
                   start: float = 0.0, end: float = math.inf) -> "FaultPlan":
        """The named block store fails ``operation`` (read/write)."""
        if operation not in ("read", "write"):
            raise ValueError(f"unknown store operation {operation!r}")
        self._store_faults.setdefault((store_name, operation), []).append(
            Window(start, end))
        return self

    # -- attachment --------------------------------------------------------

    def attach_network(self, network) -> "FaultPlan":
        """Make :meth:`Network.deliver` consult this plan."""
        network.fault_plan = self
        return self

    def attach_disk(self, disk) -> "FaultPlan":
        """Make the :class:`DiskModel` consult this plan on commits."""
        disk.fault_plan = self
        return self

    def attach_counters(self, service, name: str) -> "FaultPlan":
        """Bind a counter service to this plan under ``name``."""
        service.fault_plan = self
        service.fault_name = name
        return self

    def attach_blockstore(self, store, name: Optional[str] = None,
                          ) -> "FaultPlan":
        """Install a fault hook on a :class:`BlockStore`."""
        label = name or store.name

        def hook(operation: str, path: str) -> None:
            if self.store_faulty(label, operation):
                raise StorageFaultError(
                    f"store {label!r}: injected {operation} failure "
                    f"on {path!r}")

        store.fault_hook = hook
        return self

    # -- queries (called by instrumented components) -----------------------

    def message_fate(self, source: str,
                     destination: str) -> Tuple[str, float]:
        """Decide what happens to one message: a (fate, extra_delay) pair.

        Fate is ``"deliver"``, ``"drop"``, or ``"duplicate"``; the extra
        delay applies to whatever is delivered. Blackouts are checked
        first: a blacked-out sender or receiver drops unconditionally.
        """
        now = self.simulator.now
        if (self.endpoint_blacked_out(source, now)
                or self.endpoint_blacked_out(destination, now)):
            self._record("blackout")
            return "drop", 0.0
        fate = "deliver"
        extra_delay = 0.0
        for fault in self._link_faults:
            if not fault.matches(source, destination):
                continue
            if not fault.window.active(now):
                continue
            if (fault.drop_probability > 0.0
                    and self._rng.random() < fault.drop_probability):
                self._record("drop")
                return "drop", 0.0
            if (fault.duplicate_probability > 0.0
                    and self._rng.random() < fault.duplicate_probability):
                self._record("duplicate")
                fate = "duplicate"
            if fault.extra_delay > 0.0:
                self._record("delay")
                extra_delay += fault.extra_delay
        return fate, extra_delay

    def endpoint_blacked_out(self, name: str,
                             now: Optional[float] = None) -> bool:
        windows = self._blackouts.get(name)
        if not windows:
            return False
        at = self.simulator.now if now is None else now
        return any(window.active(at) for window in windows)

    def disk_faulty(self, disk_name: str) -> bool:
        windows = self._disk_faults.get(disk_name)
        if not windows:
            return False
        if any(window.active(self.simulator.now) for window in windows):
            self._record("disk_fault")
            return True
        return False

    def counter_unavailable(self, service_name: str) -> bool:
        windows = self._counter_outages.get(service_name)
        if not windows:
            return False
        if any(window.active(self.simulator.now) for window in windows):
            self._record("counter_outage")
            return True
        return False

    def store_faulty(self, store_name: str, operation: str) -> bool:
        windows = self._store_faults.get((store_name, operation))
        if not windows:
            return False
        if any(window.active(self.simulator.now) for window in windows):
            self._record("store_fault")
            return True
        return False

    # -- accounting --------------------------------------------------------

    def _record(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        self.telemetry.inc("palaemon_faults_injected_total", kind=kind)

    def total_injected(self) -> int:
        return sum(self.injected.values())

    def summary(self) -> Dict[str, int]:
        """Injected fault counts by kind, sorted for stable rendering."""
        return dict(sorted(self.injected.items()))
