"""Fig 11 — tag read/update latency (left) and secret-injection overhead
(right).

Left: updating the most recent tag commits PALAEMON's database to disk, so
updates cost ~6x reads. Right: reading a 4 kB config file with injected
secrets is *faster* than reading a plain file (0.36x), because injected
files live in enclave memory; transparent decryption of a regular encrypted
file costs ~2x the plain baseline; the number of injected secrets (1 vs 10)
does not matter.
"""

from repro import calibration
from repro.benchlib.tables import PaperComparison, format_table, paper_vs_measured
from repro.crypto.primitives import DeterministicRandom
from repro.fs.injection import InjectedFileView
from repro.sim.core import Simulator

from tests.core.conftest import Deployment

from benchmarks.conftest import run_once


def _measure_tag_latencies():
    deployment = Deployment(seed=b"fig11")
    deployment.client.create_policy(deployment.palaemon,
                                    deployment.make_policy())
    sim = deployment.simulator

    def timed(process_factory, repetitions=20):
        def main():
            start = sim.now
            for _ in range(repetitions):
                yield sim.process(process_factory())
            return (sim.now - start) / repetitions

        return sim.run_process(main())

    read_latency = timed(lambda: deployment.palaemon.get_tag(
        "ml_policy", "ml_app"))
    update_latency = timed(lambda: deployment.palaemon.update_tag(
        "ml_policy", "ml_app", b"\x05" * 32))
    return read_latency, update_latency


def _measure_injection_overheads():
    """Per-read latencies for the four Fig 11 (right) bars."""
    plain = calibration.PLAIN_FILE_READ_4K_SECONDS
    encrypted = plain * calibration.ENCRYPTED_FILE_READ_FACTOR
    # Injected files: served from enclave memory, so the read cost is the
    # in-memory copy — independent of how many secrets were injected.
    template_1 = (b"secret_0 = $$PALAEMON$S0$$\n" + b"x" * 4000)[:4096]
    template_10 = (b"".join(b"secret_%d = $$PALAEMON$S%d$$\n" % (i, i)
                            for i in range(10)) + b"x" * 4096)[:4096]
    secrets = {f"S{i}": b"v" * 16 for i in range(10)}
    view_1 = InjectedFileView("/cfg1", template_1, secrets)
    view_10 = InjectedFileView("/cfg10", template_10, secrets)
    for view in (view_1, view_10):
        assert b"$$PALAEMON$" not in view.read()
    in_memory = plain * calibration.INJECTED_FILE_READ_FACTOR
    return {
        "Plain file": plain,
        "Encrypted file": encrypted,
        "Palaemon 1 secret": in_memory,
        "Palaemon 10 secrets": in_memory,
    }


def test_fig11_tag_latency(benchmark):
    read_latency, update_latency = run_once(benchmark, _measure_tag_latencies)

    print()
    print(format_table(
        ["operation", "latency (ms)"],
        [["tag read", read_latency * 1e3],
         ["tag update", update_latency * 1e3]],
        title="Fig 11 (left): tag read/update latency"))

    comparisons = [
        PaperComparison("tag read", calibration.TAG_READ_LATENCY_SECONDS,
                        read_latency, unit="s"),
        PaperComparison("tag update", calibration.TAG_UPDATE_LATENCY_SECONDS,
                        update_latency, unit="s"),
    ]
    print(paper_vs_measured(comparisons, title="paper vs measured"))
    for comparison in comparisons:
        assert comparison.within_tolerance, comparison.metric

    # The paper's stated relation: update ~6x read (disk commit).
    ratio = update_latency / read_latency
    assert 4.5 <= ratio <= 7.5


def test_fig11_secret_injection(benchmark):
    latencies = run_once(benchmark, _measure_injection_overheads)
    baseline = latencies["Plain file"]

    rows = [[name, latency * 1e3, latency / baseline]
            for name, latency in latencies.items()]
    print()
    print(format_table(["variant", "latency (ms)", "vs plain"],
                       rows,
                       title="Fig 11 (right): 4 kB read with secrets"))

    assert latencies["Encrypted file"] / baseline == \
        _approx(calibration.ENCRYPTED_FILE_READ_FACTOR)
    assert latencies["Palaemon 1 secret"] / baseline == \
        _approx(calibration.INJECTED_FILE_READ_FACTOR)
    # Injected reads beat even the plain baseline, and secret count is free.
    assert latencies["Palaemon 1 secret"] < baseline
    assert latencies["Palaemon 1 secret"] == latencies["Palaemon 10 secrets"]
    assert latencies["Encrypted file"] > baseline


def _approx(value, rel=0.05):
    import pytest

    return pytest.approx(value, rel=rel)
