"""Tests for the encrypted policy store and the Fig 6 rollback protocol."""

import pytest

from repro.core.rollback import RollbackGuard
from repro.core.store import PolicyStore
from repro.crypto.primitives import DeterministicRandom
from repro.errors import (
    ConcurrentInstanceError,
    IntegrityError,
    PolicyValidationError,
    StaleDatabaseError,
)
from repro.fs.blockstore import BlockStore
from repro.sim.core import Simulator
from repro.tee.counters import PlatformCounterService


def make_store(store=None, seed=b"store-tests", sim=None):
    sim = sim or Simulator()
    store = store if store is not None else BlockStore()
    rng = DeterministicRandom(seed)
    return PolicyStore(sim, store, rng.fork(b"db-key").bytes(32),
                       rng.fork(b"store")), store, sim


class TestPolicyStore:
    def test_put_get_delete(self):
        db, _, _ = make_store()
        db.put("policies", "p1", {"name": "p1"})
        assert db.get("policies", "p1") == {"name": "p1"}
        assert ("policies", "p1") in db
        db.delete("policies", "p1")
        assert db.get("policies", "p1") is None

    def test_get_default(self):
        db, _, _ = make_store()
        assert db.get("t", "missing", default=42) == 42

    def test_keys_sorted(self):
        db, _, _ = make_store()
        db.put("t", "b", 1)
        db.put("t", "a", 2)
        assert db.keys("t") == ["a", "b"]

    def test_persistence_across_instances(self):
        db, backing, _ = make_store()
        db.put("policies", "p1", "data")
        db.set_version(1)
        db.commit_instant()
        reopened, _, _ = make_store(store=backing)
        assert reopened.get("policies", "p1") == "data"
        assert reopened.version == 1

    def test_encrypted_at_rest(self):
        db, backing, _ = make_store()
        db.put("secrets", "k", b"plaintext-secret-value")
        db.commit_instant()
        assert backing.scan_for(b"plaintext-secret-value") == []

    def test_segment_tampering_detected(self):
        db, backing, _ = make_store()
        db.put("t", "k", "v")
        db.commit_instant()
        raw = backing.read("/palaemon.db.seg/t")
        backing.tamper("/palaemon.db.seg/t",
                       raw[:-1] + bytes([raw[-1] ^ 1]))
        with pytest.raises(IntegrityError):
            make_store(store=backing)

    def test_manifest_tampering_detected(self):
        db, backing, _ = make_store()
        db.put("t", "k", "v")
        db.commit_instant()
        raw = backing.read("/palaemon.db.manifest")
        backing.tamper("/palaemon.db.manifest",
                       raw[:-1] + bytes([raw[-1] ^ 1]))
        with pytest.raises(IntegrityError):
            make_store(store=backing)

    def test_segment_swap_detected(self):
        """A segment replayed from an older commit fails the manifest."""
        db, backing, _ = make_store()
        db.put("t", "k", "old")
        db.commit_instant()
        stale = backing.read("/palaemon.db.seg/t")
        db.put("t", "k", "new")
        db.commit_instant()
        backing.tamper("/palaemon.db.seg/t", stale)
        with pytest.raises(IntegrityError):
            make_store(store=backing)

    def test_legacy_monolithic_tampering_detected(self):
        db, backing, _ = make_store()
        db.use_legacy_monolithic_format()
        db.put("t", "k", "v")
        db.commit_instant()
        raw = backing.read("/palaemon.db")
        backing.tamper("/palaemon.db", raw[:-1] + bytes([raw[-1] ^ 1]))
        with pytest.raises(IntegrityError):
            make_store(store=backing)

    def test_version_cannot_decrease(self):
        db, _, _ = make_store()
        db.set_version(5)
        with pytest.raises(PolicyValidationError):
            db.set_version(4)

    def test_commit_pays_disk_latency(self):
        db, _, sim = make_store()

        def main():
            yield sim.process(db.commit())
            return sim.now

        elapsed = sim.run_process(main())
        assert elapsed == pytest.approx(db.disk.commit_latency)


def make_guard(backing=None, sim=None, counters=None, counter_id="c"):
    sim = sim or Simulator()
    counters = counters or PlatformCounterService(sim)
    db, backing, _ = make_store(store=backing, sim=sim)
    guard = RollbackGuard(db, counters, counter_id)
    guard.ensure_counter()
    return guard, db, backing, sim, counters


class TestRollbackProtocol:
    def test_clean_lifecycle(self):
        """startup -> serve -> shutdown -> restart works."""
        guard, db, backing, sim, counters = make_guard()

        def lifecycle():
            yield sim.process(guard.startup())
            assert counters.read("c") == 1
            assert db.version == 0  # database trails the counter
            yield sim.process(guard.shutdown())
            assert db.version == 1  # reconciled
            yield sim.process(guard.startup())
            yield sim.process(guard.shutdown())

        sim.run_process(lifecycle())
        assert db.version == 2

    def test_crash_blocks_restart(self):
        """Crash-as-attack: after a crash, v < c and startup refuses."""
        guard, db, backing, sim, counters = make_guard()

        def run():
            yield sim.process(guard.startup())
            guard.crash()
            yield sim.process(guard.startup())

        with pytest.raises(StaleDatabaseError):
            sim.run_process(run())

    def test_database_rollback_detected(self):
        """Restoring an old DB snapshot is caught at startup (v != c)."""
        guard, db, backing, sim, counters = make_guard()
        old_snapshot = backing.snapshot()

        def run():
            yield sim.process(guard.startup())
            db.put("tags", "app", b"new-tag")
            yield sim.process(guard.shutdown())

        sim.run_process(run())
        backing.restore(old_snapshot)  # attacker rolls the DB back

        guard2, db2, _, sim2, _ = make_guard(backing=backing,
                                             counters=counters, sim=sim)

        def restart():
            yield sim2.process(guard2.startup())

        with pytest.raises(StaleDatabaseError):
            sim2.run_process(restart())

    def test_second_instance_detected(self):
        """Cloning: two instances from the same sealed state cannot both run."""
        sim = Simulator()
        counters = PlatformCounterService(sim)
        backing = BlockStore()
        guard1, db1, _, _, _ = make_guard(backing=backing, sim=sim,
                                          counters=counters)
        # The attacker starts a second instance from a copy of the volume.
        clone_volume = BlockStore()
        clone_volume.restore(backing.snapshot())
        guard2, db2, _, _, _ = make_guard(backing=clone_volume, sim=sim,
                                          counters=counters)

        def run():
            yield sim.process(guard1.startup())   # c: 0 -> 1, ok
            yield sim.process(guard2.startup())   # v=0 but c=1 already

        with pytest.raises(StaleDatabaseError):
            sim.run_process(run())

    def test_concurrent_increment_detected(self):
        """If another instance increments between check and increment, the
        c == v+1 check fires."""
        sim = Simulator()
        counters = PlatformCounterService(sim)
        guard, db, backing, _, _ = make_guard(sim=sim, counters=counters)

        def interloper():
            # Another process increments the counter just after guard reads.
            yield sim.process(counters.increment("c"))

        def run():
            sim.process(interloper())
            yield sim.process(guard.startup())

        with pytest.raises(ConcurrentInstanceError):
            sim.run_process(run())

    def test_counter_rollback_capable_attacker_wins(self):
        """Documented limit: protection is only as strong as the counter.

        An attacker who can roll back the platform's monotonic counter (out
        of scope in the paper's threat model) defeats the protocol — this
        test pins down the boundary.
        """
        guard, db, backing, sim, counters = make_guard()
        old_snapshot = backing.snapshot()

        def run():
            yield sim.process(guard.startup())
            db.put("tags", "app", b"progress")
            yield sim.process(guard.shutdown())

        sim.run_process(run())
        backing.restore(old_snapshot)
        counters.rollback_for_test("c", 0)  # the out-of-scope capability

        guard2, db2, _, sim2, _ = make_guard(backing=backing,
                                             counters=counters, sim=sim)

        def restart():
            yield sim2.process(guard2.startup())

        sim2.run_process(restart())  # no error: the rollback went undetected
        assert db2.get("tags", "app") is None  # stale state served

    def test_shutdown_without_startup_is_noop(self):
        guard, db, backing, sim, _ = make_guard()

        def run():
            yield sim.process(guard.shutdown())

        sim.run_process(run())
        assert db.version == 0

    def test_counter_touched_twice_per_lifecycle(self):
        """The design point: counter wear is per-lifecycle, not per-update."""
        guard, db, backing, sim, counters = make_guard()

        def run():
            yield sim.process(guard.startup())
            for i in range(1000):  # a thousand tag updates...
                db.put("tags", f"app-{i}", b"tag")
            yield sim.process(guard.shutdown())

        sim.run_process(run())
        assert counters.writes("c") == 1  # ...one hardware increment
