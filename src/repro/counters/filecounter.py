"""File-based monotonic counters (Fig 10 variants b-e).

A counter stored in an ordinary file: open, read the integer, increment,
write back, close. Four modes match the figure:

- ``NATIVE``    — plain process, real file syscalls each increment.
- ``SGX``       — inside an enclave; the SCONE runtime memory-maps the file,
  so the per-increment syscall cost disappears (faster than native!).
- ``ENCRYPTED`` — the file lives in a shielded file system; the shield's
  write-back cache makes increments pure in-enclave memory operations.
- ``STRICT``    — like ENCRYPTED, plus the tag is pushed to PALAEMON on
  close, making the counter rollback-protected end to end.

The security of the file-based approach rests on the shield's tag +
PALAEMON's expected-tag store; the throughput rests on the fact that tags
are pushed on *close/sync/exit*, not on every increment.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, Optional

from repro import calibration
from repro.counters.base import MonotonicCounter
from repro.crypto.primitives import DeterministicRandom
from repro.fs.blockstore import BlockStore
from repro.fs.shield import ProtectedFileSystem
from repro.sim.core import Event, Simulator

#: Cost of one native open/read/write/close increment cycle, from the
#: measured 682,721 increments/s (Fig 10 variant b).
_NATIVE_INCREMENT_SECONDS = 1.0 / calibration.FILE_COUNTER_NATIVE_RATE

#: Memory-mapped increment inside SGX: 1,380,381/s (variant c).
_SGX_INCREMENT_SECONDS = 1.0 / calibration.FILE_COUNTER_SGX_RATE

#: Shielded + cached increment: 1,473,748/s (variant d).
_ENCRYPTED_INCREMENT_SECONDS = 1.0 / calibration.FILE_COUNTER_ENCRYPTED_RATE

#: Strict mode amortizes the tag push across increments: 1,463,140/s (e).
_STRICT_INCREMENT_SECONDS = 1.0 / calibration.FILE_COUNTER_PALAEMON_RATE


class FileCounterMode(enum.Enum):
    """Execution variants of the file-based counter."""

    NATIVE = "native"
    SGX = "sgx"
    ENCRYPTED = "sgx+encrypted-fs"
    STRICT = "sgx+encrypted-fs+palaemon"

    @property
    def increment_seconds(self) -> float:
        return {
            FileCounterMode.NATIVE: _NATIVE_INCREMENT_SECONDS,
            FileCounterMode.SGX: _SGX_INCREMENT_SECONDS,
            FileCounterMode.ENCRYPTED: _ENCRYPTED_INCREMENT_SECONDS,
            FileCounterMode.STRICT: _STRICT_INCREMENT_SECONDS,
        }[self]


class FileCounter(MonotonicCounter):
    """A counter persisted in a file, really backed by a (shielded) store."""

    COUNTER_PATH = "/counter"

    def __init__(self, simulator: Simulator, mode: FileCounterMode,
                 store: Optional[BlockStore] = None,
                 rng: Optional[DeterministicRandom] = None,
                 tag_listener: Optional[Callable[[bytes], None]] = None,
                 ) -> None:
        self.simulator = simulator
        self.mode = mode
        self.store = store if store is not None else BlockStore("counter-vol")
        rng = rng or DeterministicRandom(b"file-counter")
        if mode in (FileCounterMode.ENCRYPTED, FileCounterMode.STRICT):
            listener = tag_listener if mode is FileCounterMode.STRICT else None
            self.fs: Optional[ProtectedFileSystem] = ProtectedFileSystem(
                self.store, rng.fork(b"fs-key").bytes(32), rng.fork(b"fs"),
                tag_listener=listener)
            if not self.fs.exists(self.COUNTER_PATH):
                self.fs.write(self.COUNTER_PATH, b"0")
        else:
            self.fs = None
            if not self.store.exists(self.COUNTER_PATH):
                self.store.write(self.COUNTER_PATH, b"0")

    @property
    def name(self) -> str:
        return f"file counter ({self.mode.value})"

    def increment(self) -> Generator[Event, Any, int]:
        yield self.simulator.timeout(self.mode.increment_seconds)
        value = self.read() + 1
        encoded = str(value).encode()
        if self.fs is not None:
            self.fs.write(self.COUNTER_PATH, encoded)
        else:
            self.store.write(self.COUNTER_PATH, encoded)
        return value

    def read(self) -> int:
        if self.fs is not None:
            return int(self.fs.read(self.COUNTER_PATH))
        return int(self.store.read(self.COUNTER_PATH))

    def close(self) -> Optional[bytes]:
        """Close the counter file; STRICT mode pushes the tag to PALAEMON."""
        if self.fs is not None:
            return self.fs.close_file(self.COUNTER_PATH)
        return None
