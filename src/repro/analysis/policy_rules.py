"""Policy-analysis rules (``PAL0xx``): trust misconfiguration, pre-runtime.

Per-policy rules check boards, secret flow, and environments; set-scoped
rules check the cross-policy import graph and allow-list drift.  Every
rule yields :class:`Finding` objects with the policy name as subject.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.analysis.context import PolicySetContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule
from repro.core.policy import SecurityPolicy

#: Environment variables that put the enclave into a debuggable or
#: simulated mode, defeating attestation guarantees (§II-A: debug
#: enclaves allow memory inspection by the operator).
_DEBUG_ENVIRONMENT = {
    "SCONE_MODE": ("sim", "debug"),
    "SGX_DEBUG": ("1", "true", "yes", "on"),
    "SCONE_ALLOW_DEBUG": ("1", "true", "yes", "on"),
}


def required_threshold(member_count: int) -> Tuple[int, int]:
    """``(f, f+1)`` for a board of ``member_count`` members.

    With ``n`` stakeholders of which at most ``f`` are Byzantine, the
    paper's quorum rule needs ``n >= 2f+1`` and a threshold of ``f+1``
    (§III-C); the largest tolerable fault budget is ``f = (n-1)//2``.
    """
    fault_budget = (member_count - 1) // 2
    return fault_budget, fault_budget + 1


@rule("PAL001", "weak board quorum", scope="policy",
      severity=Severity.ERROR,
      hint="raise the threshold to f+1 for the tolerated fault budget")
def check_weak_quorum(policy: SecurityPolicy,
                      ctx: PolicySetContext) -> Iterator[Finding]:
    board = policy.board
    if board is None:
        return
    members = len(board.members)
    fault_budget, needed = required_threshold(members)
    if board.threshold >= needed:
        return
    severity = (Severity.CRITICAL
                if board.threshold <= 1 and members > 1
                else Severity.ERROR)
    yield Finding(
        code="PAL001", severity=severity, subject=policy.name,
        message=(f"board threshold {board.threshold} is below f+1={needed} "
                 f"for {members} members (tolerates f={fault_budget} "
                 f"Byzantine stakeholders)"),
        hint=f"set board.threshold to at least {needed}")


@rule("PAL002", "veto-less board", scope="policy",
      severity=Severity.WARNING,
      hint="grant at least one member veto power (any veto rejects)")
def check_vetoless_board(policy: SecurityPolicy,
                         ctx: PolicySetContext) -> Iterator[Finding]:
    board = policy.board
    if board is None or len(board.members) < 2:
        return
    if any(member.veto for member in board.members):
        return
    yield Finding(
        code="PAL002", severity=Severity.WARNING, subject=policy.name,
        message=(f"none of the {len(board.members)} board members holds "
                 f"veto power; a colluding quorum cannot be blocked by an "
                 f"honest minority"),
        hint="mark the most security-sensitive stakeholder veto: true")


@rule("PAL014", "unused secret", scope="policy",
      severity=Severity.WARNING,
      hint="remove the secret or reference/export it")
def check_unused_secrets(policy: SecurityPolicy,
                         ctx: PolicySetContext) -> Iterator[Finding]:
    referenced = set(ctx.referenced_secret_names(policy))
    for secret in policy.secrets:
        if secret.name in referenced or secret.export_to:
            continue
        yield Finding(
            code="PAL014", severity=Severity.WARNING, subject=policy.name,
            message=(f"secret {secret.name!r} is neither referenced by any "
                     f"service (injection file, environment, argv) nor "
                     f"exported to another policy"),
            hint="dead secrets widen the audit surface; drop or use it")


@rule("PAL015", "undefined secret reference", scope="policy",
      severity=Severity.ERROR,
      hint="declare the secret or import it under the referenced name")
def check_undefined_references(policy: SecurityPolicy,
                               ctx: PolicySetContext) -> Iterator[Finding]:
    defined = {secret.name for secret in policy.secrets}
    defined.update(spec.bound_name for spec in policy.imports)
    for name in ctx.referenced_secret_names(policy):
        if name in defined:
            continue
        yield Finding(
            code="PAL015", severity=Severity.ERROR, subject=policy.name,
            message=(f"services reference $$PALAEMON${name}$$ but the "
                     f"policy neither declares nor imports a secret "
                     f"named {name!r}"),
            hint="attestation would fail at injection time")


@rule("PAL020", "secret injected via argv", scope="policy",
      severity=Severity.CRITICAL,
      hint="move the secret into an injected file or the environment")
def check_argv_secret(policy: SecurityPolicy,
                      ctx: PolicySetContext) -> Iterator[Finding]:
    from repro.fs.injection import find_variables

    for service in policy.services:
        for index, part in enumerate(service.command):
            names = find_variables(part.encode())
            if not names:
                continue
            listed = ", ".join(sorted(set(names)))
            yield Finding(
                code="PAL020", severity=Severity.CRITICAL,
                subject=policy.name,
                message=(f"service {service.name!r} injects secret(s) "
                         f"{listed} into argv[{index}]; command lines are "
                         f"world-readable through /proc/<pid>/cmdline "
                         f"outside the TEE (docs/THREAT_MODEL.md)"),
                hint="use inject_files or environment instead of argv")


@rule("PAL021", "debug attestation acceptance", scope="policy",
      severity=Severity.CRITICAL,
      hint="remove debug/simulation mode variables from the environment")
def check_debug_environment(policy: SecurityPolicy,
                            ctx: PolicySetContext) -> Iterator[Finding]:
    for service in policy.services:
        for key in sorted(service.environment):
            accepted = _DEBUG_ENVIRONMENT.get(key.upper())
            if accepted is None:
                continue
            value = service.environment[key]
            if value.strip().lower() not in accepted:
                continue
            yield Finding(
                code="PAL021", severity=Severity.CRITICAL,
                subject=policy.name,
                message=(f"service {service.name!r} sets {key}={value}: a "
                         f"debug/simulated enclave lets the operator read "
                         f"enclave memory, so any attestation it passes is "
                         f"worthless"),
                hint="production policies must pin hardware mode")


@rule("PAL031", "stale permitted combination", scope="policy",
      severity=Severity.WARNING,
      hint="prune combinations whose MRE no service lists")
def check_stale_combinations(policy: SecurityPolicy,
                             ctx: PolicySetContext) -> Iterator[Finding]:
    if not policy.permitted_combinations:
        return
    service_mres = {mre for service in policy.services
                    for mre in service.mrenclaves}
    for mre, _tag in sorted(policy.permitted_combinations):
        if mre in service_mres:
            continue
        yield Finding(
            code="PAL031", severity=Severity.WARNING, subject=policy.name,
            message=(f"permitted combination pins MRENCLAVE "
                     f"{mre.hex()[:16]}... that no service of the policy "
                     f"lists; it can never attest and hides drift from the "
                     f"image policy"),
            hint="re-run apply_image_export after service updates")


# -- set-scoped rules -------------------------------------------------------


@rule("PAL010", "dangling secret import", scope="policyset",
      severity=Severity.ERROR,
      hint="create the exporting policy or fix its export list")
def check_dangling_imports(ctx: PolicySetContext) -> Iterator[Finding]:
    for name in ctx.names():
        policy = ctx.policies[name]
        for spec in policy.imports:
            source = ctx.policies.get(spec.from_policy)
            if source is None:
                yield Finding(
                    code="PAL010", severity=Severity.ERROR, subject=name,
                    message=(f"imports {spec.secret_name!r} from unknown "
                             f"policy {spec.from_policy!r}"),
                    hint="the import would fail at attestation time")
                continue
            if not source.exports_secret_to(spec.secret_name, name):
                yield Finding(
                    code="PAL010", severity=Severity.ERROR, subject=name,
                    message=(f"imports {spec.secret_name!r} from "
                             f"{spec.from_policy!r}, which does not export "
                             f"it to {name!r}"),
                    hint=(f"add {name!r} to the secret's export list in "
                          f"{spec.from_policy!r}"))


@rule("PAL011", "import cycle", scope="policyset",
      severity=Severity.ERROR,
      hint="break the cycle; secret flow must be a DAG")
def check_import_cycles(ctx: PolicySetContext) -> Iterator[Finding]:
    edges = {name: sorted(
        {spec.from_policy for spec in ctx.policies[name].imports
         if spec.from_policy in ctx.policies}
        | {spec.from_policy for spec in ctx.policies[name].volume_imports
           if spec.from_policy in ctx.policies})
        for name in ctx.names()}
    seen_cycles = set()
    for start in ctx.names():
        stack: List[str] = []
        on_stack = set()

        def visit(node: str) -> Iterator[Tuple[str, ...]]:
            stack.append(node)
            on_stack.add(node)
            for successor in edges.get(node, ()):
                if successor in on_stack:
                    cycle = tuple(stack[stack.index(successor):])
                    yield cycle
                else:
                    yield from visit(successor)
            stack.pop()
            on_stack.discard(node)

        for cycle in visit(start):
            canonical = min(
                tuple(cycle[i:] + cycle[:i]) for i in range(len(cycle)))
            if canonical in seen_cycles:
                continue
            seen_cycles.add(canonical)
            rendered = " -> ".join(canonical + (canonical[0],))
            yield Finding(
                code="PAL011", severity=Severity.ERROR,
                subject=canonical[0],
                message=(f"policy import cycle: {rendered}; no creation "
                         f"order can satisfy it and a Byzantine stakeholder "
                         f"inside the cycle can wedge every participant"),
                hint="split the shared secret into its own leaf policy")


@rule("PAL012", "dangling volume import", scope="policyset",
      severity=Severity.ERROR,
      hint="create the exporting policy or fix its volume export")
def check_dangling_volume_imports(ctx: PolicySetContext) -> Iterator[Finding]:
    for name in ctx.names():
        policy = ctx.policies[name]
        for spec in policy.volume_imports:
            source = ctx.policies.get(spec.from_policy)
            if source is None:
                yield Finding(
                    code="PAL012", severity=Severity.ERROR, subject=name,
                    message=(f"imports volume {spec.volume_name!r} from "
                             f"unknown policy {spec.from_policy!r}"),
                    hint="the volume grant would fail at attestation time")
                continue
            if not source.exports_volume_to(spec.volume_name, name):
                yield Finding(
                    code="PAL012", severity=Severity.ERROR, subject=name,
                    message=(f"imports volume {spec.volume_name!r} from "
                             f"{spec.from_policy!r}, which does not export "
                             f"it to {name!r}"),
                    hint=(f"set 'export: {name}' on the volume in "
                          f"{spec.from_policy!r}"))


@rule("PAL013", "unused export", scope="policyset",
      severity=Severity.WARNING,
      hint="trim export lists to the policies that import")
def check_unused_exports(ctx: PolicySetContext) -> Iterator[Finding]:
    for name in ctx.names():
        policy = ctx.policies[name]
        for secret in policy.secrets:
            for target in sorted(secret.export_to):
                importer = ctx.policies.get(target)
                if importer is None:
                    yield Finding(
                        code="PAL013", severity=Severity.WARNING,
                        subject=name,
                        message=(f"secret {secret.name!r} is exported to "
                                 f"unknown policy {target!r}"),
                        hint="a later policy with that name gains access "
                             "silently; export to existing policies only")
                elif not ctx.imports_of(importer, name, secret.name):
                    yield Finding(
                        code="PAL013", severity=Severity.WARNING,
                        subject=name,
                        message=(f"secret {secret.name!r} is exported to "
                                 f"{target!r}, which never imports it"),
                        hint="remove the stale entry from the export list")


@rule("PAL030", "MRE allow-list drift", scope="policyset",
      severity=Severity.ERROR,
      hint="board-approve a policy update or refresh the allow-list")
def check_allowlist_drift(ctx: PolicySetContext) -> Iterator[Finding]:
    if ctx.mre_allowlist is None:
        return
    for name in ctx.names():
        policy = ctx.policies[name]
        for service in policy.services:
            for mre in service.mrenclaves:
                if mre in ctx.mre_allowlist:
                    continue
                yield Finding(
                    code="PAL030", severity=Severity.ERROR, subject=name,
                    message=(f"service {service.name!r} permits MRENCLAVE "
                             f"{mre.hex()[:16]}... which the current "
                             f"CA/image allow-list no longer vouches for "
                             f"(§III-E: revocations must propagate)"),
                    hint="drop the retired MRE from the service")
