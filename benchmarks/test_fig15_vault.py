"""Fig 15 — Vault throughput/latency: native w/ TLS, PALAEMON EMU, PALAEMON HW.

Vault needs a 1.9 GB heap — far beyond the EPC — so hardware mode pays EPC
paging on every request: 61% of native throughput, vs 82% in emulation mode
(shields without SGX). All variants serve real token-authenticated secret
reads.
"""

from repro import calibration
from repro.apps.kms import VaultServer
from repro.benchlib.harness import rate_sweep
from repro.benchlib.tables import PaperComparison, format_table, paper_vs_measured
from repro.crypto.primitives import DeterministicRandom
from repro.tee.enclave import ExecutionMode

from benchmarks.conftest import run_once

_MODES = {
    "Native w/ TLS": ExecutionMode.NATIVE,
    "Palaemon EMU": ExecutionMode.EMULATED,
    "Palaemon HW": ExecutionMode.HARDWARE,
}


def _setup(mode):
    def setup(simulator):
        server = VaultServer(simulator, mode=mode)
        rng = DeterministicRandom(b"vault-tokens")
        token = server.secrets.issue_token("app", rng)
        server.secrets.store(token, "db-creds", b"user:pass")

        def factory(_request_id):
            value = yield simulator.process(
                server.handle_retrieve(token, "db-creds"))
            assert value == b"user:pass"

        return factory

    return setup


def _sweep_all():
    rates = (1_000, 3_000, 5_000, 6_500, 8_500, 11_000)
    return {name: rate_sweep(name, _setup(mode), rates, duration=0.5)
            for name, mode in _MODES.items()}


def test_fig15_vault(benchmark):
    results = run_once(benchmark, _sweep_all)

    rows = []
    for name, result in results.items():
        for offered, achieved, latency_ms in result.rows():
            rows.append([name, offered, achieved, latency_ms])
    print()
    print(format_table(
        ["variant", "offered (req/s)", "achieved (req/s)", "mean lat (ms)"],
        rows, title="Fig 15: Vault"))

    # The paper reads throughput at the <1 s latency bound.
    knees = {name: result.knee(latency_limit=1.0)
             for name, result in results.items()}
    native = knees["Native w/ TLS"]
    comparisons = [
        PaperComparison("native peak", calibration.VAULT_NATIVE_PEAK_RPS,
                        native, unit="req/s"),
        PaperComparison("HW fraction", 0.61, knees["Palaemon HW"] / native,
                        rel_tolerance=0.10),
        PaperComparison("EMU fraction", 0.82, knees["Palaemon EMU"] / native,
                        rel_tolerance=0.10),
    ]
    print(paper_vs_measured(comparisons, title="paper vs measured"))
    for comparison in comparisons:
        assert comparison.within_tolerance, comparison.metric

    assert knees["Palaemon HW"] < knees["Palaemon EMU"] < native

    # The mechanism: the heap exceeds the EPC (paging is why HW < EMU).
    assert VaultServer.HEAP_BYTES > calibration.EPC_SIZE_DEFAULT * 10
