"""Tests for the latency distribution models."""

import math

import pytest

from repro.crypto.primitives import DeterministicRandom
from repro.sim.latency import (
    ConstantLatency,
    ExponentialLatency,
    UniformJitterLatency,
)


class TestConstantLatency:
    def test_sample_equals_mean(self):
        model = ConstantLatency(0.005)
        assert model.sample() == 0.005
        assert model.mean() == 0.005

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.1)

    def test_zero_allowed(self):
        assert ConstantLatency(0.0).sample() == 0.0


class TestExponentialLatency:
    def test_sample_mean_converges(self):
        model = ExponentialLatency(0.010, DeterministicRandom(b"exp"))
        samples = [model.sample() for _ in range(5000)]
        assert math.isclose(sum(samples) / len(samples), 0.010, rel_tol=0.1)
        assert model.mean() == 0.010

    def test_samples_nonnegative(self):
        model = ExponentialLatency(0.001, DeterministicRandom(b"nn"))
        assert all(model.sample() >= 0 for _ in range(100))

    def test_nonpositive_mean_rejected(self):
        with pytest.raises(ValueError):
            ExponentialLatency(0.0, DeterministicRandom(b"x"))


class TestUniformJitterLatency:
    def test_range(self):
        model = UniformJitterLatency(0.010, 0.004,
                                     DeterministicRandom(b"jit"))
        for _ in range(200):
            sample = model.sample()
            assert 0.010 <= sample <= 0.014

    def test_mean(self):
        model = UniformJitterLatency(0.010, 0.004,
                                     DeterministicRandom(b"jit"))
        assert model.mean() == pytest.approx(0.012)

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            UniformJitterLatency(-0.001, 0.0, DeterministicRandom(b"x"))
        with pytest.raises(ValueError):
            UniformJitterLatency(0.001, -0.1, DeterministicRandom(b"x"))

    def test_spread_covers_range(self):
        model = UniformJitterLatency(0.0, 1.0, DeterministicRandom(b"s"))
        samples = [model.sample() for _ in range(500)]
        assert min(samples) < 0.1
        assert max(samples) > 0.9
