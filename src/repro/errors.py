"""Exception hierarchy for the PALAEMON reproduction.

Every failure that the paper treats as a security event (integrity violation,
rollback detection, attestation failure, quorum rejection) maps to a distinct
exception type so tests can assert the *reason* a request was refused, not
just that it was refused.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class IntegrityError(CryptoError):
    """Authenticated data failed its integrity check (bad MAC, bad hash)."""


class MerkleLeafNotFoundError(IntegrityError, KeyError):
    """A Merkle-tree operation referenced a leaf that does not exist.

    Inherits ``KeyError`` so mapping-style callers keep working, and
    ``IntegrityError`` so the REST error mapping stays in the integrity
    family rather than surfacing an untyped lookup failure.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return Exception.__str__(self)


class SignatureError(CryptoError):
    """A digital signature failed verification."""


class CertificateError(CryptoError):
    """A certificate is invalid: bad chain, expired, or wrong issuer."""


class SimulationError(ReproError):
    """Base class for discrete-event simulation errors."""


class SimTimeError(SimulationError):
    """An event was scheduled in the past or with a negative delay."""


class NetworkError(SimulationError):
    """A message could not be delivered (unknown site, closed endpoint)."""


class DeadlineExceededError(SimulationError):
    """An awaited event did not fire before its deadline
    (:meth:`Simulator.with_timeout`)."""


class RetryExhaustedError(SimulationError):
    """A retried operation failed on every attempt and gave up.

    ``attempts`` is how many attempts ran; ``last_error`` is the failure of
    the final one (also chained as ``__cause__``).
    """

    def __init__(self, message: str, attempts: int = 0,
                 last_error: "BaseException | None" = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class FaultInjectedError(SimulationError):
    """Base class for failures injected by a :class:`FaultPlan`."""


class StorageFaultError(FaultInjectedError):
    """An injected disk-commit or block-store failure."""


class TEEError(ReproError):
    """Base class for simulated-SGX platform errors."""


class EnclaveError(TEEError):
    """Enclave construction or execution failed."""


class SealingError(TEEError):
    """Sealed data could not be unsealed (wrong platform or wrong MRE)."""


class QuoteError(TEEError):
    """A quote or report failed verification."""


class CounterError(TEEError):
    """A monotonic counter operation failed."""


class CounterWearError(CounterError):
    """A monotonic counter exceeded its write-endurance budget."""


class CounterNotFoundError(CounterError):
    """The named monotonic counter does not exist (never created)."""


class CounterUnavailableError(CounterError):
    """The counter service is temporarily unreachable (outage, not loss).

    Transient by construction: retrying after the outage window may
    succeed. Crucially distinct from :class:`CounterNotFoundError` —
    responding to *this* error by creating a fresh counter would destroy
    rollback protection."""


class FileSystemError(ReproError):
    """Base class for shielded file-system errors."""


class TagMismatchError(FileSystemError):
    """The file system's Merkle tag does not match the expected tag.

    This is how both tampering and rollback of application state surface.
    """


class RollbackDetectedError(ReproError):
    """A rollback attack was detected (stale state presented as current)."""


class StaleDatabaseError(RollbackDetectedError):
    """PALAEMON's database version does not match the monotonic counter."""


class ConcurrentInstanceError(RollbackDetectedError):
    """A second PALAEMON instance with the same identity is already running."""


class DispatchError(ReproError):
    """Base class for request-dispatch failures (``repro.core.dispatch``)."""


class UnknownRouteError(DispatchError):
    """The request named an operation the registry does not know."""


class BadRequestError(DispatchError):
    """The request is structurally invalid (not a mapping, missing fields)."""


class CertificateRequiredError(DispatchError):
    """The operation requires a client certificate and none was presented."""


class PeerRequiredError(DispatchError):
    """The operation is only reachable over an attested peer link."""


class ServiceOverloadedError(DispatchError):
    """Admission control shed the request (queue full or deadline passed).

    Carries the stable wire code ``overloaded`` (shorter than the
    auto-derived ``service_overloaded``) so clients can match on it.
    """

    code = "overloaded"


class PolicyError(ReproError):
    """Base class for security-policy errors."""


class PolicyValidationError(PolicyError):
    """A policy document is structurally invalid."""


class PolicyExistsError(PolicyError):
    """A policy with this name already exists."""


class PolicyNotFoundError(PolicyError):
    """No policy with this name exists."""


class AccessDeniedError(PolicyError):
    """The client certificate does not authorize this policy access."""


class ApprovalDeniedError(PolicyError):
    """The policy board did not approve the requested operation."""


class VetoError(ApprovalDeniedError):
    """A veto-holding board member rejected the operation."""


class AttestationError(ReproError):
    """Application or service attestation failed."""


class PlatformNotPermittedError(AttestationError):
    """The application runs on a platform not listed in its policy."""


class MrenclaveNotPermittedError(AttestationError):
    """The application's MRENCLAVE is not listed in its policy."""


class StrictModeError(PolicyError):
    """Strict mode forbids restart after an unclean exit without a policy update."""


class UpdateError(PolicyError):
    """A secure-update operation was rejected."""
