"""Certificates and certificate authorities.

PALAEMON leans on certificates in three places: the PALAEMON CA issues TLS
certificates only to instances with known-good MRENCLAVEs; clients present a
certificate to own a security policy; and policy-board members are identified
by certificates. This module provides a minimal but real X.509-shaped
certificate: a signed statement binding a subject name (and optional
attributes such as an MRENCLAVE) to a public key, with a validity window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.crypto.primitives import DeterministicRandom, sha256
from repro.crypto.signatures import KeyPair, PublicKey
from repro.errors import CertificateError, SignatureError


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a subject name to a public key.

    Attributes
    ----------
    subject:
        Human-readable subject name (e.g. ``"palaemon-instance-1"``).
    public_key:
        The subject's public key.
    issuer:
        The issuing CA's subject name (== ``subject`` for self-signed roots).
    issuer_key:
        The issuing CA's public key; verification checks the signature
        against this key.
    not_before / not_after:
        Validity window in simulation seconds.
    attributes:
        Free-form string attributes; the PALAEMON CA records the attested
        ``mrenclave`` here.
    signature:
        Issuer's signature over the to-be-signed serialization.
    """

    subject: str
    public_key: PublicKey
    issuer: str
    issuer_key: PublicKey
    not_before: float
    not_after: float
    attributes: Dict[str, str] = field(default_factory=dict)
    signature: bytes = b""

    def to_be_signed(self) -> bytes:
        """Canonical serialization covered by the issuer signature."""
        attrs = "".join(f"{k}={v};" for k, v in sorted(self.attributes.items()))
        header = (f"subject={self.subject};issuer={self.issuer};"
                  f"nb={self.not_before!r};na={self.not_after!r};{attrs}")
        return (header.encode() + self.public_key.to_bytes()
                + self.issuer_key.to_bytes())

    def fingerprint(self) -> bytes:
        """Stable identifier for this certificate."""
        return sha256(self.to_be_signed(), self.signature)[:16]

    def verify(self, now: float,
               trusted_root: Optional[PublicKey] = None) -> None:
        """Validate the certificate at time ``now``.

        Raises :class:`CertificateError` on an expired or not-yet-valid
        certificate, on a bad signature, or — when ``trusted_root`` is given —
        on an issuer key that is not the trusted root.
        """
        if now < self.not_before:
            raise CertificateError(
                f"certificate for {self.subject!r} not yet valid")
        if now > self.not_after:
            raise CertificateError(f"certificate for {self.subject!r} expired")
        if trusted_root is not None and self.issuer_key != trusted_root:
            raise CertificateError(
                f"certificate for {self.subject!r} not issued by trusted root")
        try:
            self.issuer_key.verify(self.to_be_signed(), self.signature)
        except SignatureError as exc:
            raise CertificateError(
                f"certificate for {self.subject!r} has an invalid signature"
            ) from exc

    def is_self_signed(self) -> bool:
        return self.issuer_key == self.public_key


class CertificateAuthority:
    """A signing authority with a root key pair.

    The PALAEMON CA (``repro.core.ca``) wraps this with enclave residency and
    an MRE allow-list; plain clients use it directly for self-signed identity
    certificates.
    """

    def __init__(self, name: str, key_pair: KeyPair) -> None:
        self.name = name
        self._key_pair = key_pair

    @classmethod
    def create(cls, name: str, rng: DeterministicRandom) -> "CertificateAuthority":
        return cls(name, KeyPair.generate(rng))

    @property
    def root_public_key(self) -> PublicKey:
        return self._key_pair.public

    def issue(self, subject: str, public_key: PublicKey, not_before: float,
              not_after: float,
              attributes: Optional[Dict[str, str]] = None) -> Certificate:
        """Issue a certificate binding ``subject`` to ``public_key``."""
        if not_after <= not_before:
            raise CertificateError("certificate validity window is empty")
        certificate = Certificate(
            subject=subject,
            public_key=public_key,
            issuer=self.name,
            issuer_key=self._key_pair.public,
            not_before=not_before,
            not_after=not_after,
            attributes=dict(attributes or {}),
        )
        signature = self._key_pair.sign(certificate.to_be_signed())
        return Certificate(
            subject=certificate.subject,
            public_key=certificate.public_key,
            issuer=certificate.issuer,
            issuer_key=certificate.issuer_key,
            not_before=certificate.not_before,
            not_after=certificate.not_after,
            attributes=certificate.attributes,
            signature=signature,
        )


def self_signed_certificate(subject: str, key_pair: KeyPair,
                            not_before: float = 0.0,
                            not_after: float = float("inf"),
                            attributes: Optional[Dict[str, str]] = None,
                            ) -> Certificate:
    """Create a self-signed identity certificate (used by clients)."""
    authority = CertificateAuthority(subject, key_pair)
    return authority.issue(subject, key_pair.public, not_before, not_after,
                           attributes)
