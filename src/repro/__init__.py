"""repro — a reproduction of PALAEMON (Gregor et al., DSN 2020).

"Trust Management as a Service: Enabling Trusted Execution in the Face of
Byzantine Stakeholders."

Top-level convenience imports cover the public API a downstream user needs
to stand up a deployment; see the README's quickstart and the ``examples/``
directory for end-to-end usage.
"""

__version__ = "1.0.0"

__all__ = [
    "__version__",
]
