"""The telemetry facade: one object per instrumented domain.

A :class:`Telemetry` bundles the three observability primitives —
:class:`~repro.obs.metrics.MetricsRegistry`,
:class:`~repro.obs.tracing.Tracer`, and
:class:`~repro.obs.audit.AuditLog` — behind the terse calls hot paths
actually make (``inc``, ``observe``, ``audit``, ``span``). It is wired to
the *simulator* clock, so recording is free in virtual time and
deterministic across runs.

A disabled instance (``enabled=False``, or the shared
:data:`NULL_TELEMETRY` sink) turns every call into a no-op so
latency-calibrated benchmarks can opt out without branching at call
sites. Instrumented code never checks ``if telemetry:`` — it just calls.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.audit import AuditLog, AuditRecord
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer


class _NullSpan:
    """The span handle a disabled telemetry hands out."""

    span = None

    def annotate(self, _message: str) -> None:
        pass

    def set_attribute(self, _key: str, _value: str) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Telemetry:
    """Metrics + traces + audit log for one PALAEMON domain."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 enabled: bool = True) -> None:
        self._clock = clock or (lambda: 0.0)
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self._clock)
        self.audit_log = AuditLog(self._clock)

    @classmethod
    def for_simulator(cls, simulator) -> "Telemetry":
        """A telemetry domain on the simulator's virtual clock."""
        return cls(clock=lambda: simulator.now)

    @property
    def now(self) -> float:
        return self._clock()

    # -- metrics ----------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels: str) -> None:
        if self.enabled:
            self.metrics.counter(name, **labels).inc(amount)

    def gauge(self, name: str, value: float, **labels: str) -> None:
        if self.enabled:
            self.metrics.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        if self.enabled:
            self.metrics.histogram(name, **labels).observe(value)

    # -- tracing ----------------------------------------------------------

    def span(self, name: str, **attributes: str):
        """Open a (possibly nested) span; use as a context manager."""
        if not self.enabled:
            return _NULL_SPAN
        return self.tracer.span(name, **attributes)

    def spans(self) -> "list[Span]":
        return list(self.tracer.finished)

    # -- audit ------------------------------------------------------------

    def audit(self, kind: str, **details: object) -> Optional[AuditRecord]:
        if not self.enabled:
            return None
        return self.audit_log.append(kind, **details)

    def verify_audit_chain(self,
                           expected_head: Optional[bytes] = None) -> int:
        return self.audit_log.verify_chain(expected_head)

    # -- export -----------------------------------------------------------

    def snapshot_text(self) -> str:
        """Prometheus-style text rendering of every metric series."""
        from repro.obs.export import render_prometheus

        return render_prometheus(self.metrics)

    def events_jsonl(self) -> str:
        """Audit records and finished spans as a JSON-lines stream."""
        from repro.obs.export import events_to_jsonl

        return events_to_jsonl(self)


#: The shared no-op sink: accepts every call, records nothing.
NULL_TELEMETRY = Telemetry(enabled=False)
