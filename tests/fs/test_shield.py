"""Tests for the block store, FSPF, and the file-system shield."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.primitives import DeterministicRandom
from repro.errors import IntegrityError, TagMismatchError
from repro.fs.blockstore import BlockStore
from repro.fs.fspf import FileSystemProtectionFile
from repro.fs.shield import ProtectedFileSystem


def make_fs(store=None, listener=None, seed=b"fs-test"):
    store = store if store is not None else BlockStore()
    rng = DeterministicRandom(seed)
    key = rng.fork(b"key").bytes(32)
    return ProtectedFileSystem(store, key, rng.fork(b"shield"),
                               tag_listener=listener), store, key, rng


class TestBlockStore:
    def test_write_read_delete(self):
        store = BlockStore()
        store.write("/a", b"data")
        assert store.read("/a") == b"data"
        assert store.exists("/a")
        store.delete("/a")
        assert not store.exists("/a")

    def test_missing_file_raises(self):
        with pytest.raises(FileNotFoundError):
            BlockStore().read("/nope")
        with pytest.raises(FileNotFoundError):
            BlockStore().delete("/nope")

    def test_snapshot_restore(self):
        store = BlockStore()
        store.write("/a", b"v1")
        checkpoint = store.snapshot()
        store.write("/a", b"v2")
        store.write("/b", b"new")
        store.restore(checkpoint)
        assert store.read("/a") == b"v1"
        assert not store.exists("/b")

    def test_scan_for(self):
        store = BlockStore()
        store.write("/a", b"contains needle here")
        store.write("/b", b"clean")
        assert store.scan_for(b"needle") == ["/a"]

    def test_accounting(self):
        store = BlockStore()
        store.write("/a", b"12345")
        store.read("/a")
        assert store.write_count == 1
        assert store.read_count == 1
        assert store.total_bytes() == 5


class TestShieldBasics:
    def test_write_read_round_trip(self):
        fs, _, _, _ = make_fs()
        fs.write("/app/config", b"plaintext content")
        assert fs.read("/app/config") == b"plaintext content"

    def test_plaintext_never_in_store(self):
        fs, store, _, _ = make_fs()
        secret = b"super-secret-model-weights"
        fs.write("/model.bin", secret)
        fs.sync()
        assert store.scan_for(secret) == []

    def test_read_missing_raises(self):
        fs, _, _, _ = make_fs()
        with pytest.raises(FileNotFoundError):
            fs.read("/missing")

    def test_delete(self):
        fs, _, _, _ = make_fs()
        fs.write("/a", b"x")
        fs.delete("/a")
        assert not fs.exists("/a")
        with pytest.raises(FileNotFoundError):
            fs.delete("/a")

    def test_list(self):
        fs, _, _, _ = make_fs()
        fs.write("/b", b"2")
        fs.write("/a", b"1")
        assert fs.list() == ["/a", "/b"]

    def test_relative_path_rejected(self):
        fs, _, _, _ = make_fs()
        with pytest.raises(ValueError):
            fs.write("relative", b"x")

    def test_fspf_path_reserved(self):
        fs, _, _, _ = make_fs()
        with pytest.raises(ValueError):
            fs.write("/.fspf", b"x")

    def test_cache_serves_repeat_reads(self):
        fs, _, _, _ = make_fs()
        fs.write("/a", b"cached")
        fs.read("/a")
        decrypts_before = fs.decrypt_count
        fs.read("/a")
        assert fs.decrypt_count == decrypts_before

    @given(st.dictionaries(
        st.from_regex(r"/[a-z]{1,8}", fullmatch=True),
        st.binary(max_size=256), min_size=1, max_size=10))
    def test_round_trip_property(self, files):
        fs, _, _, _ = make_fs(seed=b"hyp")
        for path, data in files.items():
            fs.write(path, data)
        for path, data in files.items():
            assert fs.read(path) == data


class TestPersistence:
    def test_remount_after_sync(self):
        fs, store, key, _ = make_fs()
        fs.write("/data", b"persisted")
        fs.sync()
        remounted = ProtectedFileSystem(store, key,
                                        DeterministicRandom(b"remount"))
        assert remounted.read("/data") == b"persisted"

    def test_remount_wrong_key_fails(self):
        fs, store, _, _ = make_fs()
        fs.write("/data", b"persisted")
        fs.sync()
        with pytest.raises(IntegrityError):
            ProtectedFileSystem(store, b"\x00" * 32,
                                DeterministicRandom(b"wrong"))

    def test_tag_survives_remount(self):
        fs, store, key, _ = make_fs()
        fs.write("/data", b"persisted")
        tag = fs.sync()
        remounted = ProtectedFileSystem(store, key,
                                        DeterministicRandom(b"remount"))
        assert remounted.tag() == tag


class TestTagSemantics:
    def test_tag_changes_on_write(self):
        fs, _, _, _ = make_fs()
        fs.write("/a", b"v1")
        tag1 = fs.sync()
        fs.write("/a", b"v2")
        tag2 = fs.sync()
        assert tag1 != tag2

    def test_tag_listener_called_on_all_three_events(self):
        tags = []
        fs, _, _, _ = make_fs(listener=tags.append)
        fs.write("/a", b"1")
        fs.close_file("/a")
        fs.write("/a", b"2")
        fs.sync()
        fs.write("/a", b"3")
        fs.on_exit()
        assert len(tags) == 3
        assert len(set(tags)) == 3

    def test_verify_tag_accepts_current(self):
        fs, _, _, _ = make_fs()
        fs.write("/a", b"data")
        tag = fs.sync()
        fs.verify_tag(tag)

    def test_verify_tag_rejects_stale(self):
        fs, _, _, _ = make_fs()
        fs.write("/a", b"v1")
        old_tag = fs.sync()
        fs.write("/a", b"v2")
        fs.sync()
        with pytest.raises(TagMismatchError):
            fs.verify_tag(old_tag)


class TestAttacks:
    def test_rollback_attack_detected(self):
        """The core §III-D scenario: snapshot, progress, restore, detect."""
        fs, store, key, _ = make_fs()
        fs.write("/state", b"run-1")
        fs.sync()
        checkpoint = store.snapshot()  # attacker checkpoints the volume

        fs.write("/state", b"run-2")
        expected_tag = fs.sync()  # PALAEMON now expects this tag

        store.restore(checkpoint)  # attacker rolls back
        remounted = ProtectedFileSystem(store, key,
                                        DeterministicRandom(b"restart"))
        with pytest.raises(TagMismatchError):
            remounted.verify_tag(expected_tag)

    def test_tamper_with_ciphertext_detected_on_read(self):
        fs, store, key, _ = make_fs()
        fs.write("/a", b"original")
        fs.sync()
        store.tamper("/a", b"\x00" * 64)
        remounted = ProtectedFileSystem(store, key,
                                        DeterministicRandom(b"r"))
        with pytest.raises(IntegrityError):
            remounted.read("/a")

    def test_file_swap_detected(self):
        """Swapping two encrypted files is caught by path-bound AD/hashes."""
        fs, store, key, _ = make_fs()
        fs.write("/a", b"content-a")
        fs.write("/b", b"content-b")
        fs.sync()
        raw_a, raw_b = store.read("/a"), store.read("/b")
        store.tamper("/a", raw_b)
        store.tamper("/b", raw_a)
        remounted = ProtectedFileSystem(store, key,
                                        DeterministicRandom(b"r"))
        with pytest.raises(IntegrityError):
            remounted.read("/a")

    def test_deleted_file_resurrection_detected(self):
        """Re-adding a deleted file's old ciphertext is caught by the FSPF."""
        fs, store, key, _ = make_fs()
        fs.write("/a", b"to-be-deleted")
        fs.sync()
        old_raw = store.read("/a")
        fs.delete("/a")
        expected = fs.sync()
        store.tamper("/a", old_raw)
        remounted = ProtectedFileSystem(store, key,
                                        DeterministicRandom(b"r"))
        # The resurrected file is invisible (not in FSPF) and the tag holds.
        assert not remounted.exists("/a")
        remounted.verify_tag(expected)

    def test_fspf_tampering_detected(self):
        fs, store, key, _ = make_fs()
        fs.write("/a", b"data")
        fs.sync()
        store.tamper("/.fspf", b"\x41" * 128)
        with pytest.raises(IntegrityError):
            ProtectedFileSystem(store, key, DeterministicRandom(b"r"))


class TestSyncGenerations:
    def test_sync_skips_unchanged_paths(self):
        """sync() must not re-read ciphertexts whose blocks are unchanged."""
        fs, store, _, _ = make_fs()
        for index in range(5):
            fs.write(f"/f{index}", b"payload-%d" % index)
        fs.sync()
        reads_before = store.read_count
        fs.sync()
        assert store.read_count == reads_before

    def test_sync_revalidates_after_out_of_band_change(self):
        fs, store, _, _ = make_fs()
        fs.write("/a", b"cached plaintext")
        fs.sync()
        store.tamper("/a", b"\x00" * 64)  # bumps /a's generation
        fs.sync()  # hash mismatch: the cached plaintext must be evicted
        with pytest.raises(IntegrityError):
            fs.read("/a")

    def test_sync_revalidates_after_rollback_restore(self):
        fs, store, _, _ = make_fs()
        fs.write("/a", b"v1")
        fs.sync()
        checkpoint = store.snapshot()
        fs.write("/a", b"v2")
        fs.sync()
        store.restore(checkpoint)  # restore() bumps every path's generation
        fs.sync()  # /a's blocks no longer match the live FSPF: evict
        # The cached "v2" plaintext must not be served; the rolled-back
        # ciphertext fails against the in-enclave FSPF hash instead.
        with pytest.raises(IntegrityError):
            fs.read("/a")

    def test_sync_without_generations_still_revalidates(self):
        """A store without generation() falls back to full re-reads.

        Backends like the replicated object store cannot soundly report
        "unchanged", so the shield must keep re-hashing their ciphertexts.
        """

        class NoGenerationStore:
            def __init__(self, inner):
                self._inner = inner
                self.name = inner.name

            def __getattr__(self, attribute):
                if attribute == "generation":
                    raise AttributeError(attribute)
                return getattr(self._inner, attribute)

        inner = BlockStore()
        fs, _, _, _ = make_fs(store=NoGenerationStore(inner))
        fs.write("/a", b"data")
        fs.sync()
        reads_before = inner.read_count
        fs.sync()  # no generation signal: the ciphertext is re-read
        assert inner.read_count == reads_before + 1
        inner.tamper("/a", b"\x00" * 64)
        fs.sync()
        with pytest.raises(IntegrityError):
            fs.read("/a")

    def test_generation_bumps_on_every_mutation(self):
        store = BlockStore()
        assert store.generation("/a") == 0
        store.write("/a", b"1")
        first = store.generation("/a")
        store.tamper("/a", b"2")
        second = store.generation("/a")
        store.restore({"/a": b"3"})
        third = store.generation("/a")
        assert 0 < first < second < third


class TestFspf:
    def test_tag_is_merkle_root(self):
        fspf = FileSystemProtectionFile()
        fspf.set_entry("/a", b"\x01" * 32, 10)
        assert fspf.tag() == fspf.merkle_tree().root()

    def test_seal_unseal_round_trip(self):
        rng = DeterministicRandom(b"fspf")
        from repro.crypto.symmetric import SecretBox
        box = SecretBox(rng.bytes(32), rng.fork(b"n"))
        fspf = FileSystemProtectionFile()
        fspf.set_entry("/a", b"\x02" * 32, 5)
        restored = FileSystemProtectionFile.unseal(box, fspf.seal(box))
        assert restored.tag() == fspf.tag()
        assert restored.entries["/a"].size == 5
