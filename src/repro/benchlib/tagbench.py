"""Tag-update throughput benchmark (the Fig 10/11 hot path, end to end).

Measures the cost of ``PalaemonService.update_tag`` — the paper's most
frequent write — against a database of many policies, in three ways:

- **sequential, segmented** (the default write path): each update reseals
  only the dirty tables plus the manifest;
- **sequential, legacy monolithic** (the pre-segmentation format, kept via
  :meth:`PolicyStore.use_legacy_monolithic_format`): each update re-pickles
  and re-encrypts the whole document — the O(database) baseline;
- **concurrent, segmented**: N simultaneous updaters exercising the
  group-commit batching in :meth:`PolicyStore.commit`.

Two kinds of numbers come out. *Deterministic* facts — simulated elapsed
time, bytes written to the untrusted store, disk-commit and coalescing
counts — are identical across runs with the same configuration and are
what gets exported to ``results/tag_throughput.json``. *Wall-clock*
serialization timings vary by host and are reported separately for
display, never exported.

Used by ``python -m repro bench-tags`` and
``benchmarks/test_tag_throughput.py``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Generator, Tuple

from repro.benchlib.export import export_experiment
from repro.core.service import PalaemonService, _ServiceState
from repro.crypto.primitives import DeterministicRandom, sha256
from repro.fs.blockstore import BlockStore
from repro.obs.telemetry import Telemetry
from repro.sim.core import Event, Simulator
from repro.tee.platform import SGXPlatform

#: The per-policy payload stored in the policies table: sized so a
#: 1,000-policy database pickles to ~2 MB, matching a small production
#: estate (List 1 policies carry injection-file templates of this order).
DEFAULT_PAYLOAD_BYTES = 2048
DEFAULT_POLICIES = 1000


def build_service(name: str, seed: bytes, policies: int,
                  payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
                  legacy: bool = False,
                  ) -> Tuple[Simulator, PalaemonService]:
    """A minimal started PALAEMON instance seeded with ``policies`` entries.

    The database is bulk-seeded directly through the store (one commit at
    the end) so setup cost does not depend on the flush strategy under
    test; per-policy payloads and service states are deterministic
    functions of the seed.
    """
    rng = DeterministicRandom(seed)
    simulator = Simulator()
    platform = SGXPlatform(simulator, f"{name}-node", rng.fork(b"platform"))
    service = PalaemonService(platform, BlockStore(f"{name}-volume"),
                              rng.fork(b"service"), name=name,
                              telemetry=Telemetry.for_simulator(simulator))
    if legacy:
        service.store.use_legacy_monolithic_format()
    simulator.run_process(service.start(), name=f"{name}-start")
    payload_rng = rng.fork(b"payloads")
    for index in range(policies):
        policy_name = _policy_name(index)
        service.store.put("policies", policy_name, {
            "name": policy_name,
            "services": ["svc"],
            "injection_template": payload_rng.bytes(payload_bytes),
        })
        service.store.put("state", policy_name, {"svc": _ServiceState()})
    service.store.commit_instant()
    return simulator, service


def _policy_name(index: int) -> str:
    return f"bench-{index:04d}"


def measure_sequential(policies: int, updates: int,
                       payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
                       legacy: bool = False) -> Tuple[Dict[str, Any], float]:
    """Sequential tag updates; returns (deterministic facts, wall seconds)."""
    mode = "legacy" if legacy else "segmented"
    simulator, service = build_service(
        f"tagbench-{mode}", b"tagbench:" + mode.encode(), policies,
        payload_bytes=payload_bytes, legacy=legacy)
    backing = service.store.store
    bytes_before = backing.bytes_written
    commits_before = service.store.disk.commits
    sim_before = simulator.now
    wall_before = time.perf_counter()
    for index in range(updates):
        target = _policy_name((index * 37) % policies)
        tag = sha256(b"tag:%d" % index)
        simulator.run_process(
            service.update_tag(target, "svc", tag),
            name=f"update-{index}")
    wall_seconds = time.perf_counter() - wall_before
    return {
        "mode": mode,
        "policies": policies,
        "updates": updates,
        "sim_seconds_per_update":
            (simulator.now - sim_before) / updates,
        "bytes_written_per_update":
            (backing.bytes_written - bytes_before) // updates,
        "disk_commits": service.store.disk.commits - commits_before,
    }, wall_seconds


def measure_concurrent(policies: int, workers: int,
                       payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
                       ) -> Dict[str, Any]:
    """``workers`` simultaneous tag updates through the group commit."""
    simulator, service = build_service(
        "tagbench-concurrent", b"tagbench:concurrent", policies,
        payload_bytes=payload_bytes)
    commits_before = service.store.disk.commits
    sim_before = simulator.now

    def drive() -> Generator[Event, Any, float]:
        processes = [
            simulator.process(service.update_tag(
                _policy_name(index), "svc", sha256(b"concurrent:%d" % index)))
            for index in range(workers)]
        for process in processes:
            yield process
        return simulator.now

    finished = simulator.run_process(drive(), name="concurrent-updates")
    disk_commits = service.store.disk.commits - commits_before
    coalesced = service.telemetry.metrics.counter(
        "palaemon_db_commits_coalesced_total").value
    return {
        "mode": "concurrent-segmented",
        "policies": policies,
        "workers": workers,
        "sim_seconds_total": finished - sim_before,
        "disk_commits": disk_commits,
        "coalesced_commits": int(coalesced),
        "expected_tags_recorded": sum(
            1 for index in range(workers)
            if service.get_tag_instant(_policy_name(index), "svc")
            is not None),
    }


def run_benchmark(policies: int = DEFAULT_POLICIES,
                  sequential_updates: int = 12,
                  legacy_updates: int = 6,
                  workers: int = 8,
                  payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
                  ) -> Tuple[Dict[str, Any], Dict[str, float]]:
    """Run all three phases.

    Returns ``(document, wall_clock)``: the document holds only
    deterministic facts (stable across reruns, suitable for committing),
    ``wall_clock`` the host-dependent serialization timings.
    """
    segmented, wall_segmented = measure_sequential(
        policies, sequential_updates, payload_bytes=payload_bytes)
    legacy, wall_legacy = measure_sequential(
        policies, legacy_updates, payload_bytes=payload_bytes, legacy=True)
    concurrent = measure_concurrent(policies, workers,
                                    payload_bytes=payload_bytes)
    bytes_ratio = (legacy["bytes_written_per_update"]
                   / max(1, segmented["bytes_written_per_update"]))
    document = {
        "config": {
            "policies": policies,
            "payload_bytes": payload_bytes,
            "sequential_updates": sequential_updates,
            "legacy_updates": legacy_updates,
            "concurrent_workers": workers,
        },
        "sequential": {
            "segmented": segmented,
            "legacy": legacy,
            "bytes_written_ratio_legacy_over_segmented":
                round(bytes_ratio, 2),
        },
        "concurrent": concurrent,
    }
    wall_clock = {
        "segmented_updates_per_second":
            sequential_updates / wall_segmented if wall_segmented else 0.0,
        "legacy_updates_per_second":
            legacy_updates / wall_legacy if wall_legacy else 0.0,
    }
    return document, wall_clock


def export_results(path: str, document: Dict[str, Any]) -> None:
    """Write the deterministic document via the benchlib export format."""
    export_experiment(path, experiment_id="tag_throughput",
                      extra=document)


def check_invariants(document: Dict[str, Any]) -> None:
    """The batching + throughput invariants ``bench-tags --smoke`` enforces.

    - concurrent updaters must coalesce: fewer disk commits than workers,
      at least one coalesced commit, and every worker's tag recorded;
    - the segmented write path must move >= 10x fewer bytes per update
      than the legacy whole-document flush;
    - the latency model is untouched: a sequential segmented update still
      pays exactly one disk commit.
    """
    concurrent = document["concurrent"]
    if concurrent["coalesced_commits"] < 1:
        raise AssertionError("no coalesced commits under concurrent load")
    if concurrent["disk_commits"] >= concurrent["workers"]:
        raise AssertionError(
            f"{concurrent['workers']} workers required "
            f"{concurrent['disk_commits']} disk commits — no batching")
    if concurrent["expected_tags_recorded"] != concurrent["workers"]:
        raise AssertionError("a coalesced update lost its tag")
    sequential = document["sequential"]
    ratio = sequential["bytes_written_ratio_legacy_over_segmented"]
    if ratio < 10.0:
        raise AssertionError(
            f"segmented flush only {ratio:.1f}x smaller than the legacy "
            f"whole-document flush (need >= 10x)")
    segmented = sequential["segmented"]
    if segmented["disk_commits"] != segmented["updates"]:
        raise AssertionError("sequential updates must pay one commit each")
