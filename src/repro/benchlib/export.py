"""Export experiment results as JSON for external plotting.

Downstream users reproduce the paper's figures with their own plotting
stack; this module flattens :class:`ExperimentResult` curves and
paper-vs-measured comparisons into plain JSON-serializable structures and
writes them to disk.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Sequence, Union

from repro.benchlib.harness import ExperimentResult
from repro.benchlib.tables import PaperComparison
from repro.sim.metrics import summary_to_dict


def result_to_dict(result: ExperimentResult) -> dict:
    """Flatten one curve into JSON-serializable primitives."""
    return {
        "name": result.name,
        "points": [
            {
                "offered_rate": point.offered_rate,
                "achieved_rate": point.achieved_rate,
                "latency": summary_to_dict(point.latency),
            }
            for point in result.points
        ],
    }


def comparison_to_dict(comparison: PaperComparison) -> dict:
    return {
        "metric": comparison.metric,
        "paper": comparison.paper_value,
        "measured": comparison.measured_value,
        "unit": comparison.unit,
        "ratio": comparison.ratio,
        "within_tolerance": comparison.within_tolerance,
    }


def export_experiment(path: Union[str, Path], experiment_id: str,
                      curves: Sequence[ExperimentResult] = (),
                      comparisons: Sequence[PaperComparison] = (),
                      extra: Dict = None) -> Path:
    """Write one experiment's results to ``path`` as JSON.

    Returns the path written. The document shape is stable:
    ``{"experiment": id, "curves": [...], "paper_vs_measured": [...],
    "extra": {...}}``.
    """
    document = {
        "experiment": experiment_id,
        "curves": [result_to_dict(curve) for curve in curves],
        "paper_vs_measured": [comparison_to_dict(c) for c in comparisons],
        "extra": extra or {},
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_experiment(path: Union[str, Path]) -> dict:
    """Read back a document written by :func:`export_experiment`."""
    return json.loads(Path(path).read_text())
