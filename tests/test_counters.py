"""Tests for the monotonic counter zoo."""

import pytest

from repro import calibration
from repro.counters.filecounter import FileCounter, FileCounterMode
from repro.counters.platform import SGXPlatformCounter
from repro.counters.rote import ROTECounterGroup
from repro.counters.tpm import TPMCounter
from repro.crypto.primitives import DeterministicRandom
from repro.errors import CounterError, CounterWearError
from repro.fs.blockstore import BlockStore
from repro.sim.core import Simulator
from repro.tee.counters import PlatformCounterService


def measured_rate(simulator, counter, increments=50):
    """Increment ``increments`` times and return increments/second."""
    def main():
        start = simulator.now
        for _ in range(increments):
            yield simulator.process(counter.increment())
        return increments / (simulator.now - start)

    return simulator.run_process(main())


class TestSGXPlatformCounter:
    def test_monotone(self):
        sim = Simulator()
        counter = SGXPlatformCounter(PlatformCounterService(sim), "c")

        def main():
            values = []
            for _ in range(3):
                values.append((yield sim.process(counter.increment())))
            return values

        assert sim.run_process(main()) == [1, 2, 3]

    def test_rate_near_paper_value(self):
        sim = Simulator()
        counter = SGXPlatformCounter(PlatformCounterService(sim), "c")
        rate = measured_rate(sim, counter, increments=30)
        assert 8 <= rate <= 20  # paper: 13/s measured, 20/s spec limit

    def test_wear_tracked(self):
        sim = Simulator()
        counter = SGXPlatformCounter(PlatformCounterService(sim), "c")
        measured_rate(sim, counter, increments=5)
        assert counter.wear == 5


class TestTPMCounter:
    def test_rate_near_paper_value(self):
        sim = Simulator()
        rate = measured_rate(sim, TPMCounter(sim), increments=30)
        assert 7 <= rate <= 12  # paper: ~10/s

    def test_wear_out(self):
        sim = Simulator()
        counter = TPMCounter(sim, wear_limit=2)

        def main():
            for _ in range(3):
                yield sim.process(counter.increment())

        with pytest.raises(CounterWearError):
            sim.run_process(main())

    def test_endurance_band_constants(self):
        assert calibration.TPM_COUNTER_WEAR_LIMIT_MIN == 300_000
        assert calibration.TPM_COUNTER_WEAR_LIMIT_MAX == 1_400_000


class TestROTE:
    def test_rate_near_paper_value(self):
        sim = Simulator()
        group = ROTECounterGroup(sim, group_size=4)
        rate = measured_rate(sim, group, increments=100)
        assert 300 <= rate <= 700  # paper: ~500 ops/s, 4 servers LAN

    def test_quorum_replication(self):
        sim = Simulator()
        group = ROTECounterGroup(sim, group_size=4)
        measured_rate(sim, group, increments=3)
        assert all(replica.value == 3 for replica in group.replicas)

    def test_tolerates_minority_failures(self):
        sim = Simulator()
        group = ROTECounterGroup(sim, group_size=4)
        group.fail_replica(0)

        def main():
            value = yield sim.process(group.increment())
            return value

        assert sim.run_process(main()) == 1

    def test_majority_failure_blocks(self):
        sim = Simulator()
        group = ROTECounterGroup(sim, group_size=4)
        for replica_id in (0, 1):
            group.fail_replica(replica_id)

        def main():
            yield sim.process(group.increment())

        with pytest.raises(CounterError, match="quorum"):
            sim.run_process(main())

    def test_too_small_group_rejected(self):
        with pytest.raises(CounterError):
            ROTECounterGroup(Simulator(), group_size=2)


class TestFileCounter:
    @pytest.mark.parametrize("mode", list(FileCounterMode))
    def test_monotone_and_persistent(self, mode):
        sim = Simulator()
        counter = FileCounter(sim, mode)
        measured_rate(sim, counter, increments=5)
        assert counter.read() == 5

    @pytest.mark.parametrize("mode,expected_rate", [
        (FileCounterMode.NATIVE, calibration.FILE_COUNTER_NATIVE_RATE),
        (FileCounterMode.SGX, calibration.FILE_COUNTER_SGX_RATE),
        (FileCounterMode.ENCRYPTED, calibration.FILE_COUNTER_ENCRYPTED_RATE),
        (FileCounterMode.STRICT, calibration.FILE_COUNTER_PALAEMON_RATE),
    ])
    def test_rates_match_calibration(self, mode, expected_rate):
        sim = Simulator()
        counter = FileCounter(sim, mode)
        rate = measured_rate(sim, counter, increments=100)
        assert rate == pytest.approx(expected_rate, rel=0.01)

    def test_five_orders_of_magnitude_headline(self):
        """The paper's headline claim: file counters are ~1e5x faster than
        platform counters."""
        sim = Simulator()
        platform_rate = measured_rate(
            sim, SGXPlatformCounter(PlatformCounterService(sim), "c"),
            increments=20)
        sim2 = Simulator()
        file_rate = measured_rate(
            sim2, FileCounter(sim2, FileCounterMode.STRICT), increments=100)
        assert file_rate / platform_rate >= 1e5

    def test_encrypted_counter_hidden_in_store(self):
        sim = Simulator()
        store = BlockStore()
        counter = FileCounter(sim, FileCounterMode.ENCRYPTED, store=store)
        measured_rate(sim, counter, increments=7)
        counter.close()
        assert store.scan_for(b"7") == []

    def test_native_counter_visible_in_store(self):
        sim = Simulator()
        store = BlockStore()
        counter = FileCounter(sim, FileCounterMode.NATIVE, store=store)
        measured_rate(sim, counter, increments=7)
        assert store.read(FileCounter.COUNTER_PATH) == b"7"

    def test_strict_mode_pushes_tag_on_close(self):
        sim = Simulator()
        tags = []
        counter = FileCounter(sim, FileCounterMode.STRICT,
                              tag_listener=tags.append)
        measured_rate(sim, counter, increments=3)
        counter.close()
        assert len(tags) == 1

    def test_encrypted_mode_does_not_push_tags(self):
        sim = Simulator()
        tags = []
        counter = FileCounter(sim, FileCounterMode.ENCRYPTED,
                              tag_listener=tags.append)
        measured_rate(sim, counter, increments=3)
        counter.close()
        assert tags == []

    def test_rollback_attack_on_strict_counter_detected(self):
        """Restore an old volume snapshot; the tag no longer matches."""
        from repro.errors import TagMismatchError
        from repro.fs.shield import ProtectedFileSystem

        sim = Simulator()
        store = BlockStore()
        tags = []
        rng_seed = b"rollback-counter"
        counter = FileCounter(sim, FileCounterMode.STRICT, store=store,
                              rng=DeterministicRandom(rng_seed),
                              tag_listener=tags.append)
        measured_rate(sim, counter, increments=2)
        counter.close()
        checkpoint = store.snapshot()
        measured_rate(sim, counter, increments=3)
        counter.close()
        expected_tag = tags[-1]

        store.restore(checkpoint)  # attacker rolls the volume back
        remounted = ProtectedFileSystem(
            store, DeterministicRandom(rng_seed).fork(b"fs-key").bytes(32),
            DeterministicRandom(b"other"))
        with pytest.raises(TagMismatchError):
            remounted.verify_tag(expected_tag)
