"""Key-management systems: Barbican, BarbiE, and Vault (Figs 14-15).

Both KMSs are functional: secrets are stored encrypted under a master key
and retrieved by token-authenticated clients. The performance distinctions
the paper measures:

- **Barbican** (Fig 14) — an interpreted CPython service. Three variants:
  native (simple crypto plugin), PALAEMON-hardened (whole service in the
  enclave; syscall-shield overhead), and BarbiE (only a small SGX "HSM"
  enclave; fewer exits, less EPC pressure — *faster* than native thanks to
  its compiled TCB). The post-Foreshadow microcode's L1 flush on exit costs
  the PALAEMON variant ~30% but barely touches BarbiE.
- **Vault** (Fig 15) — a Go service needing a 1.9 GB heap; in hardware mode
  the enclave far exceeds the EPC, so paging brings throughput to 61% of
  native (82% in EMU, where no paging happens).
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Generator, Optional

from repro import calibration
from repro.apps.base import SimulatedServer, fractions_for
from repro.crypto.primitives import DeterministicRandom
from repro.crypto.symmetric import SecretBox
from repro.errors import AccessDeniedError
from repro.sim.core import Event, Simulator
from repro.tee.enclave import ExecutionMode
from repro.tee.epc import EnclavePageCache


class _EncryptedSecretStore:
    """Shared functional core: token-authenticated encrypted secrets."""

    def __init__(self, rng: DeterministicRandom) -> None:
        self._box = SecretBox(rng.fork(b"master-key").bytes(32),
                              rng.fork(b"nonces"))
        self._secrets: Dict[str, bytes] = {}
        self._tokens: Dict[str, str] = {}  # token -> principal

    def issue_token(self, principal: str, rng: DeterministicRandom) -> str:
        token = rng.bytes(16).hex()
        self._tokens[token] = principal
        return token

    def authenticate(self, token: str) -> str:
        try:
            return self._tokens[token]
        except KeyError:
            raise AccessDeniedError("invalid token") from None

    def store(self, token: str, name: str, value: bytes) -> None:
        self.authenticate(token)
        self._secrets[name] = self._box.seal(value,
                                             associated_data=name.encode())

    def retrieve(self, token: str, name: str) -> bytes:
        self.authenticate(token)
        sealed = self._secrets.get(name)
        if sealed is None:
            raise KeyError(name)
        return self._box.open(sealed, associated_data=name.encode())

    def __len__(self) -> int:
        return len(self._secrets)


class BarbicanVariant(enum.Enum):
    """The Fig 14 contenders."""

    NATIVE = "native"
    PALAEMON_HW = "palaemon-hw"
    BARBIE = "barbie"


class BarbicanServer(SimulatedServer):
    """Barbican: an interpreted-Python KMS."""

    def __init__(self, simulator: Simulator, variant: BarbicanVariant,
                 rng: Optional[DeterministicRandom] = None,
                 microcode: calibration.MicrocodeLevel = (
                     calibration.MICROCODE_PRE_SPECTRE)) -> None:
        mode_fractions = {mode: 1.0 for mode in ExecutionMode}
        # Barbican's interpreted request path is effectively serial: one
        # worker at ~36 ms/request reproduces both the ~28 req/s native peak
        # and the sub-100 ms latency range of Fig 14.
        super().__init__(simulator, "barbican",
                         native_peak_rps=calibration.BARBICAN_NATIVE_PEAK_RPS,
                         mode_fractions=mode_fractions,
                         threads=1,
                         microcode=microcode)
        self.variant = variant
        self.secrets = _EncryptedSecretStore(
            rng or DeterministicRandom(b"barbican"))

    def peak_rps(self) -> float:
        """Variant- and microcode-dependent saturation throughput."""
        if self.variant is BarbicanVariant.NATIVE:
            return calibration.BARBICAN_NATIVE_PEAK_RPS
        if self.variant is BarbicanVariant.BARBIE:
            peak = calibration.BARBIE_PEAK_RPS
            if self.microcode.flushes_l1_on_exit:
                peak *= calibration.BARBIE_MICROCODE_PENALTY_FACTOR
            return peak
        peak = calibration.BARBICAN_PALAEMON_PEAK_RPS
        if self.microcode.flushes_l1_on_exit:
            peak *= calibration.MICROCODE_PENALTY_FACTOR
        return peak

    def service_seconds(self, _mode: ExecutionMode = ExecutionMode.NATIVE,
                        ) -> float:
        return self.threads / self.peak_rps()

    def handle_store(self, token: str, name: str,
                     value: bytes) -> Generator[Event, Any, None]:
        yield self.simulator.process(self.serve(ExecutionMode.NATIVE))
        self.secrets.store(token, name, value)

    def handle_retrieve(self, token: str,
                        name: str) -> Generator[Event, Any, bytes]:
        yield self.simulator.process(self.serve(ExecutionMode.NATIVE))
        return self.secrets.retrieve(token, name)


class VaultServer(SimulatedServer):
    """Vault: a compiled KMS with a 1.9 GB heap (EPC-paging showcase)."""

    HEAP_BYTES = int(1.9 * calibration.GB)

    def __init__(self, simulator: Simulator,
                 mode: ExecutionMode = ExecutionMode.NATIVE,
                 epc: Optional[EnclavePageCache] = None,
                 rng: Optional[DeterministicRandom] = None) -> None:
        super().__init__(simulator, "vault",
                         native_peak_rps=calibration.VAULT_NATIVE_PEAK_RPS,
                         mode_fractions=fractions_for(
                             hw=calibration.VAULT_HW_FRACTION,
                             emu=calibration.VAULT_EMU_FRACTION))
        self.mode = mode
        self.epc = epc
        self.secrets = _EncryptedSecretStore(
            rng or DeterministicRandom(b"vault"))

    def exceeds_epc(self) -> bool:
        """The defining property: the heap dwarfs the EPC."""
        if self.epc is None:
            return self.HEAP_BYTES > calibration.EPC_SIZE_DEFAULT
        return self.HEAP_BYTES > self.epc.usable_bytes

    def handle_retrieve(self, token: str,
                        name: str) -> Generator[Event, Any, bytes]:
        yield self.simulator.process(self.serve(self.mode))
        return self.secrets.retrieve(token, name)

    def handle_store(self, token: str, name: str,
                     value: bytes) -> Generator[Event, Any, None]:
        yield self.simulator.process(self.serve(self.mode))
        self.secrets.store(token, name, value)
