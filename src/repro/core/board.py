"""Policy boards: quorum approval over every policy access (§III-C).

Every CRUD access to a board-governed policy becomes an
:class:`AccessRequest` that PALAEMON sends to each member's *approval
service* over TLS. Members return signed :class:`Verdict`\\ s; PALAEMON
verifies each signature against the member certificate embedded in the
policy, then applies the decision rule:

- any **veto** member rejecting kills the request outright;
- otherwise the request passes iff at least ``threshold`` (= f+1) members
  approve.

Forged verdicts (bad signatures) count as no vote at all, so a Byzantine
network cannot manufacture approvals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro import calibration
from repro.core.policy import BoardSpec, PolicyBoardMember
from repro.crypto.certificates import Certificate
from repro.crypto.primitives import sha256
from repro.crypto.signatures import KeyPair, verify_signature
from repro.errors import ApprovalDeniedError, SignatureError, VetoError
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.core import Event, Simulator
from repro.sim.network import Site, rtt_between
from repro.tls.handshake import handshake_latency


@dataclass(frozen=True)
class AccessRequest:
    """A policy access awaiting board approval."""

    policy_name: str
    operation: str  # "create" | "read" | "update" | "delete"
    requester_fingerprint: bytes
    #: Digest of the proposed change (update/create) for members to inspect.
    change_digest: bytes = b""
    nonce: bytes = b""

    def to_bytes(self) -> bytes:
        return (b"access-request-v1" + self.policy_name.encode() + b"|"
                + self.operation.encode() + b"|"
                + self.requester_fingerprint + self.change_digest + self.nonce)


@dataclass(frozen=True)
class Verdict:
    """One member's signed decision on an access request."""

    member_name: str
    request_digest: bytes
    approve: bool
    signature: bytes

    def signed_payload(self) -> bytes:
        return (b"verdict-v1" + self.member_name.encode() + b"|"
                + self.request_digest + (b"\x01" if self.approve else b"\x00"))

    def verify(self, certificate: Certificate) -> None:
        """Check the verdict was signed by the member's certified key."""
        if not verify_signature(certificate.public_key, self.signed_payload(),
                                self.signature):
            raise SignatureError(
                f"verdict from {self.member_name!r} has a bad signature")


#: A member's decision logic: inspects a request, returns approve/reject.
DecisionRule = Callable[[AccessRequest], bool]


def approve_everything(_request: AccessRequest) -> bool:
    """The default cooperative decision rule."""
    return True


class ApprovalService:
    """A board member's approval service.

    Usually runs inside a TEE (§III-C); the service time difference between
    TEE and native variants is the subject of Fig 13 (left). The decision
    rule models what the member checks — source-review outcomes, two-factor
    prompts, or organisational validation are all just predicates here.
    """

    def __init__(self, simulator: Simulator, member_name: str,
                 keys: KeyPair, site: Site = Site.SAME_RACK,
                 decision_rule: DecisionRule = approve_everything,
                 in_tee: bool = True, use_tls: bool = True) -> None:
        self.simulator = simulator
        self.member_name = member_name
        self._keys = keys
        self.site = site
        self.decision_rule = decision_rule
        self.in_tee = in_tee
        self.use_tls = use_tls
        self.requests_decided = 0
        #: Members may go offline; requests to them simply never answer.
        self.online = True

    @property
    def service_seconds(self) -> float:
        base = (calibration.APPROVAL_TEE_TLS_SERVICE_SECONDS if self.in_tee
                else calibration.APPROVAL_NATIVE_SERVICE_SECONDS)
        if not self.use_tls:
            base = max(0.0, base - calibration.APPROVAL_TLS_EXTRA_SECONDS)
        return base

    def decide_local(self, request: AccessRequest) -> Verdict:
        """Decide without simulating time (functional tests)."""
        approve = bool(self.decision_rule(request))
        self.requests_decided += 1
        verdict = Verdict(member_name=self.member_name,
                          request_digest=sha256(request.to_bytes()),
                          approve=approve, signature=b"")
        signature = self._keys.sign(verdict.signed_payload())
        return Verdict(member_name=verdict.member_name,
                       request_digest=verdict.request_digest,
                       approve=verdict.approve, signature=signature)

    def decide(self, request: AccessRequest, caller_site: Site,
               ) -> Generator[Event, Any, Optional[Verdict]]:
        """Decide with network + service latency; ``None`` if offline."""
        if not self.online:
            return None
        round_trip = rtt_between(caller_site, self.site)
        if self.use_tls:
            round_trip += handshake_latency(caller_site, self.site)
        yield self.simulator.timeout(round_trip + self.service_seconds)
        return self.decide_local(request)


class TwoFactorApprovalService(ApprovalService):
    """An approval service for a *person* board member (§III-C).

    "In case the associated board member is a person, they should perform
    a two-factor authentication" — here: the member's signing key (factor
    one) plus a fresh time-windowed code derived from an enrolled device
    secret (factor two, TOTP-shaped). Without a currently valid code the
    service abstains: it neither approves nor rejects, so a stolen signing
    key alone cannot vote.
    """

    #: Validity window of one second-factor code (seconds).
    CODE_WINDOW_SECONDS = 30.0

    def __init__(self, simulator: Simulator, member_name: str,
                 keys: KeyPair, device_secret: bytes,
                 site: Site = Site.SAME_RACK,
                 decision_rule: DecisionRule = approve_everything) -> None:
        super().__init__(simulator, member_name, keys, site=site,
                         decision_rule=decision_rule, in_tee=True,
                         use_tls=True)
        self._device_secret = device_secret
        self._presented_code: Optional[bytes] = None

    def expected_code(self, now: float) -> bytes:
        """The device's code for the current time window."""
        window = int(now / self.CODE_WINDOW_SECONDS)
        return sha256(self._device_secret,
                      window.to_bytes(8, "big"))[:6]

    def present_code(self, code: bytes) -> None:
        """The person types the code from their device."""
        self._presented_code = code

    def decide_local(self, request: AccessRequest) -> Optional[Verdict]:
        code = self._presented_code
        self._presented_code = None  # single use
        if code != self.expected_code(self.simulator.now):
            return None  # abstain: second factor missing or stale
        return super().decide_local(request)


@dataclass
class ApprovalOutcome:
    """The aggregated result of a board round."""

    approvals: List[Verdict] = field(default_factory=list)
    rejections: List[Verdict] = field(default_factory=list)
    invalid: List[Verdict] = field(default_factory=list)
    unreachable: List[str] = field(default_factory=list)


class BoardEvaluator:
    """Collects member verdicts and applies the quorum/veto rule.

    Every vote cast in a round is counted into the evaluator's telemetry
    (``palaemon_board_votes_total`` by verdict class); a
    :class:`~repro.core.service.PalaemonService` sharing its telemetry with
    its evaluator therefore observes the full quorum traffic.
    """

    def __init__(self, simulator: Simulator,
                 services: Dict[str, ApprovalService],
                 telemetry: Optional[Telemetry] = None) -> None:
        self.simulator = simulator
        self._services = services
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    def service_for(self, member: PolicyBoardMember) -> ApprovalService:
        try:
            return self._services[member.approval_endpoint]
        except KeyError:
            raise ApprovalDeniedError(
                f"no approval service at {member.approval_endpoint!r}"
            ) from None

    def evaluate_local(self, board: BoardSpec,
                       request: AccessRequest) -> ApprovalOutcome:
        """Run a board round without simulating time."""
        outcome = ApprovalOutcome()
        for member in board.members:
            service = self._services.get(member.approval_endpoint)
            if service is None or not service.online:
                outcome.unreachable.append(member.name)
                continue
            verdict = service.decide_local(request)
            if verdict is None:
                # Abstention (e.g. a person's second factor is missing).
                outcome.unreachable.append(member.name)
                continue
            self._classify(member, verdict, outcome)
        self._record_round(outcome)
        return outcome

    def evaluate(self, board: BoardSpec, request: AccessRequest,
                 caller_site: Site = Site.SAME_RACK,
                 ) -> Generator[Event, Any, ApprovalOutcome]:
        """Run a board round with member queries in parallel over TLS."""
        outcome = ApprovalOutcome()
        waits = []
        members = []
        for member in board.members:
            service = self._services.get(member.approval_endpoint)
            if service is None:
                outcome.unreachable.append(member.name)
                continue
            members.append(member)
            waits.append(self.simulator.process(
                service.decide(request, caller_site),
                name=f"approval-{member.name}"))
        with self.telemetry.span("board.evaluate",
                                 policy=request.policy_name,
                                 operation=request.operation):
            started = self.simulator.now
            verdicts = yield self.simulator.all_of(waits)
            self.telemetry.observe("palaemon_board_round_seconds",
                                   self.simulator.now - started)
        for member, verdict in zip(members, verdicts):
            if verdict is None:
                outcome.unreachable.append(member.name)
            else:
                self._classify(member, verdict, outcome)
        self._record_round(outcome)
        return outcome

    def _record_round(self, outcome: ApprovalOutcome) -> None:
        """Count the round's votes by verdict class."""
        for vote, entries in (("approve", outcome.approvals),
                              ("reject", outcome.rejections),
                              ("invalid", outcome.invalid),
                              ("unreachable", outcome.unreachable)):
            if entries:
                self.telemetry.inc("palaemon_board_votes_total",
                                   amount=len(entries), vote=vote)

    @staticmethod
    def _classify(member: PolicyBoardMember, verdict: Verdict,
                  outcome: ApprovalOutcome) -> None:
        try:
            verdict.verify(member.certificate)
        except SignatureError:
            outcome.invalid.append(verdict)
            return
        if verdict.approve:
            outcome.approvals.append(verdict)
        else:
            outcome.rejections.append(verdict)

    @staticmethod
    def enforce(board: BoardSpec, request: AccessRequest,
                outcome: ApprovalOutcome) -> None:
        """Apply the veto + threshold rule; raises on denial."""
        rejecting_names = {verdict.member_name
                           for verdict in outcome.rejections}
        for member in board.members:
            if member.veto and member.name in rejecting_names:
                raise VetoError(
                    f"board member {member.name!r} vetoed "
                    f"{request.operation} on policy {request.policy_name!r}")
        if len(outcome.approvals) < board.threshold:
            raise ApprovalDeniedError(
                f"{request.operation} on policy {request.policy_name!r} got "
                f"{len(outcome.approvals)} approvals, "
                f"needs {board.threshold}")
