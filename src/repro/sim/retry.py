"""Capped exponential backoff with deterministic jitter.

Before this layer existed, every networked path in the reproduction sent
once and waited forever — an injected fault deadlocked the simulation
instead of exercising a recovery path. :class:`RetryPolicy` is the one
reusable answer: a frozen description of *how hard to try* that turns a
fallible simulation process into a bounded-recovery process.

Design points:

- **Deterministic jitter** — the jitter multiplier draws from a
  :class:`~repro.crypto.primitives.DeterministicRandom` supplied by the
  caller, so two runs with the same seed back off identically and the
  recovery summary is byte-identical.
- **Per-attempt timeout** — each attempt is wrapped in
  :meth:`Simulator.with_timeout`, so a dropped message fails the attempt
  with :class:`DeadlineExceededError` instead of hanging; the abandoned
  attempt process is interrupted so it can cancel its mailbox getters
  (see :meth:`repro.sim.resources.Store.cancel`).
- **Typed retryability** — only exceptions in ``retry_on`` are retried;
  anything else (an :class:`AccessDeniedError`, a rollback detection) is
  a *verdict*, not a fault, and propagates immediately.
- **Telemetry** — every retry and giveup lands in
  ``palaemon_retries_total`` (labels ``operation``/``outcome``) and
  giveups append a ``retry.giveup`` audit record before raising
  :class:`RetryExhaustedError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Tuple, Type

from repro.crypto.primitives import DeterministicRandom
from repro.errors import (
    CounterUnavailableError,
    DeadlineExceededError,
    NetworkError,
    RetryExhaustedError,
    StorageFaultError,
)
from repro.sim.core import Event, Simulator

#: Exception types that signal a transient fault worth retrying. Security
#: verdicts (attestation failures, access denials, rollback detections)
#: are deliberately absent: retrying those would be wrong, not slow.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    DeadlineExceededError,
    CounterUnavailableError,
    StorageFaultError,
    NetworkError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try: attempts, backoff shape, and per-attempt deadline.

    The delay before attempt ``n+1`` is
    ``min(base_delay * multiplier**n, max_delay)`` scaled by a
    deterministic jitter in ``[1, 1 + jitter_fraction)``.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter_fraction: float = 0.1
    attempt_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if self.jitter_fraction < 0:
            raise ValueError("jitter_fraction must be non-negative")

    def backoff_delay(self, attempt: int, rng: DeterministicRandom) -> float:
        """Delay after failed attempt number ``attempt`` (0-based)."""
        delay = min(self.base_delay * self.multiplier ** attempt,
                    self.max_delay)
        if self.jitter_fraction > 0:
            delay *= 1.0 + self.jitter_fraction * rng.random()
        return delay

    def call(self, simulator: Simulator,
             attempt_factory: Callable[[], Generator[Event, Any, Any]],
             rng: DeterministicRandom, *,
             operation: str = "operation",
             retry_on: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE,
             telemetry=None,
             ) -> Generator[Event, Any, Any]:
        """Run ``attempt_factory()`` as a process until one attempt wins.

        ``attempt_factory`` must return a *fresh* generator per call —
        a generator can only run once, and every retry is a new attempt.
        Raises :class:`RetryExhaustedError` (chaining the last failure)
        when the budget runs out.
        """
        if telemetry is None:
            # Imported lazily: repro.obs imports repro.sim.metrics, so a
            # module-level import here would be circular.
            from repro.obs.telemetry import NULL_TELEMETRY
            telemetry = NULL_TELEMETRY
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            if attempt:
                yield simulator.timeout(self.backoff_delay(attempt - 1, rng))
            target: Event = simulator.process(
                attempt_factory(), name=f"{operation}#{attempt + 1}")
            if self.attempt_timeout is not None:
                target = simulator.with_timeout(target, self.attempt_timeout)
            try:
                value = yield target
            except retry_on as exc:
                last_error = exc
                telemetry.inc("palaemon_retries_total", operation=operation,
                              outcome="retry")
                continue
            if attempt:
                telemetry.inc("palaemon_retries_total", operation=operation,
                              outcome="recovered")
            return value
        telemetry.inc("palaemon_retries_total", operation=operation,
                      outcome="giveup")
        telemetry.audit(
            "retry.giveup", operation=operation, attempts=self.max_attempts,
            error=type(last_error).__name__ if last_error else "unknown")
        raise RetryExhaustedError(
            f"{operation!r} failed after {self.max_attempts} attempts: "
            f"{last_error}", attempts=self.max_attempts,
            last_error=last_error) from last_error


#: A policy that tries exactly once with no deadline — the pre-retry
#: behaviour, kept for regression tests demonstrating the deadlock.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, jitter_fraction=0.0)
