"""Primary/backup fail-over for PALAEMON (the paper's "ongoing work").

The paper's rollback protection (§IV-D) deliberately trades availability
for freshness: a crash leaves the database version behind the monotonic
counter, so the crashed instance can never restart — "for any unscheduled
outage, we expect that we need to perform a fail-over to another PALAEMON
service instance anyhow." This module implements that fail-over path while
preserving the freshness guarantee:

- the primary streams sequenced state updates to a backup instance on a
  different platform (each with its *own* monotonic counter — counters
  never move between machines);
- on primary failure, an operator *promotes* the backup, which replays to
  the last acknowledged sequence number and starts serving under its own
  counter;
- a fenced (crashed or demoted) primary can never serve again: its own
  counter protocol refuses, and peers drop its epoch.

Freshness across fail-over is bounded by the replication acknowledgement:
promotion only exposes state the backup had durably applied, and the
promotion epoch increments so stale primaries are fenced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List

from repro.core.service import PalaemonService
from repro.errors import PolicyError, RollbackDetectedError
from repro.sim.core import Event, Simulator
from repro.sim.network import Site, rtt_between


@dataclass(frozen=True)
class StateUpdate:
    """One sequenced replication record (a tag update, policy write, ...)."""

    sequence: int
    table: str
    key: str
    value: Any


@dataclass
class ReplicaState:
    """The backup's view of the replication stream."""

    applied_sequence: int = 0
    updates: List[StateUpdate] = field(default_factory=list)


class FailoverCoordinator:
    """Manages a primary and one synchronous backup."""

    def __init__(self, primary: PalaemonService, backup: PalaemonService,
                 primary_site: Site = Site.SAME_DC,
                 backup_site: Site = Site.SAME_DC) -> None:
        if primary.platform is backup.platform:
            raise PolicyError(
                "backup must run on a different platform (its own counter)")
        self.primary = primary
        self.backup = backup
        self.primary_site = primary_site
        self.backup_site = backup_site
        self.epoch = 1
        self._sequence = 0
        self._replica = ReplicaState()
        self.active: PalaemonService = primary
        self.fenced: List[str] = []

    @property
    def simulator(self) -> Simulator:
        return self.primary.simulator

    # -- replication -------------------------------------------------------

    def replicate(self, table: str, key: str, value: Any,
                  ) -> Generator[Event, Any, int]:
        """Write through the active instance and synchronously replicate.

        Returns the acknowledged sequence number. Costs one round trip to
        the backup — the price of the availability the paper defers.
        """
        if self.active is not self.primary:
            raise PolicyError("replicate() is only valid before promotion")
        self._sequence += 1
        update = StateUpdate(sequence=self._sequence, table=table, key=key,
                             value=value)
        telemetry = self.primary.telemetry
        with telemetry.span("failover.replicate", table=table, key=key):
            started = self.simulator.now
            self.primary.store.put(table, key, value)
            self.primary.store.commit_instant()
            yield self.simulator.timeout(
                rtt_between(self.primary_site, self.backup_site))
            telemetry.observe("palaemon_failover_replication_seconds",
                              self.simulator.now - started)
        self._replica.updates.append(update)
        self._replica.applied_sequence = update.sequence
        telemetry.inc("palaemon_failover_replications_total")
        telemetry.gauge("palaemon_failover_replication_lag",
                        self.replication_lag())
        return update.sequence

    # -- fail-over -----------------------------------------------------------

    def primary_crashed(self) -> None:
        """The primary dies uncleanly: its counter protocol fences it."""
        self.primary.crash()
        self.fenced.append(self.primary.name)
        self.primary.telemetry.inc("palaemon_failover_fences_total")
        self.primary.telemetry.audit("failover.fence",
                                     instance=self.primary.name,
                                     epoch=self.epoch)

    def promote_backup(self) -> Generator[Event, Any, PalaemonService]:
        """Operator-driven promotion: replay, start, bump the epoch."""
        if self.primary.running:
            raise PolicyError("cannot promote while the primary is serving")
        with self.backup.telemetry.span("failover.promote",
                                        backup=self.backup.name):
            for update in self._replica.updates:
                self.backup.store.put(update.table, update.key, update.value)
            self.backup.store.commit_instant()
            if not self.backup.running:
                yield self.simulator.process(self.backup.start())
            self.epoch += 1
            self.active = self.backup
        self.backup.telemetry.inc("palaemon_failover_promotions_total")
        self.backup.telemetry.audit(
            "failover.promote", backup=self.backup.name, epoch=self.epoch,
            replayed=len(self._replica.updates),
            applied_sequence=self._replica.applied_sequence)
        return self.backup

    def verify_primary_fenced(self) -> bool:
        """The old primary can never serve again (crash-as-attack)."""
        if self.primary.name not in self.fenced:
            return False

        def probe() -> Generator[Event, Any, bool]:
            try:
                yield self.simulator.process(self.primary.start(),
                                             name="fenced-restart-probe")
            except RollbackDetectedError:
                return True
            return False

        return self.simulator.run_process(probe(), name="fence-check")

    def replication_lag(self) -> int:
        """Updates the primary has that the backup has not acknowledged."""
        return self._sequence - self._replica.applied_sequence
