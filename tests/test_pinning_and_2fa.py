"""Tests for instance public-key pinning (§IV-B) and two-factor approval
services for human board members (§III-C)."""

import pytest

from repro.core.board import (
    AccessRequest,
    BoardEvaluator,
    TwoFactorApprovalService,
)
from repro.core.client import PalaemonClient
from repro.core.policy import BoardSpec, PolicyBoardMember
from repro.crypto.certificates import self_signed_certificate
from repro.crypto.primitives import DeterministicRandom
from repro.crypto.signatures import KeyPair
from repro.errors import ApprovalDeniedError, AttestationError
from repro.sim.core import Simulator

from tests.core.conftest import Deployment


@pytest.fixture()
def deployment():
    return Deployment(seed=b"pinning-2fa")


class TestPublicKeyPinning:
    def test_pinned_instance_accepted(self, deployment):
        client = PalaemonClient("pinning", DeterministicRandom(b"pin"))
        client.attest_instance_pinned(
            deployment.palaemon,
            pinned_keys=frozenset({deployment.palaemon.public_key}),
            ca_root=deployment.ca.root_public_key,
            now=deployment.simulator.now)
        assert deployment.palaemon.name in client.attested_instances

    def test_unpinned_instance_rejected_despite_valid_ca_cert(self,
                                                              deployment):
        """A genuine, CA-certified instance is still refused if it is not
        in the client's pinned set."""
        other_keys = KeyPair.generate(DeterministicRandom(b"elsewhere"),
                                      bits=512)
        client = PalaemonClient("pinning", DeterministicRandom(b"pin"))
        with pytest.raises(AttestationError, match="pinned set"):
            client.attest_instance_pinned(
                deployment.palaemon,
                pinned_keys=frozenset({other_keys.public}),
                ca_root=deployment.ca.root_public_key,
                now=deployment.simulator.now)
        assert deployment.palaemon.name not in client.attested_instances

    def test_pinning_does_not_bypass_ca_check(self, deployment):
        """Pinned but uncertified is still refused: both factors required."""
        from repro.core.service import PalaemonService
        from repro.fs.blockstore import BlockStore

        uncertified = PalaemonService(deployment.platform,
                                      BlockStore("uncertified"),
                                      DeterministicRandom(b"uncert"),
                                      name="uncertified")
        client = PalaemonClient("pinning", DeterministicRandom(b"pin"))
        with pytest.raises(AttestationError, match="no CA certificate"):
            client.attest_instance_pinned(
                uncertified,
                pinned_keys=frozenset({uncertified.public_key}),
                ca_root=deployment.ca.root_public_key,
                now=deployment.simulator.now)


def make_2fa_board(sim, threshold=1):
    rng = DeterministicRandom(b"2fa-board")
    keys = KeyPair.generate(rng.fork(b"alice"), bits=512)
    device_secret = rng.fork(b"device").bytes(32)
    service = TwoFactorApprovalService(sim, "alice", keys,
                                       device_secret=device_secret)
    member = PolicyBoardMember(
        name="alice", certificate=self_signed_certificate("alice", keys),
        approval_endpoint="ep-alice")
    board = BoardSpec(members=(member,), threshold=threshold)
    evaluator = BoardEvaluator(sim, {"ep-alice": service})
    return board, evaluator, service


def request():
    return AccessRequest(policy_name="p", operation="update",
                         requester_fingerprint=b"\x01" * 16,
                         nonce=b"\x02" * 16)


class TestTwoFactorApproval:
    def test_without_code_member_abstains(self):
        sim = Simulator()
        board, evaluator, _service = make_2fa_board(sim)
        outcome = evaluator.evaluate_local(board, request())
        assert outcome.unreachable == ["alice"]
        with pytest.raises(ApprovalDeniedError):
            BoardEvaluator.enforce(board, request(), outcome)

    def test_with_fresh_code_member_votes(self):
        sim = Simulator()
        board, evaluator, service = make_2fa_board(sim)
        service.present_code(service.expected_code(sim.now))
        outcome = evaluator.evaluate_local(board, request())
        assert len(outcome.approvals) == 1
        BoardEvaluator.enforce(board, request(), outcome)

    def test_code_is_single_use(self):
        sim = Simulator()
        board, evaluator, service = make_2fa_board(sim)
        service.present_code(service.expected_code(sim.now))
        evaluator.evaluate_local(board, request())
        # Second round without re-presenting: abstains again.
        outcome = evaluator.evaluate_local(board, request())
        assert outcome.unreachable == ["alice"]

    def test_stale_code_rejected(self):
        sim = Simulator()
        board, evaluator, service = make_2fa_board(sim)
        stale = service.expected_code(sim.now)
        sim.now += 2 * TwoFactorApprovalService.CODE_WINDOW_SECONDS
        service.present_code(stale)
        outcome = evaluator.evaluate_local(board, request())
        assert outcome.unreachable == ["alice"]

    def test_wrong_code_rejected(self):
        sim = Simulator()
        board, evaluator, service = make_2fa_board(sim)
        service.present_code(b"\x00" * 6)
        outcome = evaluator.evaluate_local(board, request())
        assert outcome.unreachable == ["alice"]

    def test_stolen_signing_key_alone_cannot_vote(self):
        """The point of the second factor: the signing key without the
        device produces no countable verdict — the attacker can forge a
        signature, but forged verdicts require the *service* flow, and the
        service abstains without the code."""
        sim = Simulator()
        board, evaluator, service = make_2fa_board(sim)
        # Attacker has the key (can sign), but the member's approval
        # service holds the decision path and abstains without the code.
        outcome = evaluator.evaluate_local(board, request())
        assert not outcome.approvals
        with pytest.raises(ApprovalDeniedError):
            BoardEvaluator.enforce(board, request(), outcome)

    def test_code_changes_across_windows(self):
        sim = Simulator()
        _board, _evaluator, service = make_2fa_board(sim)
        now_code = service.expected_code(0.0)
        later_code = service.expected_code(
            TwoFactorApprovalService.CODE_WINDOW_SECONDS + 1)
        assert now_code != later_code
