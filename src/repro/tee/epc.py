"""The Enclave Page Cache (EPC).

Two properties of the real EPC shape the paper's results and are modelled
here:

1. **Capacity** — the evaluation cluster reserves 128 MB; enclaves whose
   working set exceeds it page against main memory with an encryption cost
   per fault (Vault's 1.9 GB heap, MariaDB's large buffer pools).
2. **The driver's global allocation lock** — EPC page (de)allocation is
   serialized by a single lock in the SGX driver, which caps concurrent
   enclave startups at ~100/s no matter how many cores are present (Fig 9).
"""

from __future__ import annotations

from typing import Any, Generator

from repro import calibration
from repro.errors import EnclaveError
from repro.sim.core import Event, Simulator
from repro.sim.resources import SimLock


class EnclavePageCache:
    """EPC accounting plus the driver-global allocation lock."""

    def __init__(self, simulator: Simulator,
                 size_bytes: int = calibration.EPC_SIZE_DEFAULT,
                 usable_fraction: float = calibration.EPC_USABLE_FRACTION,
                 ) -> None:
        self.simulator = simulator
        self.size_bytes = size_bytes
        self.usable_bytes = int(size_bytes * usable_fraction)
        self.allocated_bytes = 0
        self.driver_lock = SimLock(simulator, name="sgx-driver-epc-lock")
        self.page_faults = 0
        self.evicted_bytes = 0

    @property
    def free_bytes(self) -> int:
        return max(0, self.usable_bytes - self.allocated_bytes)

    def overcommitment(self, enclave_bytes: int) -> float:
        """How much of an enclave's footprint exceeds the free EPC (0..1)."""
        if enclave_bytes <= 0:
            return 0.0
        excess = enclave_bytes - self.free_bytes
        return max(0.0, min(1.0, excess / enclave_bytes))

    def allocate(self, nbytes: int,
                 hold_driver_lock_seconds: float = 0.0,
                 ) -> Generator[Event, Any, int]:
        """Allocate pages under the driver lock; returns bytes evicted.

        If the request exceeds free EPC, older pages are evicted (their cost
        is charged by the caller using :data:`calibration.PAGE_EVICTION_BPS`).
        """
        if nbytes < 0:
            raise EnclaveError("cannot allocate negative bytes")
        yield self.driver_lock.acquire()
        try:
            if hold_driver_lock_seconds > 0:
                yield self.simulator.timeout(hold_driver_lock_seconds)
            evicted = 0
            if nbytes > self.free_bytes:
                evicted = nbytes - self.free_bytes
                self.allocated_bytes = max(0, self.allocated_bytes - evicted)
                self.evicted_bytes += evicted
            self.allocated_bytes += nbytes
            return evicted
        finally:
            self.driver_lock.release()

    def free(self, nbytes: int) -> None:
        """Return pages to the EPC (enclave teardown)."""
        if nbytes < 0:
            raise EnclaveError("cannot free negative bytes")
        self.allocated_bytes = max(0, self.allocated_bytes - nbytes)

    def fault_penalty_seconds(self, enclave_bytes: int,
                              touched_bytes: int) -> float:
        """Expected paging cost for touching ``touched_bytes`` of an enclave.

        The fraction of the enclave's pages that cannot reside in the EPC
        fault at :data:`calibration.EPC_PAGE_FAULT_SECONDS` each.
        """
        over = self.overcommitment(enclave_bytes)
        if over == 0.0:
            return 0.0
        faulting_pages = (touched_bytes * over) / calibration.PAGE_SIZE
        self.page_faults += int(faulting_pages)
        return faulting_pages * calibration.EPC_PAGE_FAULT_SECONDS
