"""Tracing spans on the simulator clock.

A :class:`Span` is one timed operation (a policy create, a board round, a
TLS handshake); spans nest via an explicit stack, so a board round started
while serving ``policy.create`` becomes its child. All timestamps come
from the clock the :class:`Tracer` was constructed with — in practice
``Simulator.now`` — never from the wall clock, so two runs with the same
seed produce byte-identical traces and a recorded trace can be replayed
and diffed.

Span ids are sequence numbers assigned at start, which keeps them
deterministic as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


@dataclass
class Span:
    """One traced operation: name, interval, attributes, annotations."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    attributes: Dict[str, str] = field(default_factory=dict)
    annotations: List[Tuple[float, str]] = field(default_factory=list)
    end: Optional[float] = None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} has not finished")
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attributes": dict(self.attributes),
            "annotations": [list(a) for a in self.annotations],
        }


class _SpanHandle:
    """Context manager binding one span to a tracer's stack."""

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def annotate(self, message: str) -> None:
        self.span.annotations.append((self._tracer.now, str(message)))

    def set_attribute(self, key: str, value: str) -> None:
        self.span.attributes[str(key)] = str(value)

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc is not None:
            self.span.attributes.setdefault("error", type(exc).__name__)
        self._tracer.finish(self.span)


class Tracer:
    """Creates, nests, and retains spans against an injected clock."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._next_id = 1
        self._stack: List[Span] = []
        self.finished: List[Span] = []

    @property
    def now(self) -> float:
        return self._clock()

    def span(self, name: str, **attributes: str) -> _SpanHandle:
        """Start a child of the innermost open span (or a root span)."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            span_id=self._next_id, parent_id=parent, name=name,
            start=self.now,
            attributes={str(k): str(v) for k, v in attributes.items()})
        self._next_id += 1
        self._stack.append(span)
        return _SpanHandle(self, span)

    def finish(self, span: Span) -> None:
        if span.end is not None:
            return
        span.end = self.now
        # Unwind to (and including) the span; handles mismatched exits.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self.finished.append(span)

    def open_depth(self) -> int:
        return len(self._stack)
