"""A PESOS-style replicated object store (§V-A).

The paper protects PALAEMON's storage backend against manipulation with
Merkle trees + counters, and delegates *availability and durability* to "a
trusted object storage like PESOS". This module provides that backend: an
object store replicated across N nodes with write-quorum durability and
read repair, exposing the same interface as :class:`BlockStore` so a
PALAEMON volume can sit on it transparently.

Integrity still comes from the layers above (everything stored here is
ciphertext + authenticated metadata); what this adds is surviving node
loss without losing the database — the availability half the single-volume
deployment gives up.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.fs.blockstore import BlockStore


class _StorageNode:
    """One replica: a versioned object map."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.objects: Dict[str, Tuple[int, bytes]] = {}  # path -> (ver, data)
        self.alive = True

    def put(self, path: str, version: int, data: bytes) -> bool:
        if not self.alive:
            return False
        current = self.objects.get(path)
        if current is not None and current[0] >= version:
            return False  # stale write
        self.objects[path] = (version, data)
        return True

    def get(self, path: str) -> Optional[Tuple[int, bytes]]:
        if not self.alive:
            return None
        return self.objects.get(path)

    def remove(self, path: str, version: int) -> bool:
        if not self.alive:
            return False
        self.objects[path] = (version, b"")  # tombstone
        return True


class ReplicatedObjectStore:
    """A quorum-replicated object store with the BlockStore interface.

    Writes succeed once a majority of replicas acknowledge; reads return
    the highest-versioned copy among a majority and repair stale replicas
    in passing. With ``2f+1`` nodes, ``f`` crash failures are tolerated.
    """

    def __init__(self, nodes: int = 3, name: str = "object-store") -> None:
        if nodes < 3 or nodes % 2 == 0:
            raise ValueError("node count must be an odd number >= 3")
        self.name = name
        self.nodes: List[_StorageNode] = [_StorageNode(i)
                                          for i in range(nodes)]
        self._versions: Dict[str, int] = {}
        self.write_count = 0
        self.read_count = 0

    @property
    def quorum(self) -> int:
        return len(self.nodes) // 2 + 1

    def fail_node(self, node_id: int) -> None:
        self.nodes[node_id].alive = False

    def recover_node(self, node_id: int) -> None:
        self.nodes[node_id].alive = True

    def _next_version(self, path: str) -> int:
        self._versions[path] = self._versions.get(path, 0) + 1
        return self._versions[path]

    # -- BlockStore interface ----------------------------------------------

    def write(self, path: str, data: bytes) -> None:
        version = self._next_version(path)
        acks = sum(1 for node in self.nodes if node.put(path, version, data))
        self.write_count += 1
        if acks < self.quorum:
            raise NetworkError(
                f"write quorum lost: {acks}/{self.quorum} acks")

    def read(self, path: str) -> bytes:
        self.read_count += 1
        copies = [(node, node.get(path)) for node in self.nodes]
        live = [(node, copy) for node, copy in copies if copy is not None]
        if len(live) < self.quorum:
            if not any(node.alive for node in self.nodes):
                raise NetworkError("no live replicas")
        best_version, best_data = -1, None
        for _node, (version, data) in live:
            if version > best_version:
                best_version, best_data = version, data
        if best_data is None or best_data == b"":
            raise FileNotFoundError(path)
        # Read repair: push the freshest copy to stale live replicas.
        for node, copy in copies:
            if node.alive and (copy is None or copy[0] < best_version):
                node.put(path, best_version, best_data)
        return best_data

    def delete(self, path: str) -> None:
        try:
            self.read(path)
        except FileNotFoundError:
            raise
        version = self._next_version(path)
        acks = sum(1 for node in self.nodes if node.remove(path, version))
        if acks < self.quorum:
            raise NetworkError(
                f"delete quorum lost: {acks}/{self.quorum} acks")

    def exists(self, path: str) -> bool:
        try:
            self.read(path)
            return True
        except (FileNotFoundError, NetworkError):
            return False

    def list(self) -> List[str]:
        paths = set()
        for node in self.nodes:
            if node.alive:
                paths.update(path for path, (version, data)
                             in node.objects.items() if data != b"")
        return sorted(path for path in paths if self.exists(path))

    def total_bytes(self) -> int:
        return sum(len(data) for path in self.list()
                   for data in [self.read(path)])

    # -- attack/fault affordances (BlockStore parity) ------------------------

    def snapshot(self) -> Dict[str, bytes]:
        return {path: self.read(path) for path in self.list()}

    def restore(self, snapshot: Dict[str, bytes]) -> None:
        for path in self.list():
            self.delete(path)
        for path, data in snapshot.items():
            self.write(path, data)

    def tamper(self, path: str, data: bytes) -> None:
        """Corrupt one replica's copy (a Byzantine storage node)."""
        node = next(node for node in self.nodes if node.alive)
        version = node.objects.get(path, (0, b""))[0]
        node.objects[path] = (version, data)

    def scan_for(self, needle: bytes) -> List[str]:
        hits = set()
        for node in self.nodes:
            for path, (_version, data) in node.objects.items():
                if needle in data:
                    hits.add(path)
        return sorted(hits)
