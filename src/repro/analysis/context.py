"""Analysis inputs: the policy-set and source-file contexts rules see."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional

from repro.core.policy import SecurityPolicy
from repro.fs.injection import find_variables


@dataclass
class PolicySetContext:
    """Every policy under analysis, keyed by name, plus shared references.

    ``documents`` carries the raw yamlish mappings for policies that were
    parsed from text (document rules need the pre-default view).
    ``mre_allowlist`` is the currently vouched-for MRENCLAVE set — from
    the CA image or an image-policy export — against which PAL030 checks
    for drift; ``None`` disables the check.
    """

    policies: Dict[str, SecurityPolicy]
    documents: Dict[str, dict] = field(default_factory=dict)
    mre_allowlist: Optional[FrozenSet[bytes]] = None

    def names(self) -> List[str]:
        return sorted(self.policies)

    def referenced_secret_names(self, policy: SecurityPolicy) -> List[str]:
        """Secret names a policy's services actually consume, sorted.

        References appear as ``$$PALAEMON$NAME$$`` placeholders in
        injection-file templates, environment values, and command argv —
        exactly the three places the service substitutes at attestation.
        """
        referenced = set()
        for service in policy.services:
            for template in service.injection_files.values():
                referenced.update(find_variables(template))
            for value in service.environment.values():
                referenced.update(find_variables(value.encode()))
            for part in service.command:
                referenced.update(find_variables(part.encode()))
        return sorted(referenced)

    def imports_of(self, importer: SecurityPolicy,
                   source_name: str, secret_name: str) -> bool:
        """Whether ``importer`` imports ``secret_name`` from ``source_name``."""
        return any(spec.from_policy == source_name
                   and spec.secret_name == secret_name
                   for spec in importer.imports)


@dataclass
class SourceFile:
    """One parsed python source file under repo lint."""

    path: Path
    #: Repo-relative posix path, the stable display/baseline key.
    display: str
    #: Dotted module name (``repro.obs.metrics``), derived from the
    #: ``__init__.py`` chain above the file.
    module: str
    text: str
    tree: ast.Module
    lines: List[str]

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


def module_name_for(path: Path) -> str:
    """Dotted module path, walking up while ``__init__.py`` chains hold."""
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts)


def load_source_file(path: Path, repo_root: Optional[Path] = None,
                     ) -> SourceFile:
    """Read and parse one file; raises ``SyntaxError`` on broken sources."""
    path = path.resolve()
    text = path.read_text(encoding="utf-8")
    if repo_root is not None:
        try:
            display = path.relative_to(repo_root.resolve()).as_posix()
        except ValueError:
            display = path.as_posix()
    else:
        display = path.as_posix()
    tree = ast.parse(text, filename=display)
    return SourceFile(path=path, display=display,
                      module=module_name_for(path), text=text,
                      tree=tree, lines=text.splitlines())
