"""Tests for the functional TPC-C-flavoured transaction mix."""

import pytest

from repro.apps.mariadb import MariaDBServer
from repro.sim.core import Simulator
from repro.tee.enclave import ExecutionMode


@pytest.fixture()
def server():
    sim = Simulator()
    db = MariaDBServer(sim, buffer_pool_mb=128)
    db.setup_warehouse(1)
    return sim, db


class TestNewOrder:
    def test_order_ids_increment(self, server):
        sim, db = server

        def main():
            first = yield sim.process(db.new_order(1, 1, [1, 2, 3]))
            second = yield sim.process(db.new_order(1, 1, [4]))
            return first, second

        first, second = sim.run_process(main())
        assert (first, second) == (1, 2)

    def test_stock_decremented(self, server):
        sim, db = server

        def main():
            yield sim.process(db.new_order(1, 1, [7, 7]))

        sim.run_process(main())
        assert db.get_row("stock:1:7") == b"quantity=98"

    def test_out_of_stock_rejected(self, server):
        sim, db = server
        db.put_row("stock:1:9", b"quantity=0")

        def main():
            yield sim.process(db.new_order(1, 1, [9]))

        with pytest.raises(ValueError, match="out of stock"):
            sim.run_process(main())

    def test_unknown_district_rejected(self, server):
        sim, db = server

        def main():
            yield sim.process(db.new_order(1, 99, [1]))

        with pytest.raises(KeyError):
            sim.run_process(main())

    def test_order_row_recorded_and_queryable(self, server):
        sim, db = server

        def main():
            order_id = yield sim.process(db.new_order(1, 2, [5, 6]))
            status = yield sim.process(db.order_status(1, 2, order_id))
            return status

        assert sim.run_process(main()) == b"5,6"

    def test_districts_independent(self, server):
        sim, db = server

        def main():
            a = yield sim.process(db.new_order(1, 1, [1]))
            b = yield sim.process(db.new_order(1, 2, [1]))
            return a, b

        assert sim.run_process(main()) == (1, 1)


class TestPayment:
    def test_balance_accumulates(self, server):
        sim, db = server

        def main():
            yield sim.process(db.payment(1, 3, 250))
            balance = yield sim.process(db.payment(1, 3, -100))
            return balance

        assert sim.run_process(main()) == 150
        assert db.get_row("customer:1:3") == b"balance=150"

    def test_unknown_customer_rejected(self, server):
        sim, db = server

        def main():
            yield sim.process(db.payment(1, 999, 10))

        with pytest.raises(KeyError):
            sim.run_process(main())


class TestMixAccounting:
    def test_transactions_counted_and_timed(self, server):
        sim, db = server

        def main():
            yield sim.process(db.new_order(1, 1, [1]))
            yield sim.process(db.payment(1, 1, 10))
            yield sim.process(db.order_status(1, 1, 1))
            return sim.now

        elapsed = sim.run_process(main())
        assert db.transactions == 3
        assert elapsed == pytest.approx(3 * db.tx_service_seconds())

    def test_rows_stay_encrypted_during_mix(self, server):
        sim, db = server

        def main():
            yield sim.process(db.new_order(1, 1, [1, 2]))

        sim.run_process(main())
        assert db.rows_encrypted_at_rest(b"quantity=")
        assert db.rows_encrypted_at_rest(b"next_order=")

    def test_mix_runs_in_hardware_mode(self):
        sim = Simulator()
        db = MariaDBServer(sim, buffer_pool_mb=256,
                           mode=ExecutionMode.HARDWARE)
        db.setup_warehouse(1)

        def main():
            order_id = yield sim.process(db.new_order(1, 1, [1]))
            return order_id

        assert sim.run_process(main()) == 1
