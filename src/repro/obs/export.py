"""Exporters: Prometheus-style text snapshots and JSON-lines events.

Two formats, both deterministic for a given run:

- :func:`render_prometheus` — a text snapshot of every metric series in
  sorted order, with histograms rendered summary-style (``_count``,
  ``_sum``, and ``quantile=""`` series), suitable for diffing between
  runs or scraping out of a debug endpoint.
- :func:`events_to_jsonl` — the audit-record stream followed by the
  finished-span stream, one JSON object per line. Two runs of the same
  seed produce byte-identical streams (the acceptance check for
  simulator-clock-only tracing).
"""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.sim.metrics import summarize


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(labels, extra=()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """All metric series as Prometheus-style exposition text."""
    lines: List[str] = []
    seen_types = set()
    for metric in registry.series():
        if metric.name not in seen_types:
            seen_types.add(metric.name)
            kind = "summary" if isinstance(metric, Histogram) else metric.kind
            lines.append(f"# TYPE {metric.name} {kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(f"{metric.name}{_render_labels(metric.labels)} "
                         f"{_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            labels = metric.labels
            if metric.samples:
                summary = summarize(metric.samples, name=metric.name)
                for quantile, value in (("0.5", summary.p50),
                                        ("0.95", summary.p95),
                                        ("0.99", summary.p99)):
                    rendered = _render_labels(labels,
                                              extra=[("quantile", quantile)])
                    lines.append(f"{metric.name}{rendered} "
                                 f"{_format_value(value)}")
            lines.append(f"{metric.name}_count{_render_labels(labels)} "
                         f"{metric.count}")
            lines.append(f"{metric.name}_sum{_render_labels(labels)} "
                         f"{_format_value(metric.total)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _dump(document: dict) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def audit_to_jsonl(records: Iterable) -> str:
    """Audit records as one JSON object per line, in chain order."""
    return "".join(_dump({"type": "audit", **record.to_dict()}) + "\n"
                   for record in records)


def spans_to_jsonl(spans: Iterable) -> str:
    """Finished spans as one JSON object per line, in finish order."""
    return "".join(_dump({"type": "span", **span.to_dict()}) + "\n"
                   for span in spans)


def events_to_jsonl(telemetry) -> str:
    """The full event stream of one telemetry domain."""
    return (audit_to_jsonl(telemetry.audit_log.records)
            + spans_to_jsonl(telemetry.tracer.finished))
