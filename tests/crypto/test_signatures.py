"""Tests for RSA-FDH signatures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.primitives import DeterministicRandom
from repro.crypto.signatures import (
    KeyPair,
    PublicKey,
    verify_signature,
    _generate_prime,
    _is_probable_prime,
    _modular_inverse,
)
from repro.errors import SignatureError


@pytest.fixture(scope="module")
def key_pair():
    return KeyPair.generate(DeterministicRandom(b"sig-test"), bits=512)


@pytest.fixture(scope="module")
def other_key_pair():
    return KeyPair.generate(DeterministicRandom(b"sig-other"), bits=512)


class TestPrimality:
    def test_known_primes(self):
        rng = DeterministicRandom(b"prime")
        for prime in (2, 3, 5, 7, 97, 101, 104729):
            assert _is_probable_prime(prime, rng)

    def test_known_composites(self):
        rng = DeterministicRandom(b"prime")
        for composite in (0, 1, 4, 100, 104730, 561, 41041):  # Carmichaels too
            assert not _is_probable_prime(composite, rng)

    def test_generated_prime_size(self):
        rng = DeterministicRandom(b"gen")
        prime = _generate_prime(128, rng)
        assert prime.bit_length() == 128
        assert prime % 2 == 1


class TestModularInverse:
    def test_inverse(self):
        assert (_modular_inverse(3, 11) * 3) % 11 == 1

    def test_no_inverse(self):
        with pytest.raises(ValueError):
            _modular_inverse(6, 9)


class TestSignatures:
    def test_sign_verify_round_trip(self, key_pair):
        signature = key_pair.sign(b"message")
        assert verify_signature(key_pair.public, b"message", signature)

    def test_verify_raises_on_forgery(self, key_pair):
        with pytest.raises(SignatureError):
            key_pair.public.verify(b"message", b"\x00" * 64)

    def test_wrong_message_rejected(self, key_pair):
        signature = key_pair.sign(b"message")
        assert not verify_signature(key_pair.public, b"other", signature)

    def test_wrong_key_rejected(self, key_pair, other_key_pair):
        signature = key_pair.sign(b"message")
        assert not verify_signature(other_key_pair.public, b"message",
                                    signature)

    def test_tampered_signature_rejected(self, key_pair):
        signature = bytearray(key_pair.sign(b"message"))
        signature[0] ^= 1
        assert not verify_signature(key_pair.public, b"message",
                                    bytes(signature))

    def test_wrong_length_signature_rejected(self, key_pair):
        signature = key_pair.sign(b"message")
        assert not verify_signature(key_pair.public, b"message",
                                    signature + b"\x00")

    def test_oversized_signature_integer_rejected(self, key_pair):
        nbytes = (key_pair.public.modulus.bit_length() + 7) // 8
        too_big = (key_pair.public.modulus + 1).to_bytes(nbytes, "big")
        assert not verify_signature(key_pair.public, b"message", too_big)

    def test_deterministic_keygen(self):
        a = KeyPair.generate(DeterministicRandom(b"same"), bits=512)
        b = KeyPair.generate(DeterministicRandom(b"same"), bits=512)
        assert a.public == b.public

    def test_distinct_seeds_distinct_keys(self, key_pair, other_key_pair):
        assert key_pair.public != other_key_pair.public

    def test_too_small_key_rejected(self):
        with pytest.raises(ValueError):
            KeyPair.generate(DeterministicRandom(b"s"), bits=64)

    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=256))
    def test_round_trip_property(self, message):
        pair = KeyPair.generate(DeterministicRandom(b"hyp-fixed"), bits=512)
        assert verify_signature(pair.public, message, pair.sign(message))


class TestPublicKeySerialization:
    def test_round_trip(self, key_pair):
        restored = PublicKey.from_bytes(key_pair.public.to_bytes())
        assert restored == key_pair.public

    def test_fingerprint_stable_and_distinct(self, key_pair, other_key_pair):
        assert key_pair.public.fingerprint() == key_pair.public.fingerprint()
        assert (key_pair.public.fingerprint()
                != other_key_pair.public.fingerprint())

    def test_hashable(self, key_pair, other_key_pair):
        registry = {key_pair.public: "a", other_key_pair.public: "b"}
        assert registry[key_pair.public] == "a"
