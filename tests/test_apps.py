"""Tests for the macro-benchmark application miniatures."""

import pytest

from repro import calibration
from repro.apps.base import SimulatedServer, fractions_for
from repro.apps.kms import BarbicanServer, BarbicanVariant, VaultServer
from repro.apps.kvstore import MemcachedServer
from repro.apps.mariadb import MariaDBServer
from repro.apps.mlservice import InferenceService
from repro.apps.secretconfig import (
    PALAEMON_CHANNEL_MECHANISMS,
    SECRET_CHANNEL_SURVEY,
    coverage_report,
)
from repro.apps.webserver import NginxServer, NginxVariant
from repro.apps.zookeeper import ZooKeeperCluster
from repro.crypto.primitives import DeterministicRandom
from repro.errors import AccessDeniedError, NetworkError
from repro.sim.core import Simulator
from repro.tee.enclave import ExecutionMode


class TestSimulatedServer:
    def test_service_times_ordered_by_mode(self):
        sim = Simulator()
        server = SimulatedServer(sim, "s", native_peak_rps=1000,
                                 mode_fractions=fractions_for(hw=0.5,
                                                              emu=0.8))
        assert (server.service_seconds(ExecutionMode.NATIVE)
                < server.service_seconds(ExecutionMode.EMULATED)
                < server.service_seconds(ExecutionMode.HARDWARE))

    def test_peak_rate_matches_anchor(self):
        sim = Simulator()
        server = SimulatedServer(sim, "s", native_peak_rps=1000,
                                 mode_fractions=fractions_for(hw=0.5,
                                                              emu=0.8))
        assert server.peak_rate(ExecutionMode.NATIVE) == pytest.approx(1000)
        assert server.peak_rate(ExecutionMode.HARDWARE) == pytest.approx(500)


class TestMemcached:
    def test_functional_get_set_delete(self):
        server = MemcachedServer(Simulator())
        server.set("k", b"v")
        assert server.get("k") == b"v"
        assert server.delete("k")
        assert server.get("k") is None
        assert server.hits == 1 and server.misses == 1

    def test_lru_eviction(self):
        server = MemcachedServer(Simulator(), capacity_items=2)
        server.set("a", b"1")
        server.set("b", b"2")
        server.get("a")  # refresh a
        server.set("c", b"3")  # evicts b
        assert server.get("b") is None
        assert server.get("a") == b"1"
        assert server.evictions == 1

    def test_timed_handlers(self):
        sim = Simulator()
        server = MemcachedServer(sim, mode=ExecutionMode.HARDWARE)

        def main():
            yield sim.process(server.handle_set("k", b"v"))
            value = yield sim.process(server.handle_get("k"))
            return value, sim.now

        value, elapsed = sim.run_process(main())
        assert value == b"v"
        assert elapsed == pytest.approx(
            2 * server.service_seconds(ExecutionMode.HARDWARE))

    def test_mode_fractions_match_paper(self):
        server = MemcachedServer(Simulator())
        native = server.peak_rate(ExecutionMode.NATIVE)
        assert server.peak_rate(ExecutionMode.HARDWARE) / native == \
            pytest.approx(0.595)
        assert server.peak_rate(ExecutionMode.EMULATED) / native == \
            pytest.approx(0.653)

    def test_tls_enabled_with_injected_material(self):
        server = MemcachedServer(Simulator(), tls_certificate=b"cert",
                                 tls_private_key=b"key")
        assert server.tls_enabled
        assert not MemcachedServer(Simulator()).tls_enabled


class TestNginx:
    def test_plain_variant_serves_files(self):
        sim = Simulator()
        server = NginxServer(sim, NginxVariant.NATIVE)
        server.publish("/index.html", b"<html>hello</html>")

        def main():
            content = yield sim.process(server.handle_get("/index.html"))
            return content

        assert sim.run_process(main()) == b"<html>hello</html>"

    def test_missing_file_404(self):
        sim = Simulator()
        server = NginxServer(sim, NginxVariant.NATIVE)

        def main():
            content = yield sim.process(server.handle_get("/missing"))
            return content

        assert sim.run_process(main()) is None
        assert server.requests_404 == 1

    def test_shield_variant_encrypts_docroot(self):
        sim = Simulator()
        server = NginxServer(sim, NginxVariant.SHIELD_HW)
        server.publish("/page.html", b"secret page body")
        assert server.store.scan_for(b"secret page body") == []
        assert server.read_document("/page.html") == b"secret page body"

    def test_variant_throughput_ordering(self):
        """Fig 17a: native > palaemon EMU >= HW > shield EMU >= shield HW."""
        sim = Simulator()
        rates = {variant: 1.0 / NginxServer(sim, variant).service_seconds(
            variant.mode) for variant in NginxVariant}
        assert rates[NginxVariant.NATIVE] > rates[NginxVariant.PALAEMON_EMU]
        assert rates[NginxVariant.PALAEMON_EMU] >= \
            rates[NginxVariant.PALAEMON_HW]
        assert rates[NginxVariant.PALAEMON_HW] > rates[NginxVariant.SHIELD_EMU]
        assert rates[NginxVariant.SHIELD_EMU] >= rates[NginxVariant.SHIELD_HW]

    def test_shield_costs_more_than_sgx(self):
        """The paper's point: encrypting all files outweighs SGX overhead."""
        sgx_cost = (calibration.NGINX_NATIVE_PEAK_RPS
                    * (1 - calibration.NGINX_PALAEMON_HW_FRACTION))
        shield_extra_cost = (calibration.NGINX_NATIVE_PEAK_RPS
                             * (calibration.NGINX_PALAEMON_HW_FRACTION
                                - calibration.NGINX_SHIELD_HW_FRACTION))
        assert shield_extra_cost > sgx_cost


class TestBarbican:
    def test_functional_store_retrieve(self):
        sim = Simulator()
        server = BarbicanServer(sim, BarbicanVariant.NATIVE)
        rng = DeterministicRandom(b"tokens")
        token = server.secrets.issue_token("tenant-1", rng)
        server.secrets.store(token, "db-password", b"hunter2")
        assert server.secrets.retrieve(token, "db-password") == b"hunter2"

    def test_bad_token_rejected(self):
        sim = Simulator()
        server = BarbicanServer(sim, BarbicanVariant.NATIVE)
        with pytest.raises(AccessDeniedError):
            server.secrets.retrieve("forged-token", "anything")

    def test_barbie_faster_than_native(self):
        sim = Simulator()
        barbie = BarbicanServer(sim, BarbicanVariant.BARBIE)
        native = BarbicanServer(sim, BarbicanVariant.NATIVE)
        assert barbie.peak_rps() > native.peak_rps()

    def test_palaemon_slower_than_native(self):
        sim = Simulator()
        palaemon = BarbicanServer(sim, BarbicanVariant.PALAEMON_HW)
        native = BarbicanServer(sim, BarbicanVariant.NATIVE)
        assert palaemon.peak_rps() < native.peak_rps()

    def test_microcode_penalty_hits_palaemon_hardest(self):
        """Fig 14: post-Foreshadow costs PALAEMON ~30%, BarbiE ~5%."""
        sim = Simulator()

        def drop(variant):
            pre = BarbicanServer(sim, variant,
                                 microcode=calibration.MICROCODE_PRE_SPECTRE)
            post = BarbicanServer(
                sim, variant,
                microcode=calibration.MICROCODE_POST_FORESHADOW)
            return 1 - post.peak_rps() / pre.peak_rps()

        assert drop(BarbicanVariant.PALAEMON_HW) == pytest.approx(0.30,
                                                                  abs=0.02)
        assert drop(BarbicanVariant.BARBIE) == pytest.approx(0.05, abs=0.02)
        assert drop(BarbicanVariant.NATIVE) == 0.0


class TestVault:
    def test_heap_exceeds_epc(self):
        assert VaultServer(Simulator()).exceeds_epc()

    def test_mode_fractions_match_paper(self):
        server = VaultServer(Simulator())
        native = server.peak_rate(ExecutionMode.NATIVE)
        assert server.peak_rate(ExecutionMode.HARDWARE) / native == \
            pytest.approx(calibration.VAULT_HW_FRACTION)
        assert server.peak_rate(ExecutionMode.EMULATED) / native == \
            pytest.approx(calibration.VAULT_EMU_FRACTION)

    def test_functional_round_trip_with_timing(self):
        sim = Simulator()
        server = VaultServer(sim, mode=ExecutionMode.HARDWARE)
        rng = DeterministicRandom(b"vault-test")
        token = server.secrets.issue_token("app", rng)

        def main():
            yield sim.process(server.handle_store(token, "k", b"v"))
            value = yield sim.process(server.handle_retrieve(token, "k"))
            return value

        assert sim.run_process(main()) == b"v"


class TestZooKeeper:
    def test_write_replicates_to_all(self):
        sim = Simulator()
        cluster = ZooKeeperCluster(sim)

        def main():
            yield sim.process(cluster.handle_write("/config", b"value"))

        sim.run_process(main())
        assert cluster.consistent()
        for node in cluster.nodes:
            assert node.data["/config"] == b"value"

    def test_read_after_write(self):
        sim = Simulator()
        cluster = ZooKeeperCluster(sim)

        def main():
            yield sim.process(cluster.handle_write("/a", b"1"))
            value = yield sim.process(cluster.handle_read("/a", node_id=2))
            return value

        assert sim.run_process(main()) == b"1"

    def test_delete_via_none(self):
        sim = Simulator()
        cluster = ZooKeeperCluster(sim)

        def main():
            yield sim.process(cluster.handle_write("/a", b"1"))
            yield sim.process(cluster.handle_write("/a", None))

        sim.run_process(main())
        assert cluster.read_local("/a") is None

    def test_tolerates_one_failure(self):
        sim = Simulator()
        cluster = ZooKeeperCluster(sim)
        cluster.fail_node(2)

        def main():
            yield sim.process(cluster.handle_write("/a", b"1"))

        sim.run_process(main())
        assert cluster.nodes[0].data["/a"] == b"1"
        assert b"1" not in cluster.nodes[2].data.values()

    def test_leader_failover(self):
        sim = Simulator()
        cluster = ZooKeeperCluster(sim)
        cluster.fail_node(0)
        assert cluster.leader_id != 0

        def main():
            yield sim.process(cluster.handle_write("/a", b"1"))

        sim.run_process(main())

    def test_quorum_loss_blocks_writes(self):
        sim = Simulator()
        cluster = ZooKeeperCluster(sim)
        cluster.fail_node(1)
        cluster.fail_node(2)

        def main():
            yield sim.process(cluster.handle_write("/a", b"1"))

        with pytest.raises(NetworkError, match="quorum"):
            sim.run_process(main())

    def test_read_from_dead_node_fails(self):
        sim = Simulator()
        cluster = ZooKeeperCluster(sim)
        cluster.fail_node(1)

        def main():
            yield sim.process(cluster.handle_read("/a", node_id=1))

        with pytest.raises(NetworkError, match="down"):
            sim.run_process(main())

    def test_even_cluster_rejected(self):
        with pytest.raises(ValueError):
            ZooKeeperCluster(Simulator(), nodes=4)

    def test_shielded_reads_beat_native(self):
        """Fig 17b: the shielded version reads faster than native."""
        sim = Simulator()
        native = ZooKeeperCluster(sim, mode=ExecutionMode.NATIVE)
        shielded = ZooKeeperCluster(sim, mode=ExecutionMode.HARDWARE)
        assert (shielded._read_server.peak_rate(ExecutionMode.HARDWARE)
                > native._read_server.peak_rate(ExecutionMode.NATIVE))

    def test_native_writes_beat_shielded(self):
        """Fig 17c: consensus makes shields expensive; native wins writes."""
        sim = Simulator()
        native = ZooKeeperCluster(sim, mode=ExecutionMode.NATIVE)
        shielded = ZooKeeperCluster(sim, mode=ExecutionMode.HARDWARE)
        assert (native._write_server.peak_rate(ExecutionMode.NATIVE)
                > shielded._write_server.peak_rate(ExecutionMode.HARDWARE))


class TestMariaDB:
    def test_rows_encrypted_at_rest(self):
        server = MariaDBServer(Simulator(), buffer_pool_mb=64)
        server.put_row("customer:1", b"alice,4242-4242")
        assert server.rows_encrypted_at_rest(b"4242-4242")
        assert server.get_row("customer:1") == b"alice,4242-4242"

    def test_missing_row(self):
        assert MariaDBServer(Simulator(),
                             buffer_pool_mb=64).get_row("x") is None

    def test_hit_ratio_grows_with_pool(self):
        ratios = [MariaDBServer(Simulator(), buffer_pool_mb=mb).hit_ratio()
                  for mb in (8, 64, 128, 256, 512)]
        assert ratios == sorted(ratios)
        assert ratios[0] < 0.3

    def test_native_throughput_grows_with_pool(self):
        tps = [MariaDBServer(Simulator(), buffer_pool_mb=mb,
                             mode=ExecutionMode.NATIVE).peak_tps()
               for mb in calibration.MARIADB_BUFFER_POOL_SIZES_MB]
        assert tps == sorted(tps)

    def test_hardware_throughput_drops_beyond_epc(self):
        """Fig 17d: the HW crossover — bigger pools hurt past the EPC."""
        small = MariaDBServer(Simulator(), buffer_pool_mb=128,
                              mode=ExecutionMode.HARDWARE).peak_tps()
        big = MariaDBServer(Simulator(), buffer_pool_mb=512,
                            mode=ExecutionMode.HARDWARE).peak_tps()
        assert big < small

    def test_small_pools_similar_across_modes(self):
        """Fig 17d: <128 MB, disk I/O dominates and modes are close."""
        native = MariaDBServer(Simulator(), buffer_pool_mb=8,
                               mode=ExecutionMode.NATIVE).peak_tps()
        hw = MariaDBServer(Simulator(), buffer_pool_mb=8,
                           mode=ExecutionMode.HARDWARE).peak_tps()
        assert hw / native > 0.85

    def test_timed_transactions(self):
        sim = Simulator()
        server = MariaDBServer(sim, buffer_pool_mb=256)

        def main():
            yield sim.process(server.handle_transaction())
            return sim.now

        elapsed = sim.run_process(main())
        assert elapsed == pytest.approx(server.tx_service_seconds())
        assert server.transactions == 1

    def test_invalid_pool_rejected(self):
        with pytest.raises(ValueError):
            MariaDBServer(Simulator(), buffer_pool_mb=0)


class TestInferenceService:
    def test_pipeline_round_trip(self):
        sim = Simulator()
        service = InferenceService(sim)
        service.install_model("handwriting-v1", b"weights-blob")
        service.submit_image("img-1", b"pixel-data")

        def main():
            text = yield sim.process(service.process_image("img-1",
                                                           "handwriting-v1"))
            return text

        text = sim.run_process(main())
        assert text.startswith("text:")
        assert service.fetch_result("img-1") == text.encode()

    def test_result_depends_on_model_and_image(self):
        sim = Simulator()
        service = InferenceService(sim)
        service.install_model("m1", b"weights-1")
        service.install_model("m2", b"weights-2")
        service.submit_image("img", b"pixels")

        def run(model):
            def main():
                text = yield sim.process(service.process_image("img", model))
                return text
            return sim.run_process(main())

        assert run("m1") != run("m2")

    def test_assets_encrypted_on_both_volumes(self):
        service = InferenceService(Simulator())
        service.install_model("m", b"proprietary-weights")
        service.submit_image("i", b"sensitive-scan")
        assert service.company_volume.scan_for(b"proprietary-weights") == []
        assert service.customer_volume.scan_for(b"sensitive-scan") == []

    def test_paper_slowdown(self):
        """§VI: 323 ms native vs 1202 ms PALAEMON, a 3.7x slowdown."""
        sim = Simulator()
        hw = InferenceService(sim, mode=ExecutionMode.HARDWARE)
        assert hw.slowdown_vs_native() == pytest.approx(3.72, abs=0.1)
        assert hw.inference_seconds() < 1.5  # the acceptability bound

    def test_timed_processing(self):
        sim = Simulator()
        service = InferenceService(sim, mode=ExecutionMode.NATIVE)
        service.install_model("m", b"w")
        service.submit_image("i", b"p")

        def main():
            yield sim.process(service.process_image("i", "m"))
            return sim.now

        assert sim.run_process(main()) == pytest.approx(
            calibration.ML_NATIVE_INFERENCE_SECONDS)


class TestSecretChannelSurvey:
    def test_ten_services(self):
        assert len(SECRET_CHANNEL_SURVEY) == 10

    def test_evaluated_services_match_paper(self):
        evaluated = {s.program for s in SECRET_CHANNEL_SURVEY if s.evaluated}
        assert evaluated == {"MariaDB", "Memcached", "Nginx", "Vault",
                             "ZooKeeper"}

    def test_all_channels_covered(self):
        for program, channels, covered in coverage_report():
            assert covered, f"{program} has an uncovered channel"

    def test_mechanisms_exist_for_all_channels(self):
        assert set(PALAEMON_CHANNEL_MECHANISMS) == {"args", "env", "files"}

    def test_known_rows(self):
        consul = next(s for s in SECRET_CHANNEL_SURVEY
                      if s.program == "Consul")
        assert consul.channels == ("env", "files")
        memcached = next(s for s in SECRET_CHANNEL_SURVEY
                         if s.program == "Memcached")
        assert memcached.channels == ()
