"""Fig 16 — memcached throughput/latency (memtier-shaped GET/SET mix).

Native (stunnel TLS) vs PALAEMON EMU vs PALAEMON HW. At sub-3 ms latencies,
hardware reaches 59.5% and emulation 65.3% of native throughput; PALAEMON
injects the TLS material so the enclave terminates TLS itself.
"""

from repro import calibration
from repro.apps.kvstore import MemcachedServer
from repro.benchlib.harness import rate_sweep
from repro.benchlib.tables import PaperComparison, format_table, paper_vs_measured
from repro.crypto.primitives import DeterministicRandom
from repro.tee.enclave import ExecutionMode

from benchmarks.conftest import run_once

_MODES = {
    "Native": ExecutionMode.NATIVE,
    "Palaemon EMU": ExecutionMode.EMULATED,
    "Palaemon HW": ExecutionMode.HARDWARE,
}


def _setup(mode):
    def setup(simulator):
        server = MemcachedServer(simulator, mode=mode,
                                 tls_certificate=b"injected-cert",
                                 tls_private_key=b"injected-key")
        rng = DeterministicRandom(b"memtier")
        for i in range(100):
            server.set(f"key-{i}", b"v" * 64)

        def factory(request_id):
            # memtier default: 1:10 SET:GET ratio.
            if request_id % 11 == 0:
                yield simulator.process(server.handle_set(
                    f"key-{request_id % 100}", b"w" * 64))
            else:
                value = yield simulator.process(server.handle_get(
                    f"key-{request_id % 100}"))
                assert value is not None

        return factory

    return setup


def _sweep_all():
    rates = (60_000, 150_000, 240_000, 300_000, 400_000, 520_000)
    return {name: rate_sweep(name, _setup(mode), rates, duration=0.02)
            for name, mode in _MODES.items()}


def test_fig16_memcached(benchmark):
    results = run_once(benchmark, _sweep_all)

    rows = []
    for name, result in results.items():
        for offered, achieved, latency_ms in result.rows():
            rows.append([name, offered, achieved, latency_ms])
    print()
    print(format_table(
        ["variant", "offered (req/s)", "achieved (req/s)", "mean lat (ms)"],
        rows, title="Fig 16: memcached"))

    # The paper reads throughput at the <3 ms latency bound.
    knees = {name: result.knee(latency_limit=0.003)
             for name, result in results.items()}
    native = knees["Native"]
    comparisons = [
        PaperComparison("native peak", calibration.MEMCACHED_NATIVE_PEAK_RPS,
                        native, unit="req/s", rel_tolerance=0.15),
        PaperComparison("HW fraction", 0.595, knees["Palaemon HW"] / native,
                        rel_tolerance=0.12),
        PaperComparison("EMU fraction", 0.653,
                        knees["Palaemon EMU"] / native, rel_tolerance=0.12),
    ]
    print(paper_vs_measured(comparisons, title="paper vs measured"))
    for comparison in comparisons:
        assert comparison.within_tolerance, comparison.metric

    assert knees["Palaemon HW"] < knees["Palaemon EMU"] < native
