"""The analyzer: runs registered rules over policies, documents, sources.

The engine guarantees determinism end to end: rules execute in code
order, files in sorted-path order, and findings come back deduplicated
and sorted on a stable key — the same inputs produce the same list,
byte for byte, on every run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.analysis.context import (
    PolicySetContext,
    SourceFile,
    load_source_file,
)
from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.registry import DEFAULT_REGISTRY, RuleRegistry
from repro.analysis.suppress import is_inline_suppressed
from repro.core.policy import SecurityPolicy

# Importing the rule modules populates DEFAULT_REGISTRY.
import repro.analysis.document_rules  # noqa: F401  (registration import)
import repro.analysis.policy_rules  # noqa: F401  (registration import)
import repro.analysis.source_rules  # noqa: F401  (registration import)


def repo_root() -> Path:
    """The checkout root (three levels above ``src/repro/analysis``)."""
    return Path(__file__).resolve().parents[3]


class Analyzer:
    """Runs a rule registry over analysis inputs."""

    def __init__(self, registry: Optional[RuleRegistry] = None) -> None:
        self.registry = registry or DEFAULT_REGISTRY

    # -- policy analysis ----------------------------------------------------

    def analyze_policy_set(
            self,
            policies: "Dict[str, SecurityPolicy] | Iterable[SecurityPolicy]",
            documents: Optional[Dict[str, dict]] = None,
            mre_allowlist: Optional[FrozenSet[bytes]] = None,
            codes: Optional[Iterable[str]] = None) -> List[Finding]:
        """Run policy + document rules over a set of policies."""
        if not isinstance(policies, dict):
            policies = {policy.name: policy for policy in policies}
        ctx = PolicySetContext(policies=dict(policies),
                               documents=dict(documents or {}),
                               mre_allowlist=mre_allowlist)
        findings: List[Finding] = []
        for rule in self.registry.rules(scope="policy", codes=codes):
            for name in ctx.names():
                findings.extend(rule.check(ctx.policies[name], ctx))
        for rule in self.registry.rules(scope="policyset", codes=codes):
            findings.extend(rule.check(ctx))
        for rule in self.registry.rules(scope="document", codes=codes):
            for name in sorted(ctx.documents):
                findings.extend(rule.check(name, ctx.documents[name]))
        return sort_findings(findings)

    def analyze_policy(self, policy: SecurityPolicy,
                       document: Optional[dict] = None,
                       codes: Optional[Iterable[str]] = None,
                       ) -> List[Finding]:
        """Convenience wrapper: a set of one."""
        documents = {policy.name: document} if document is not None else None
        return self.analyze_policy_set({policy.name: policy},
                                       documents=documents, codes=codes)

    def analyze_document(self, name: str, document: dict,
                         codes: Optional[Iterable[str]] = None,
                         ) -> List[Finding]:
        """Document rules only — usable before parsing even succeeds."""
        findings: List[Finding] = []
        for rule in self.registry.rules(scope="document", codes=codes):
            findings.extend(rule.check(name, document))
        return sort_findings(findings)

    # -- source analysis ----------------------------------------------------

    def analyze_sources(self, root: Path,
                        codes: Optional[Iterable[str]] = None,
                        base: Optional[Path] = None) -> List[Finding]:
        """Run source rules over a file or directory tree.

        ``base`` anchors the repo-relative display paths (defaults to the
        checkout root when ``root`` lives inside it).
        """
        root = Path(root)
        base = base or repo_root()
        paths = ([root] if root.is_file()
                 else sorted(path for path in root.rglob("*.py")
                             if "__pycache__" not in path.parts))
        findings: List[Finding] = []
        rules = self.registry.rules(scope="source", codes=codes)
        for path in paths:
            try:
                source = load_source_file(path, repo_root=base)
            except SyntaxError as exc:
                findings.append(_syntax_error_finding(path, base, exc))
                continue
            for rule in rules:
                for finding in rule.check(source):
                    if is_inline_suppressed(
                            finding,
                            source.line_text(finding.line or 0)):
                        continue
                    findings.append(finding)
        return sort_findings(findings)

    def analyze_repo(self, root: Optional[Path] = None,
                     codes: Optional[Iterable[str]] = None) -> List[Finding]:
        """Source-lint the whole ``src/repro`` tree of a checkout."""
        root = Path(root) if root is not None else repo_root()
        return self.analyze_sources(root / "src" / "repro",
                                    codes=codes, base=root)


def _syntax_error_finding(path: Path, base: Path,
                          exc: SyntaxError) -> Finding:
    try:
        display = path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        display = path.as_posix()
    return Finding(
        code="SRC100", severity=Severity.CRITICAL, subject=display,
        line=exc.lineno or 1,
        message=f"file does not parse: {exc.msg}",
        hint="fix the syntax error; no other source rule ran on this file")


def max_severity(findings: Iterable[Finding]) -> Optional[Severity]:
    severities = [finding.severity for finding in findings]
    return max(severities) if severities else None
