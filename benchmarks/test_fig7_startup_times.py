"""Fig 7 — enclave startup times vs enclave size (80 kB binary).

Left bars: PALAEMON measures only code, so startup stays near-flat as heap
grows. Right bars: a naive loader measures all pages, so startup grows
linearly at the ~148 MB/s measurement rate, reaching ~800 ms at 128 MB.
"""

from repro import calibration
from repro.benchlib.tables import format_table
from repro.tee.image import build_image
from repro.tee.loader import EnclaveLoader, MeasurementScope

from benchmarks.conftest import run_once

_SIZES_MB = (1, 2, 4, 8, 16, 32, 64, 128)


def _startup_sweep():
    rows = []
    for size_mb in _SIZES_MB:
        image = build_image("fig7", code_size=80 * calibration.KB,
                            data_size=16 * calibration.KB,
                            heap_bytes=size_mb * calibration.MB
                            - 96 * calibration.KB)
        palaemon = EnclaveLoader.estimate(image, MeasurementScope.CODE_ONLY)
        naive = EnclaveLoader.estimate(image, MeasurementScope.ALL_PAGES)
        rows.append((size_mb, palaemon, naive))
    return rows


def test_fig7_startup_times(benchmark):
    rows = run_once(benchmark, _startup_sweep)

    table = []
    for size_mb, palaemon, naive in rows:
        table.append([
            size_mb,
            palaemon.total_seconds * 1e3, naive.total_seconds * 1e3,
            naive.addition_seconds * 1e3, naive.measurement_seconds * 1e3,
            naive.bookkeeping_seconds * 1e3,
        ])
    print()
    print(format_table(
        ["size (MB)", "palaemon (ms)", "naive (ms)", "naive add (ms)",
         "naive measure (ms)", "naive bookkeep (ms)"],
        table,
        title="Fig 7: startup time vs enclave size (80 kB binary)"))

    by_size = {size: (p, n) for size, p, n in rows}

    # Naive at 128 MB: ~800 ms in the paper (measurement-dominated).
    naive_128 = by_size[128][1].total_seconds
    assert 0.7 <= naive_128 <= 1.1

    # PALAEMON stays far below naive at large sizes (measures only 96 kB).
    palaemon_128 = by_size[128][0].total_seconds
    assert palaemon_128 < naive_128 / 4
    assert by_size[128][0].measurement_seconds < 0.002

    # Naive grows roughly linearly with size; PALAEMON grows sub-linearly
    # (only addition/bookkeeping grow).
    naive_ratio = naive_128 / by_size[16][1].total_seconds
    assert 6 <= naive_ratio <= 10  # ~8x for 8x the size
    palaemon_ratio = palaemon_128 / by_size[16][0].total_seconds
    assert palaemon_ratio < naive_ratio

    # For small PALAEMON enclaves, bookkeeping + addition dominate the slow
    # measurement (the paper's point about dynamic heap allocation).
    small = by_size[1][0]
    assert (small.bookkeeping_seconds + small.addition_seconds
            > small.measurement_seconds)
