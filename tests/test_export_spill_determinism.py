"""Tests for JSON export, injected-file spilling, and global determinism."""

import pytest

from repro.benchlib.export import (
    comparison_to_dict,
    export_experiment,
    load_experiment,
    result_to_dict,
)
from repro.benchlib.harness import rate_sweep
from repro.benchlib.tables import PaperComparison
from repro.crypto.primitives import DeterministicRandom
from repro.fs.blockstore import BlockStore
from repro.fs.injection import DEFAULT_MEMORY_LIMIT, InjectedFileView
from repro.fs.shield import ProtectedFileSystem
from repro.sim.resources import Resource


def simple_setup(simulator):
    resource = Resource(simulator, capacity=1)

    def factory(_request_id):
        yield resource.acquire()
        try:
            yield simulator.timeout(0.001)
        finally:
            resource.release()

    return factory


class TestExport:
    def test_round_trip(self, tmp_path):
        curve = rate_sweep("demo", simple_setup, rates=[100, 500],
                           duration=1.0)
        comparison = PaperComparison("peak", 1000, 990, unit="req/s")
        path = export_experiment(tmp_path / "out" / "demo.json", "demo",
                                 curves=[curve], comparisons=[comparison],
                                 extra={"note": "test"})
        document = load_experiment(path)
        assert document["experiment"] == "demo"
        assert len(document["curves"][0]["points"]) == 2
        assert document["paper_vs_measured"][0]["within_tolerance"]
        assert document["extra"]["note"] == "test"

    def test_result_dict_shape(self):
        curve = rate_sweep("demo", simple_setup, rates=[50], duration=1.0)
        flattened = result_to_dict(curve)
        point = flattened["points"][0]
        assert set(point) == {"offered_rate", "achieved_rate", "latency"}
        assert set(point["latency"]) == {"count", "mean", "p50", "p95",
                                         "p99", "min", "max"}

    def test_comparison_dict(self):
        flattened = comparison_to_dict(
            PaperComparison("x", 10, 30, unit="s"))
        assert flattened["ratio"] == 3.0
        assert not flattened["within_tolerance"]

    def test_json_is_deterministic(self, tmp_path):
        curve = rate_sweep("demo", simple_setup, rates=[100], duration=1.0)
        a = export_experiment(tmp_path / "a.json", "demo", curves=[curve])
        b = export_experiment(tmp_path / "b.json", "demo", curves=[curve])
        assert a.read_text() == b.read_text()


class TestInjectedFileSpill:
    def make_fs(self):
        rng = DeterministicRandom(b"spill")
        return ProtectedFileSystem(BlockStore(), rng.fork(b"k").bytes(32),
                                   rng.fork(b"fs"))

    def test_small_files_stay_in_memory(self):
        view = InjectedFileView("/cfg", b"k=$$PALAEMON$S$$", {"S": b"v"},
                                spill_fs=self.make_fs())
        assert not view.spilled
        assert view.read() == b"k=v"

    def test_large_files_spill_to_shielded_fs(self):
        fs = self.make_fs()
        big_template = b"k=$$PALAEMON$S$$" + b"#" * (DEFAULT_MEMORY_LIMIT + 10)
        view = InjectedFileView("/big.cfg", big_template, {"S": b"v"},
                                spill_fs=fs)
        assert view.spilled
        assert view.content == b""  # not memory-resident
        assert view.read().startswith(b"k=v")
        assert fs.exists("/big.cfg")

    def test_spilled_content_still_protected(self):
        fs = self.make_fs()
        secret = b"spilled-secret-material-xyz"
        template = (b"key=$$PALAEMON$S$$" + b"#" * DEFAULT_MEMORY_LIMIT)
        InjectedFileView("/big.cfg", template, {"S": secret}, spill_fs=fs)
        assert fs.store.scan_for(secret) == []

    def test_no_spill_fs_keeps_memory_resident(self):
        template = b"k=$$PALAEMON$S$$" + b"#" * (DEFAULT_MEMORY_LIMIT + 10)
        view = InjectedFileView("/big.cfg", template, {"S": b"v"})
        assert not view.spilled
        assert view.read().startswith(b"k=v")

    def test_custom_limit(self):
        fs = self.make_fs()
        view = InjectedFileView("/c", b"0123456789", {}, memory_limit=4,
                                spill_fs=fs)
        assert view.spilled


class TestGlobalDeterminism:
    def test_identical_seeds_identical_traces(self):
        """Two full deployments from one seed produce identical state."""
        from tests.core.conftest import Deployment

        def fingerprint(deployment):
            deployment.client.create_policy(deployment.palaemon,
                                            deployment.make_policy())
            config = deployment.palaemon.attest_application(
                deployment.evidence_for("ml_policy"))
            return (config.secrets["API_KEY"], config.fs_key,
                    deployment.palaemon.mrenclave,
                    deployment.simulator.now)

        a = fingerprint(Deployment(seed=b"determinism"))
        b = fingerprint(Deployment(seed=b"determinism"))
        assert a == b

    def test_different_seeds_different_secrets(self):
        from tests.core.conftest import Deployment

        def secret(seed):
            deployment = Deployment(seed=seed)
            deployment.client.create_policy(deployment.palaemon,
                                            deployment.make_policy())
            return deployment.palaemon.attest_application(
                deployment.evidence_for("ml_policy")).secrets["API_KEY"]

        assert secret(b"seed-one") != secret(b"seed-two")

    def test_rate_sweep_reproducible(self):
        first = rate_sweep("r", simple_setup, rates=[200, 800],
                           duration=1.0, seed=b"fixed")
        second = rate_sweep("r", simple_setup, rates=[200, 800],
                           duration=1.0, seed=b"fixed")
        assert first.rows() == second.rows()
