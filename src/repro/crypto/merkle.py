"""Incremental Merkle tree over named leaves.

The shielded file system (``repro.fs.shield``) maintains one leaf per file
(hash of the file's ciphertext) and publishes the root hash as the file
system's *tag*. Any modification — including replacing the whole store with
an older snapshot — changes or stales the tag, which is how both tampering
and rollback become detectable.

Leaves are keyed by name (file path) rather than index so that files can be
added and removed; the tree hashes the sorted leaf set, with domain
separation between leaf and interior hashes to prevent second-preimage
splicing attacks.

The tree is *incremental*: every level of interior hashes is cached, so an
in-place leaf update recomputes only the O(log n) root path, and ``root()``
after a single-file write no longer re-hashes the whole file set. Inserting
or removing a leaf shifts the sorted order at the insertion point, so those
operations recompute the suffix of each level from the affected index —
O(log n) for appends near the end of the name order, O(n) worst case for a
prepend, never more than a full rebuild.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

from repro.crypto.primitives import constant_time_equal, sha256
from repro.errors import IntegrityError, MerkleLeafNotFoundError

_LEAF_PREFIX = b"\x00leaf"
_NODE_PREFIX = b"\x01node"
_EMPTY_ROOT = sha256(b"\x02empty-merkle-tree")


def _leaf_hash(name: str, value_hash: bytes) -> bytes:
    encoded_name = name.encode()
    return sha256(_LEAF_PREFIX, len(encoded_name).to_bytes(4, "big"),
                  encoded_name, value_hash)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return sha256(_NODE_PREFIX, left, right)


class MerkleTree:
    """A Merkle tree over a mutable mapping of name -> content hash.

    Internally keeps the full pyramid of hash levels (``_levels[0]`` is the
    sorted leaf hashes, ``_levels[-1]`` is ``[root]``) so that ``root()`` is
    O(1) on a clean tree and a leaf update is O(log n). The cache is built
    lazily: bulk loads (``from_snapshot``) stay O(n log n) total because the
    pyramid is only materialized on the first ``root()``/``prove()``.
    """

    def __init__(self) -> None:
        self._leaves: Dict[str, bytes] = {}
        # Sorted leaf names and the cached hash levels; both valid only
        # while _levels is not None.
        self._order: List[str] = []
        self._levels: Optional[List[List[bytes]]] = None

    def __len__(self) -> int:
        return len(self._leaves)

    def __contains__(self, name: str) -> bool:
        return name in self._leaves

    def names(self) -> List[str]:
        """Sorted leaf names."""
        if self._levels is not None:
            return list(self._order)
        return sorted(self._leaves)

    def set_leaf(self, name: str, content: bytes) -> None:
        """Insert or update the leaf for ``name`` with a hash of ``content``."""
        self.set_leaf_hash(name, sha256(content))

    def set_leaf_hash(self, name: str, content_hash: bytes) -> None:
        """Insert or update a leaf with a precomputed content hash."""
        if len(content_hash) != 32:
            raise ValueError("content hash must be 32 bytes")
        existed = name in self._leaves
        self._leaves[name] = content_hash
        if self._levels is None:
            return
        leaf = _leaf_hash(name, content_hash)
        if not self._levels:  # built-but-empty pyramid: seed it directly
            self._order = [name]
            self._levels = [[leaf]]
            return
        index = bisect_left(self._order, name)
        if existed:
            self._levels[0][index] = leaf
        else:
            self._order.insert(index, name)
            self._levels[0].insert(index, leaf)
        self._recompute_from(index)

    def remove_leaf(self, name: str) -> None:
        """Remove the leaf for ``name``; missing names are an error."""
        if name not in self._leaves:
            raise MerkleLeafNotFoundError(f"no Merkle leaf named {name!r}")
        del self._leaves[name]
        if self._levels is None:
            return
        index = bisect_left(self._order, name)
        del self._order[index]
        del self._levels[0][index]
        if not self._order:
            self._levels = []
            return
        self._recompute_from(index)

    def leaf_hash(self, name: str) -> bytes:
        """The stored content hash for ``name``."""
        if name not in self._leaves:
            raise MerkleLeafNotFoundError(f"no Merkle leaf named {name!r}")
        return self._leaves[name]

    def root(self) -> bytes:
        """The current root hash ("tag"). Empty trees have a fixed root."""
        levels = self._ensure_levels()
        if not levels:
            return _EMPTY_ROOT
        return levels[-1][0]

    def _ensure_levels(self) -> List[List[bytes]]:
        if self._levels is None:
            self._order = sorted(self._leaves)
            leaf_level = [_leaf_hash(name, self._leaves[name])
                          for name in self._order]
            self._levels = _compute_levels(leaf_level)
        return self._levels

    def _recompute_from(self, index: int) -> None:
        """Recompute cached levels above a change at leaf ``index``.

        Leaves before ``index`` are untouched, so each parent level only
        needs recomputing from ``index // 2`` onward; the suffix walk also
        absorbs level-length changes after an insert or remove.
        """
        levels = self._levels
        assert levels is not None
        depth = 0
        while len(levels[depth]) > 1:
            child = levels[depth]
            parent_length = (len(child) + 1) // 2
            index //= 2
            if depth + 1 == len(levels):
                levels.append([b""] * parent_length)
            parent = levels[depth + 1]
            if len(parent) > parent_length:
                del parent[parent_length:]
            elif len(parent) < parent_length:
                parent.extend([b""] * (parent_length - len(parent)))
            for i in range(index, parent_length):
                left = child[2 * i]
                if 2 * i + 1 < len(child):
                    parent[i] = _node_hash(left, child[2 * i + 1])
                else:
                    # Odd node is promoted; safe with domain separation.
                    parent[i] = left
            depth += 1
        del levels[depth + 1:]

    def prove(self, name: str) -> "MerkleProof":
        """Produce an inclusion proof for ``name`` against the current root."""
        if name not in self._leaves:
            raise MerkleLeafNotFoundError(f"no Merkle leaf named {name!r}")
        levels = self._ensure_levels()
        index = bisect_left(self._order, name)
        path: List[Tuple[bytes, bool]] = []
        for level in levels[:-1]:
            sibling_index = index ^ 1
            if sibling_index < len(level):
                path.append((level[sibling_index], sibling_index < index))
            index //= 2
        return MerkleProof(name=name, content_hash=self._leaves[name],
                           path=tuple(path), root=self.root())

    def snapshot(self) -> Dict[str, bytes]:
        """A copy of the leaf mapping (for persistence)."""
        return dict(self._leaves)

    @classmethod
    def from_snapshot(cls, leaves: Iterable[Tuple[str, bytes]]) -> "MerkleTree":
        tree = cls()
        for name, content_hash in leaves:
            tree.set_leaf_hash(name, content_hash)
        return tree


def _compute_levels(leaf_level: List[bytes]) -> List[List[bytes]]:
    """Build the full level pyramid bottom-up from a list of leaf hashes.

    Shared by ``root()`` and ``prove()`` (via ``_ensure_levels``): returns
    ``[]`` for an empty tree, otherwise ``levels[0]`` is ``leaf_level`` and
    ``levels[-1]`` is the single-element root level.
    """
    if not leaf_level:
        return []
    levels = [leaf_level]
    while len(levels[-1]) > 1:
        level = levels[-1]
        paired = []
        for i in range(0, len(level), 2):
            if i + 1 < len(level):
                paired.append(_node_hash(level[i], level[i + 1]))
            else:
                # Odd node is promoted; safe with domain separation.
                paired.append(level[i])
        levels.append(paired)
    return levels


class MerkleProof:
    """An inclusion proof: leaf -> root path with sibling hashes."""

    def __init__(self, name: str, content_hash: bytes,
                 path: Tuple[Tuple[bytes, bool], ...], root: bytes) -> None:
        self.name = name
        self.content_hash = content_hash
        self.path = path
        self.root = root

    def verify(self, expected_root: bytes) -> None:
        """Raise :class:`IntegrityError` unless the proof matches the root."""
        current = _leaf_hash(self.name, self.content_hash)
        for sibling, sibling_is_left in self.path:
            if sibling_is_left:
                current = _node_hash(sibling, current)
            else:
                current = _node_hash(current, sibling)
        if not constant_time_equal(current, expected_root):
            raise IntegrityError(
                f"Merkle proof for {self.name!r} does not match root")
