"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimTimeError, SimulationError
from repro.sim.core import ProcessInterrupt, Simulator


class TestTimeouts:
    def test_clock_advances_to_timeout(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(5.0)
            return sim.now

        assert sim.run_process(proc()) == 5.0

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
            yield sim.timeout(3.0)
            return sim.now

        assert sim.run_process(proc()) == 6.0

    def test_zero_delay_allowed(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(0.0)
            return "done"

        assert sim.run_process(proc()) == "done"

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimTimeError):
            sim.timeout(-1.0)

    def test_timeout_value_passed_back(self):
        sim = Simulator()

        def proc():
            value = yield sim.timeout(1.0, value="payload")
            return value

        assert sim.run_process(proc()) == "payload"


class TestProcesses:
    def test_processes_interleave_deterministically(self):
        sim = Simulator()
        trace = []

        def worker(name, delay):
            yield sim.timeout(delay)
            trace.append((name, sim.now))

        def main():
            a = sim.process(worker("a", 2.0))
            b = sim.process(worker("b", 1.0))
            yield sim.all_of([a, b])

        sim.run_process(main())
        assert trace == [("b", 1.0), ("a", 2.0)]

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        trace = []

        def worker(name):
            yield sim.timeout(1.0)
            trace.append(name)

        def main():
            procs = [sim.process(worker(i)) for i in range(5)]
            yield sim.all_of(procs)

        sim.run_process(main())
        assert trace == [0, 1, 2, 3, 4]

    def test_process_return_value_via_wait(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1.0)
            return 42

        def parent():
            result = yield sim.process(child())
            return result

        assert sim.run_process(parent()) == 42

    def test_waiting_on_finished_process(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1.0)
            return "early"

        def parent():
            proc = sim.process(child())
            yield sim.timeout(10.0)  # child long done
            result = yield proc
            return result

        assert sim.run_process(parent()) == "early"

    def test_exception_propagates_to_waiter(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        def parent():
            try:
                yield sim.process(child())
            except ValueError as exc:
                return str(exc)

        assert sim.run_process(parent()) == "boom"

    def test_unwaited_crash_surfaces(self):
        sim = Simulator()

        def crasher():
            yield sim.timeout(1.0)
            raise RuntimeError("silent crash")

        sim.process(crasher())
        with pytest.raises(RuntimeError, match="silent crash"):
            sim.run()

    def test_yield_non_event_fails_process(self):
        sim = Simulator()

        def bad():
            yield "not an event"

        with pytest.raises(SimulationError, match="not an Event"):
            sim.run_process(bad())

    def test_interrupt(self):
        sim = Simulator()

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except ProcessInterrupt:
                return "interrupted"
            return "slept"

        def main():
            proc = sim.process(sleeper())
            yield sim.timeout(1.0)
            proc.interrupt()
            result = yield proc
            return result

        assert sim.run_process(main()) == "interrupted"


class TestEvents:
    def test_manual_succeed(self):
        sim = Simulator()
        gate = sim.event()

        def opener():
            yield sim.timeout(3.0)
            gate.succeed("opened")

        def waiter():
            sim.process(opener())
            value = yield gate
            return (value, sim.now)

        assert sim.run_process(waiter()) == ("opened", 3.0)

    def test_double_trigger_rejected(self):
        sim = Simulator()
        gate = sim.event()
        gate.succeed()
        with pytest.raises(SimulationError):
            gate.succeed()

    def test_fail_raises_in_waiter(self):
        sim = Simulator()
        gate = sim.event()

        def failer():
            yield sim.timeout(1.0)
            gate.fail(KeyError("nope"))

        def waiter():
            sim.process(failer())
            try:
                yield gate
            except KeyError:
                return "caught"

        assert sim.run_process(waiter()) == "caught"

    def test_all_of_empty(self):
        sim = Simulator()

        def proc():
            results = yield sim.all_of([])
            return results

        assert sim.run_process(proc()) == []

    def test_all_of_collects_values_in_order(self):
        sim = Simulator()

        def child(value, delay):
            yield sim.timeout(delay)
            return value

        def main():
            procs = [sim.process(child("a", 3.0)),
                     sim.process(child("b", 1.0))]
            results = yield sim.all_of(procs)
            return results

        assert sim.run_process(main()) == ["a", "b"]


class TestRun:
    def test_run_until_stops_clock(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(100.0)

        sim.process(proc())
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_past_rejected(self):
        sim = Simulator()
        sim.now = 5.0
        with pytest.raises(SimTimeError):
            sim.run(until=1.0)

    def test_deadlock_detected(self):
        sim = Simulator()

        def stuck():
            yield sim.event()  # never triggered

        with pytest.raises(SimulationError, match="did not finish"):
            sim.run_process(stuck())

    def test_event_in_past_rejected(self):
        sim = Simulator()
        sim.now = 10.0
        with pytest.raises(SimTimeError):
            sim._enqueue(5.0, sim.event())
